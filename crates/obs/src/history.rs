//! Time-series history: a bounded ring of periodic samples per series.
//!
//! Point-in-time counters answer "how many"; drift questions — is
//! template churn *rising*, did the singleton fraction *spike* — need a
//! short trailing window of values. [`History`] keeps one fixed-capacity
//! ring of `f64` samples per named series, sharded across a handful of
//! mutexes like the [`crate::Registry`], so recording from the ingest
//! aggregator never contends with a scrape or an alert evaluation for
//! long. Memory is bounded by `series × capacity × 8` bytes.
//!
//! Two entry points append points:
//!
//! * [`History::record_sample`] — the *instrumentation* surface. Call
//!   sites pass a literal series name; the workspace lint cross-checks
//!   those names against the DESIGN.md Observability table the same way
//!   it does metric families.
//! * [`History::replay`] — the *data import* surface, for feeding back
//!   series whose names arrive at runtime (the `logmine alerts check`
//!   fixture loader). Same behaviour, exempt from the literal-name rule.
//!
//! [`HistorySampler`] bridges the registry to the ring: it holds handles
//! to selected counters, gauges and histogram quantiles and copies their
//! current values into the history on every [`HistorySampler::tick`] —
//! one tick per ingest window gives every series a shared time base, so
//! rate/delta derivation ([`History::delta`], [`History::rate`]) and the
//! alert engine's `for N windows` hysteresis all speak in windows.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use crate::histogram::Histogram;
use crate::metrics::{Counter, Gauge};

/// Number of independently locked shards; series hash to a shard.
const SHARDS: usize = 8;

/// The smallest usable ring: `delta` needs two points.
const MIN_CAPACITY: usize = 2;

/// A lock-sharded store of bounded per-series sample rings.
#[derive(Debug)]
pub struct History {
    capacity: usize,
    shards: Vec<Mutex<HashMap<String, VecDeque<f64>>>>,
}

impl History {
    /// A history keeping at most `capacity` samples per series
    /// (clamped to at least 2 so deltas are always derivable).
    pub fn new(capacity: usize) -> History {
        History {
            capacity: capacity.max(MIN_CAPACITY),
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    /// The per-series ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn shard(&self, series: &str) -> &Mutex<HashMap<String, VecDeque<f64>>> {
        // FNV-1a keeps the hash dependency-free and stable across runs.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in series.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        // The modulo keeps the index in range of the SHARDS-sized Vec.
        &self.shards[(hash as usize) % SHARDS]
    }

    /// Appends one sample to `series`, evicting the oldest point once
    /// the ring is full. Instrumentation call sites pass a literal name;
    /// use [`History::replay`] for names that arrive at runtime.
    pub fn record_sample(&self, series: &str, value: f64) {
        self.replay(series, value);
    }

    /// Appends one sample to a series whose name is runtime data
    /// (fixture replay, imports). Identical behaviour to
    /// [`History::record_sample`].
    pub fn replay(&self, series: &str, value: f64) {
        let mut shard = self
            .shard(series)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let ring = shard
            .entry(series.to_string())
            .or_insert_with(|| VecDeque::with_capacity(self.capacity.min(64)));
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(value);
    }

    /// All samples of `series`, oldest first (empty if unknown).
    pub fn series(&self, series: &str) -> Vec<f64> {
        let shard = self
            .shard(series)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        shard
            .get(series)
            .map(|ring| ring.iter().copied().collect())
            .unwrap_or_default()
    }

    /// The most recent sample of `series`.
    pub fn latest(&self, series: &str) -> Option<f64> {
        let shard = self
            .shard(series)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        shard.get(series).and_then(|ring| ring.back().copied())
    }

    /// `newest - previous`: the change over the last recorded step.
    /// `None` until the series has two points.
    pub fn delta(&self, series: &str) -> Option<f64> {
        self.rate(series, 1)
    }

    /// Average change per step over the trailing `steps` intervals:
    /// `(newest - sample[len-1-steps]) / steps`. `None` if the series
    /// is shorter than `steps + 1` points or `steps` is zero.
    pub fn rate(&self, series: &str, steps: usize) -> Option<f64> {
        if steps == 0 {
            return None;
        }
        let shard = self
            .shard(series)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let ring = shard.get(series)?;
        let newest = ring.back().copied()?;
        let base = ring.get(ring.len().checked_sub(steps + 1)?).copied()?;
        Some((newest - base) / steps as f64)
    }

    /// Number of samples currently held for `series`.
    pub fn len(&self, series: &str) -> usize {
        let shard = self
            .shard(series)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        shard.get(series).map(VecDeque::len).unwrap_or(0)
    }

    /// True if no series has any samples.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|shard| {
            shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .is_empty()
        })
    }

    /// All series names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .shards
            .iter()
            .flat_map(|shard| {
                shard
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .keys()
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort();
        out
    }
}

/// A registry probe: where a sampled series reads its value from.
#[derive(Debug, Clone)]
enum Probe {
    /// Cumulative counter value (derive per-window rates with
    /// [`History::delta`]).
    Counter(Counter),
    /// Instantaneous gauge value.
    Gauge(Gauge),
    /// An estimated quantile of a histogram's full distribution.
    Quantile(Histogram, f64),
}

/// Copies selected metric handles into a [`History`] on each tick.
///
/// Build it once at pipeline setup (handle registration takes `&mut
/// self`), then call [`HistorySampler::tick`] at every window boundary.
#[derive(Debug)]
pub struct HistorySampler {
    history: Arc<History>,
    probes: Vec<(String, Probe)>,
}

impl HistorySampler {
    /// A sampler recording into `history`.
    pub fn new(history: Arc<History>) -> HistorySampler {
        HistorySampler {
            history,
            probes: Vec::new(),
        }
    }

    /// The history this sampler records into.
    pub fn history(&self) -> &Arc<History> {
        &self.history
    }

    /// Samples `counter`'s cumulative value as `series` on every tick.
    pub fn track_counter(&mut self, series: &str, counter: Counter) {
        self.probes
            .push((series.to_string(), Probe::Counter(counter)));
    }

    /// Samples `gauge`'s current value as `series` on every tick.
    pub fn track_gauge(&mut self, series: &str, gauge: Gauge) {
        self.probes.push((series.to_string(), Probe::Gauge(gauge)));
    }

    /// Samples the estimated `q`-quantile of `histogram` as `series` on
    /// every tick.
    pub fn track_quantile(&mut self, series: &str, histogram: Histogram, q: f64) {
        self.probes
            .push((series.to_string(), Probe::Quantile(histogram, q)));
    }

    /// Number of tracked probes.
    pub fn probe_count(&self) -> usize {
        self.probes.len()
    }

    /// Records one sample per tracked probe.
    pub fn tick(&self) {
        for (series, probe) in &self.probes {
            let value = match probe {
                Probe::Counter(c) => c.get() as f64,
                Probe::Gauge(g) => g.get(),
                Probe::Quantile(h, q) => h.snapshot().quantile(*q).unwrap_or(f64::NAN),
            };
            self.history.replay(series, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Buckets;

    #[test]
    fn ring_is_bounded_and_fifo() {
        let history = History::new(3);
        for i in 0..5 {
            history.record_sample("s", i as f64);
        }
        assert_eq!(history.series("s"), vec![2.0, 3.0, 4.0]);
        assert_eq!(history.len("s"), 3);
        assert_eq!(history.latest("s"), Some(4.0));
    }

    #[test]
    fn capacity_is_clamped_to_two() {
        let history = History::new(0);
        assert_eq!(history.capacity(), 2);
        history.record_sample("s", 1.0);
        history.record_sample("s", 2.0);
        history.record_sample("s", 3.0);
        assert_eq!(history.series("s"), vec![2.0, 3.0]);
    }

    #[test]
    fn delta_and_rate_derive_from_the_ring() {
        let history = History::new(8);
        assert_eq!(history.delta("s"), None, "empty series has no delta");
        history.record_sample("s", 10.0);
        assert_eq!(history.delta("s"), None, "one point has no delta");
        history.record_sample("s", 25.0);
        assert_eq!(history.delta("s"), Some(15.0));
        history.record_sample("s", 40.0);
        assert_eq!(history.rate("s", 2), Some(15.0));
        assert_eq!(history.rate("s", 3), None, "not enough points");
        assert_eq!(history.rate("s", 0), None);
    }

    #[test]
    fn unknown_series_is_empty_everywhere() {
        let history = History::new(4);
        assert!(history.series("nope").is_empty());
        assert_eq!(history.latest("nope"), None);
        assert_eq!(history.len("nope"), 0);
        assert!(history.is_empty());
    }

    #[test]
    fn names_are_sorted_across_shards() {
        let history = History::new(4);
        for name in ["zeta", "alpha", "mid", "beta"] {
            history.replay(name, 1.0);
        }
        assert_eq!(history.names(), vec!["alpha", "beta", "mid", "zeta"]);
        assert!(!history.is_empty());
    }

    #[test]
    fn sampler_ticks_counters_gauges_and_quantiles() {
        let history = Arc::new(History::new(8));
        let counter = Counter::detached();
        let gauge = Gauge::detached();
        let hist = Histogram::detached();
        let mut sampler = HistorySampler::new(Arc::clone(&history));
        sampler.track_counter("lines", counter.clone());
        sampler.track_gauge("depth", gauge.clone());
        sampler.track_quantile("p99", hist.clone(), 0.99);
        assert_eq!(sampler.probe_count(), 3);

        counter.inc_by(7);
        gauge.set(3.0);
        hist.observe(0.5);
        sampler.tick();
        counter.inc_by(3);
        sampler.tick();

        assert_eq!(history.series("lines"), vec![7.0, 10.0]);
        assert_eq!(history.delta("lines"), Some(3.0));
        assert_eq!(history.latest("depth"), Some(3.0));
        let p99 = history.latest("p99").unwrap();
        assert!(p99.is_finite() && p99 > 0.0, "{p99}");
    }

    #[test]
    fn concurrent_recording_from_8_threads_stays_bounded() {
        let history = Arc::new(History::new(16));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let history = Arc::clone(&history);
                std::thread::spawn(move || {
                    for i in 0..1_000 {
                        history.replay(&format!("series-{}", t % 4), i as f64);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        for name in history.names() {
            assert!(history.len(&name) <= 16);
        }
        assert_eq!(history.names().len(), 4);
    }

    #[test]
    fn quantile_sampling_uses_snapshot_estimate() {
        let hist = Histogram::with_buckets(&Buckets::explicit(&[1.0, 2.0, 4.0]));
        for _ in 0..90 {
            hist.observe(0.5);
        }
        for _ in 0..10 {
            hist.observe(3.0);
        }
        let p50 = hist.snapshot().quantile(0.5).unwrap();
        assert!(p50 <= 1.0, "median lands in the first bucket: {p50}");
        let p99 = hist.snapshot().quantile(0.99).unwrap();
        assert!(p99 > 2.0, "tail lands in the last bucket: {p99}");
    }
}
