//! Declarative alert rules and their one-line text format.
//!
//! A rule file is plain text, one rule per line:
//!
//! ```text
//! # parsing-quality regression guards
//! template-churn-high: template_churn > 0.3 for 3
//! merge-conflict-spike: delta(merge_conflicts) > 25 for 3
//! ```
//!
//! `<name>: <selector> <op> <threshold> [for <N> [windows]]` where the
//! selector is either a bare series name (its latest sample) or
//! `delta(series)` (newest minus previous — a rate-of-change per
//! window, since the ingest pipeline ticks the history once per
//! window). Ops are `>`, `>=`, `<`, `<=`. `for N` is the hysteresis
//! width: the condition must hold for `N` consecutive samples to fire,
//! and must clear for `N` consecutive samples to resolve; it defaults
//! to 1. Blank lines and `#` comments are ignored.
//!
//! [`default_rules`] ships a built-in set tuned for the drift series
//! the ingest aggregator records (see `DESIGN.md` Observability) — the
//! paper's central warning is that parsing degradation silently
//! order-of-magnitude-degrades downstream mining, so the defaults all
//! watch parsing-quality signals.

use std::fmt;

use crate::history::History;

/// How a rule reads its series from the history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Selector {
    /// The latest sample.
    Value,
    /// Newest sample minus previous sample.
    Delta,
}

/// Comparison operator between the selected value and the threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
}

impl Op {
    /// Whether `value OP threshold` holds. Any comparison against NaN
    /// is false, so missing data never counts as a breach.
    pub fn holds(self, value: f64, threshold: f64) -> bool {
        match self {
            Op::Gt => value > threshold,
            Op::Ge => value >= threshold,
            Op::Lt => value < threshold,
            Op::Le => value <= threshold,
        }
    }

    fn token(self) -> &'static str {
        match self {
            Op::Gt => ">",
            Op::Ge => ">=",
            Op::Lt => "<",
            Op::Le => "<=",
        }
    }
}

/// One declarative alert rule.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Unique rule name (the `rule` label on `obs_alert_active`).
    pub name: String,
    /// History series the rule watches.
    pub series: String,
    /// How the watched value is derived from the series.
    pub selector: Selector,
    /// Comparison against [`AlertRule::threshold`].
    pub op: Op,
    /// Breach threshold.
    pub threshold: f64,
    /// Consecutive breached (resp. clear) samples required to fire
    /// (resp. resolve). Always at least 1.
    pub for_windows: usize,
}

impl AlertRule {
    /// The value this rule currently sees: `None` while the series is
    /// too short (empty, or a single point for `delta`).
    pub fn observe(&self, history: &History) -> Option<f64> {
        match self.selector {
            Selector::Value => history.latest(&self.series),
            Selector::Delta => history.delta(&self.series),
        }
    }

    /// Whether the rule's condition holds right now (one sample, no
    /// hysteresis). Missing or NaN data is never a breach.
    pub fn breached(&self, history: &History) -> bool {
        self.observe(history)
            .map(|v| self.op.holds(v, self.threshold))
            .unwrap_or(false)
    }
}

impl fmt::Display for AlertRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let selector = match self.selector {
            Selector::Value => self.series.clone(),
            Selector::Delta => format!("delta({})", self.series),
        };
        write!(
            f,
            "{}: {} {} {} for {}",
            self.name,
            selector,
            self.op.token(),
            self.threshold,
            self.for_windows
        )
    }
}

/// The built-in parsing-quality regression set, tuned for the drift
/// series the ingest aggregator records once per window.
const DEFAULT_RULES: &str = "\
# Parsing-quality regression guards (evaluated once per ingest window).
# A healthy stable stream keeps churn and singleton fraction near zero;
# sustained breaches mean the parser is fragmenting or the stream
# changed shape under it.
template-churn-high: template_churn > 0.3 for 3
template-birth-burst: template_births > 100 for 3
singleton-explosion: singleton_fraction > 0.6 for 5
param-cardinality-blowup: param_cardinality_max > 5000 for 3
merge-conflict-spike: delta(merge_conflicts) > 25 for 3
";

/// The built-in default rule set.
pub fn default_rules() -> Vec<AlertRule> {
    // DEFAULT_RULES is a compile-time constant; the unit tests pin that
    // it parses, so an empty fallback here is unreachable in practice.
    parse_rules(DEFAULT_RULES).unwrap_or_default()
}

/// The default rule set in its text form (what `logmine alerts check`
/// evaluates when no `--rules` file is given).
pub fn default_rules_text() -> &'static str {
    DEFAULT_RULES
}

/// Parses a rule file. Errors carry the 1-based line number.
pub fn parse_rules(text: &str) -> Result<Vec<AlertRule>, String> {
    let mut out: Vec<AlertRule> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let rule = parse_rule(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if out.iter().any(|r| r.name == rule.name) {
            return Err(format!(
                "line {}: duplicate rule name `{}`",
                i + 1,
                rule.name
            ));
        }
        out.push(rule);
    }
    Ok(out)
}

/// Parses one `name: selector op threshold [for N [windows]]` line.
fn parse_rule(line: &str) -> Result<AlertRule, String> {
    let (name, rest) = line
        .split_once(':')
        .ok_or_else(|| "missing `:` after rule name".to_string())?;
    let name = name.trim();
    if name.is_empty() {
        return Err("empty rule name".to_string());
    }
    if !name
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
    {
        return Err(format!("rule name `{name}` may only contain [a-zA-Z0-9_-]"));
    }
    let mut tokens = rest.split_whitespace();
    let selector_token = tokens
        .next()
        .ok_or_else(|| "missing series selector".to_string())?;
    let (selector, series) = parse_selector(selector_token)?;
    let op = match tokens.next() {
        Some(">") => Op::Gt,
        Some(">=") => Op::Ge,
        Some("<") => Op::Lt,
        Some("<=") => Op::Le,
        Some(other) => return Err(format!("unknown operator `{other}` (expected > >= < <=)")),
        None => return Err("missing operator".to_string()),
    };
    let threshold_token = tokens
        .next()
        .ok_or_else(|| "missing threshold".to_string())?;
    let threshold: f64 = threshold_token
        .parse()
        .map_err(|_| format!("threshold `{threshold_token}` is not a number"))?;
    if !threshold.is_finite() {
        return Err(format!("threshold `{threshold_token}` must be finite"));
    }
    let for_windows = match tokens.next() {
        None => 1,
        Some("for") => {
            let n_token = tokens
                .next()
                .ok_or_else(|| "missing window count after `for`".to_string())?;
            let n: usize = n_token
                .parse()
                .map_err(|_| format!("window count `{n_token}` is not an integer"))?;
            if n == 0 {
                return Err("`for 0` is meaningless; use `for 1` or omit".to_string());
            }
            match tokens.next() {
                None | Some("windows") | Some("window") => n,
                Some(junk) => return Err(format!("unexpected trailing token `{junk}`")),
            }
        }
        Some(junk) => return Err(format!("unexpected token `{junk}` (expected `for N`)")),
    };
    if let Some(junk) = tokens.next() {
        return Err(format!("unexpected trailing token `{junk}`"));
    }
    Ok(AlertRule {
        name: name.to_string(),
        series,
        selector,
        op,
        threshold,
        for_windows,
    })
}

fn parse_selector(token: &str) -> Result<(Selector, String), String> {
    let (selector, series) = match token.strip_prefix("delta(") {
        Some(inner) => (
            Selector::Delta,
            inner
                .strip_suffix(')')
                .ok_or_else(|| format!("unclosed `delta(` in `{token}`"))?,
        ),
        None => (Selector::Value, token),
    };
    if series.is_empty() {
        return Err("empty series name".to_string());
    }
    if !series
        .bytes()
        .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
    {
        return Err(format!("series `{series}` may only contain [a-z0-9_]"));
    }
    Ok((selector, series.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_issue_example() {
        let rules = parse_rules("churn: template_churn > 0.3 for 5 windows").unwrap();
        assert_eq!(rules.len(), 1);
        assert_eq!(
            rules[0],
            AlertRule {
                name: "churn".into(),
                series: "template_churn".into(),
                selector: Selector::Value,
                op: Op::Gt,
                threshold: 0.3,
                for_windows: 5,
            }
        );
    }

    #[test]
    fn parses_delta_selector_and_all_ops() {
        let text = "a: delta(x) > 1\nb: x >= 2 for 2\nc: x < -0.5\nd: x <= 1e3 for 1 window";
        let rules = parse_rules(text).unwrap();
        assert_eq!(rules.len(), 4);
        assert_eq!(rules[0].selector, Selector::Delta);
        assert_eq!(rules[0].for_windows, 1, "`for` defaults to 1");
        assert_eq!(rules[1].op, Op::Ge);
        assert_eq!(rules[2].threshold, -0.5);
        assert_eq!(rules[3].threshold, 1000.0);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let rules = parse_rules("# header\n\n  \nr: s > 1\n# trailer\n").unwrap();
        assert_eq!(rules.len(), 1);
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        for (text, needle) in [
            ("no colon here", "line 1"),
            (": s > 1", "empty rule name"),
            ("bad name!: s > 1", "may only contain"),
            ("r: s ~ 1", "unknown operator"),
            ("r: s >", "missing threshold"),
            ("r: s > abc", "not a number"),
            ("r: s > nan", "must be finite"),
            ("r: s > 1 for 0", "for 0"),
            ("r: s > 1 for x", "not an integer"),
            ("r: s > 1 maybe", "unexpected token"),
            ("r: s > 1 for 2 windows extra", "trailing"),
            ("r: delta(s > 1", "unclosed"),
            ("r: UPPER > 1", "may only contain"),
            ("r: s > 1\nr: s > 2", "duplicate rule name"),
            ("r:", "missing series selector"),
        ] {
            let err = parse_rules(text).unwrap_err();
            assert!(err.contains(needle), "{text:?} -> {err}");
        }
    }

    #[test]
    fn default_rules_parse_and_round_trip() {
        let rules = default_rules();
        assert_eq!(rules.len(), 5, "the built-in set has five guards");
        assert!(rules.iter().any(|r| r.series == "template_churn"));
        for rule in &rules {
            let rendered = rule.to_string();
            let reparsed = parse_rules(&rendered).unwrap();
            assert_eq!(reparsed.len(), 1);
            assert_eq!(&reparsed[0], rule, "display must round-trip: {rendered}");
        }
        assert_eq!(
            parse_rules(default_rules_text()).unwrap(),
            rules,
            "text form and parsed form agree"
        );
    }

    #[test]
    fn breached_reads_history_through_selectors() {
        let history = History::new(8);
        let value_rule = parse_rules("v: s > 10").unwrap().remove(0);
        let delta_rule = parse_rules("d: delta(s) > 3").unwrap().remove(0);
        assert!(
            !value_rule.breached(&history),
            "empty history never breaches"
        );
        assert!(!delta_rule.breached(&history));
        history.replay("s", 20.0);
        assert!(value_rule.breached(&history));
        assert!(!delta_rule.breached(&history), "delta needs two points");
        history.replay("s", 25.0);
        assert!(delta_rule.breached(&history));
        history.replay("s", f64::NAN);
        assert!(!value_rule.breached(&history), "NaN never breaches");
        assert!(!delta_rule.breached(&history));
    }
}
