//! Zero-dependency metrics and tracing for the `logmine` workspace.
//!
//! The DSN'16 study's efficiency findings (Table 3 / Fig. 2) rest on
//! systematic timing, and the streaming pipeline the ROADMAP grows
//! toward cannot be operated without per-stage visibility. This crate is
//! the one instrumentation substrate both sides share, built — like the
//! workspace's vendored `rand`/`criterion` shims — entirely on `std`, so
//! the offline build needs nothing from a registry:
//!
//! * **[`Registry`]** — a lock-sharded store of named metric families:
//!   [`Counter`]s, [`Gauge`]s and log-linear-bucket [`Histogram`]s, all
//!   label-aware, with a per-family label-cardinality cap that turns a
//!   would-be series explosion into an `obs_dropped_labels_total` bump
//!   instead of unbounded memory growth.
//! * **[`Span`]s** — scoped timers ([`span!`]) that record duration
//!   histograms and feed a bounded in-process [`TraceEvent`] ring.
//! * **Exposition** — [`Registry::render`] produces Prometheus text
//!   format (0.0.4); [`serve_metrics`] serves it over a tiny TCP/HTTP
//!   endpoint (`logmine serve --metrics-addr`), and `logmine metrics
//!   dump` prints it one-shot.
//! * **[`Journal`]** — a buffered JSONL event log with `run_id` and
//!   monotonic timestamps, flushed on drop so drained shutdowns never
//!   truncate the event stream.
//!
//! # Example
//!
//! ```
//! use logparse_obs::{Buckets, Registry};
//!
//! let registry = Registry::new();
//! let lines = registry.counter("lines_total", "Lines seen", &[("source", "file")]);
//! lines.inc_by(128);
//!
//! let latency = registry.histogram(
//!     "parse_duration_seconds",
//!     "Batch parse latency",
//!     &Buckets::durations(),
//!     &[("parser", "drain")],
//! );
//! latency.observe(350e-6);
//!
//! registry.span("merge", &[]).finish();
//!
//! let text = registry.render();
//! assert!(text.contains("lines_total{source=\"file\"} 128"));
//! assert!(text.contains("parse_duration_seconds_bucket"));
//! assert!(text.contains("obs_span_duration_seconds_count{span=\"merge\"} 1"));
//! ```
//!
//! Hot-path discipline: resolve handles once (registry lookups take a
//! shard lock), then record through the handle — counters and gauges are
//! single atomic ops, histogram observations a binary search plus two.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alerts;
mod histogram;
mod history;
mod http;
pub mod journal;
mod metrics;
mod registry;
pub mod rules;
mod span;

pub use alerts::{AlertEngine, AlertTransition};
pub use histogram::{Buckets, Histogram, HistogramSnapshot};
pub use history::{History, HistorySampler};
pub use http::{serve_metrics, MetricsServer};
pub use journal::{Journal, RotatingFile};
pub use metrics::{Counter, Gauge};
pub use registry::{global, MetricKind, Registry};
pub use rules::{default_rules, default_rules_text, parse_rules, AlertRule};
pub use span::{Span, TraceEvent};
