//! A buffered JSONL event journal.
//!
//! Each emitted event becomes one JSON object per line, stamped with a
//! header the consumer can always rely on:
//!
//! * `seq` — monotonically increasing event number within this journal;
//! * `run_id` — a 16-hex-digit id minted when the journal is created, so
//!   events from different runs interleaved in one file (or shipped to
//!   one collector) stay attributable;
//! * `ts_mono_ns` — nanoseconds since journal creation on the monotonic
//!   clock, immune to wall-clock steps. The clock is read under the same
//!   lock that assigns `seq`, so `ts_mono_ns` is non-decreasing in `seq`
//!   order — including across a [`RotatingFile`] rollover;
//! * `elapsed_ms` — the same offset in milliseconds, for humans;
//! * `rot` — the sink's rotation sequence at emit time (0 for
//!   non-rotating sinks), so a consumer stitching `events.jsonl.2`,
//!   `.1`, and the live file back together can order the pieces without
//!   trusting file mtimes.
//!
//! Writes are buffered and flushed every [`FLUSH_EVERY`] events or
//! [`FLUSH_INTERVAL`], whichever comes first — high-rate emitters do not
//! pay a syscall per event. The final buffered tail is guaranteed to
//! reach the sink by [`Journal::flush`] and by `Drop`, so a drained
//! shutdown (including the SIGTERM path) never truncates the log.

use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime};

use crate::metrics::Counter;

/// Events between forced flushes.
const FLUSH_EVERY: u64 = 32;
/// Maximum time a buffered event may wait before being flushed.
const FLUSH_INTERVAL: Duration = Duration::from_millis(200);

/// A scalar JSON value for journal fields.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A JSON string (escaped on write).
    Str(String),
    /// A finite number (non-finite values serialize as `null`).
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// JSON `null`.
    Null,
    /// Pre-rendered JSON, written verbatim — the escape hatch for
    /// callers with their own JSON values (the ingest event log).
    Raw(String),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Str(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            Value::Num(n) if n.is_finite() => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{n:.0}"));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Value::Num(_) => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Null => out.push_str("null"),
            Value::Raw(json) => out.push_str(json),
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// A size-capped file sink: once the current file would exceed
/// `max_bytes`, it is rotated to `<path>.1` (existing rotations
/// shifting to `.2`, `.3`, …, the oldest beyond `keep` deleted) and a
/// fresh file opened at `path`. Bounds a months-long run's event
/// stream to roughly `(keep + 1) * max_bytes` on disk.
///
/// Rotation happens between `write` calls, so a buffered line that
/// straddles the cap stays whole unless the buffer itself split it —
/// the same torn-tail tolerance consumers already need for crashes.
#[derive(Debug)]
pub struct RotatingFile {
    path: PathBuf,
    file: File,
    written: u64,
    max_bytes: u64,
    keep: usize,
    rotations: Counter,
    seq: Arc<AtomicU64>,
}

fn numbered(path: &Path, n: usize) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(format!(".{n}"));
    PathBuf::from(name)
}

impl RotatingFile {
    /// Creates (truncating) `path` as the current file. `max_bytes`
    /// is clamped to at least 1; `keep` is the number of rotated
    /// files retained beside the current one.
    pub fn create(path: &Path, max_bytes: u64, keep: usize) -> io::Result<RotatingFile> {
        let file = File::create(path)?;
        Ok(RotatingFile {
            path: path.to_path_buf(),
            file,
            written: 0,
            max_bytes: max_bytes.max(1),
            keep,
            rotations: crate::global().counter(
                "obs_journal_rotations_total",
                "Journal files rotated out because they reached the size cap",
                &[],
            ),
            seq: Arc::new(AtomicU64::new(0)),
        })
    }

    /// A shared handle to this file's rotation sequence: 0 until the
    /// first rollover, incremented on each. [`Journal::rotating`] stamps
    /// it into every event's `rot` header field.
    pub fn rotation_seq(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.seq)
    }

    // lint:allow(durability-discipline): journal rotation is flush-tier by contract — the shift chain is crash-atomic per rename, and losing tail events to power loss is the documented trade (docs/DURABILITY.md)
    fn rotate(&mut self) -> io::Result<()> {
        if self.keep == 0 {
            let _ = std::fs::remove_file(&self.path);
        } else {
            let _ = std::fs::remove_file(numbered(&self.path, self.keep));
            for n in (1..self.keep).rev() {
                let _ = std::fs::rename(numbered(&self.path, n), numbered(&self.path, n + 1));
            }
            let _ = std::fs::rename(&self.path, numbered(&self.path, 1));
        }
        // Renaming an open file leaves its descriptor valid; creating
        // the replacement drops the old handle.
        self.file = File::create(&self.path)?;
        self.written = 0;
        self.rotations.inc();
        self.seq.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

impl Write for RotatingFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.written > 0 && self.written + buf.len() as u64 > self.max_bytes {
            self.rotate()?;
        }
        let n = self.file.write(buf)?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.file.flush()
    }
}

struct Sink {
    /// The journal owns the buffering: callers hand in a raw sink and
    /// the buffered tail is pushed out on the flush cadence, by
    /// [`Journal::flush`] and on drop.
    out: io::BufWriter<Box<dyn Write + Send>>,
    pending: u64,
    last_flush: Instant,
    seq: u64,
}

/// A thread-safe JSONL event journal.
pub struct Journal {
    sink: Mutex<Sink>,
    start: Instant,
    run_id: String,
    /// Rotation sequence of the underlying sink, mirrored into each
    /// event's `rot` field. Stays 0 for non-rotating sinks.
    rotation: Arc<AtomicU64>,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("run_id", &self.run_id)
            .finish_non_exhaustive()
    }
}

/// Mints a 16-hex-digit run id from the wall clock and pid — unique
/// enough to tell runs apart in an aggregated event stream without
/// reaching for an entropy source the offline build may not have.
pub fn mint_run_id() -> String {
    let nanos = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    let pid = std::process::id() as u64;
    // FNV-1a over the two sources so close-together pids/timestamps
    // still produce visually distinct ids.
    let mut hash: u64 = 0xcbf29ce484222325;
    for b in nanos.to_le_bytes().iter().chain(pid.to_le_bytes().iter()) {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    format!("{hash:016x}")
}

impl Journal {
    /// A journal writing to `sink` with a freshly minted run id.
    pub fn new(sink: Box<dyn Write + Send>) -> Self {
        Journal::with_run_id(sink, mint_run_id())
    }

    /// A journal with an explicit run id (tests, resumed runs).
    pub fn with_run_id(sink: Box<dyn Write + Send>, run_id: String) -> Self {
        Journal {
            sink: Mutex::new(Sink {
                out: io::BufWriter::new(sink),
                pending: 0,
                last_flush: Instant::now(),
                seq: 0,
            }),
            start: Instant::now(),
            run_id,
            rotation: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A journal that drops every event.
    pub fn disabled() -> Self {
        Journal::new(Box::new(io::sink()))
    }

    /// A journal appending to `path` (created if absent, never
    /// truncated). Successive coordinator incarnations of a resumable
    /// job share one event log this way: each incarnation mints its own
    /// `run_id` and restarts `seq`/`ts_mono_ns`, so a consumer orders
    /// within an incarnation by `seq` and across incarnations by file
    /// position.
    pub fn appending(path: &Path) -> io::Result<Journal> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Journal::new(Box::new(file)))
    }

    /// A journal writing to a size-rotated file: see [`RotatingFile`].
    /// Events carry the file's rotation sequence in their `rot` field.
    pub fn rotating(path: &Path, max_bytes: u64, keep: usize) -> io::Result<Journal> {
        let file = RotatingFile::create(path, max_bytes, keep)?;
        let rotation = file.rotation_seq();
        let mut journal = Journal::new(Box::new(file));
        journal.rotation = rotation;
        Ok(journal)
    }

    /// This journal's run id.
    pub fn run_id(&self) -> &str {
        &self.run_id
    }

    /// Appends one event; `fields` follow the header fields. Sink errors
    /// are swallowed — the monitored program must not die because
    /// monitoring went away.
    pub fn emit(&self, event: &str, fields: &[(&str, Value)]) {
        let mut line = String::with_capacity(128);
        line.push_str("{\"event\":\"");
        escape_into(event, &mut line);
        line.push_str("\",\"seq\":");
        // Poison recovery: a panic mid-write elsewhere leaves at worst a
        // torn line; monitoring must keep running regardless.
        // lint:allow(lock-channel-hold): this mutex exists to serialize the buffered writer — the I/O below is the guarded resource, and no other lock or channel is touched while it is held
        let mut sink = self
            .sink
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // The clock is read while the lock (and thus the seq) is held:
        // ts_mono_ns is non-decreasing in seq order even when many
        // threads emit concurrently or the sink rotates between events.
        let ts = self.start.elapsed();
        line.push_str(&sink.seq.to_string());
        sink.seq += 1;
        line.push_str(",\"run_id\":\"");
        line.push_str(&self.run_id);
        line.push_str("\",\"ts_mono_ns\":");
        line.push_str(&ts.as_nanos().to_string());
        line.push_str(",\"elapsed_ms\":");
        line.push_str(&ts.as_millis().to_string());
        line.push_str(",\"rot\":");
        line.push_str(&self.rotation.load(Ordering::Relaxed).to_string());
        for (key, value) in fields {
            line.push_str(",\"");
            escape_into(key, &mut line);
            line.push_str("\":");
            value.write(&mut line);
        }
        line.push_str("}\n");
        let _ = sink.out.write_all(line.as_bytes());
        sink.pending += 1;
        if sink.pending >= FLUSH_EVERY || sink.last_flush.elapsed() >= FLUSH_INTERVAL {
            let _ = sink.out.flush();
            sink.pending = 0;
            sink.last_flush = Instant::now();
        }
    }

    /// Flushes any buffered events to the sink.
    pub fn flush(&self) {
        // lint:allow(lock-channel-hold): same writer-serialization lock as emit() — flushing is what the guard is for
        let mut sink = self
            .sink
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = sink.out.flush();
        sink.pending = 0;
        sink.last_flush = Instant::now();
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[derive(Clone, Default)]
    struct Shared(Arc<Mutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn events_carry_header_fields_in_order() {
        let sink = Shared::default();
        let journal = Journal::with_run_id(Box::new(sink.clone()), "00deadbeef00cafe".into());
        journal.emit("started", &[("shards", Value::Num(4.0))]);
        journal.emit(
            "scored",
            &[
                ("spe", Value::Num(1.5)),
                ("anomalous", Value::Bool(false)),
                ("note", Value::str("a \"quoted\" word")),
                ("missing", Value::Null),
            ],
        );
        journal.flush();
        let text = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with(
            "{\"event\":\"started\",\"seq\":0,\"run_id\":\"00deadbeef00cafe\",\"ts_mono_ns\":"
        ));
        assert!(lines[0].contains("\"shards\":4"));
        assert!(lines[1].contains("\"seq\":1"));
        assert!(lines[1].contains("\"spe\":1.5"));
        assert!(lines[1].contains("\"anomalous\":false"));
        assert!(lines[1].contains("\"note\":\"a \\\"quoted\\\" word\""));
        assert!(lines[1].contains("\"missing\":null"));
    }

    #[test]
    fn run_ids_are_hex_and_distinct() {
        let a = mint_run_id();
        let b = mint_run_id();
        assert_eq!(a.len(), 16);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
        assert_ne!(a, b, "two mints in a row collided");
    }

    #[test]
    fn ts_mono_is_nondecreasing() {
        let sink = Shared::default();
        let journal = Journal::new(Box::new(sink.clone()));
        for _ in 0..5 {
            journal.emit("tick", &[]);
        }
        journal.flush();
        let text = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
        let stamps: Vec<u128> = text
            .lines()
            .map(|l| {
                let rest = l.split("\"ts_mono_ns\":").nth(1).unwrap();
                rest.split(',').next().unwrap().parse().unwrap()
            })
            .collect();
        for pair in stamps.windows(2) {
            assert!(pair[0] <= pair[1]);
        }
    }

    /// A sink that counts flushes, to pin the buffering contract.
    #[derive(Clone, Default)]
    struct CountingSink(Arc<Mutex<(usize, usize)>>); // (writes, flushes)

    impl Write for CountingSink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().0 += 1;
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            self.0.lock().unwrap().1 += 1;
            Ok(())
        }
    }

    #[test]
    fn rotating_file_caps_size_and_shifts_history() {
        let dir = std::env::temp_dir().join(format!("obs-rotate-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let mut sink = RotatingFile::create(&path, 64, 2).unwrap();
        let before = crate::global()
            .render()
            .lines()
            .find(|l| l.starts_with("obs_journal_rotations_total"))
            .and_then(|l| l.split(' ').next_back())
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(0.0);
        // Each write is 40 bytes; every second write exceeds the
        // 64-byte cap and rotates first.
        for i in 0..6 {
            let line = format!("{{\"event\":\"tick\",\"n\":{i},\"pad\":\"xxxxxx\"}}\n");
            sink.write_all(line.as_bytes()).unwrap();
        }
        sink.flush().unwrap();
        assert!(path.exists());
        assert!(numbered(&path, 1).exists());
        assert!(numbered(&path, 2).exists());
        assert!(!numbered(&path, 3).exists(), "keep=2 bounds history");
        assert!(std::fs::metadata(&path).unwrap().len() <= 64);
        let after = crate::global()
            .render()
            .lines()
            .find(|l| l.starts_with("obs_journal_rotations_total"))
            .and_then(|l| l.split(' ').next_back())
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(0.0);
        assert!(after > before, "rotations are counted");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotating_journal_keeps_emitting_across_the_cap() {
        let dir = std::env::temp_dir().join(format!("obs-rotjournal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        let journal = Journal::rotating(&path, 512, 1).unwrap();
        for _ in 0..64 {
            journal.emit("tick", &[("pad", Value::str("some event payload text"))]);
        }
        journal.flush();
        drop(journal);
        assert!(
            numbered(&path, 1).exists(),
            "cap was passed, history rotated"
        );
        assert!(!numbered(&path, 2).exists(), "keep=1 bounds history");
        let tail = std::fs::read_to_string(&path).unwrap();
        let head = std::fs::read_to_string(numbered(&path, 1)).unwrap();
        assert!(!tail.is_empty() || !head.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Parses a header field's numeric value out of a JSONL line.
    fn header_num(line: &str, key: &str) -> u128 {
        let marker = format!("\"{key}\":");
        let rest = line.split(&marker).nth(1).unwrap_or_else(|| {
            panic!("line missing {key}: {line}");
        });
        rest.split([',', '}'])
            .next()
            .unwrap()
            .parse()
            .unwrap_or_else(|_| panic!("unparsable {key} in {line}"))
    }

    #[test]
    fn ts_mono_stays_monotonic_across_rotation_and_rot_is_stamped() {
        let dir = std::env::temp_dir().join(format!("obs-rotmono-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        // Tiny cap + flush after every event forces many rollovers.
        let journal = Journal::rotating(&path, 256, 4).unwrap();
        for i in 0..48 {
            journal.emit("tick", &[("n", Value::Num(i as f64))]);
            journal.flush();
        }
        drop(journal);
        // Stitch every surviving file back together.
        let mut text = String::new();
        for n in (1..=4).rev() {
            if let Ok(piece) = std::fs::read_to_string(numbered(&path, n)) {
                text.push_str(&piece);
            }
        }
        text.push_str(&std::fs::read_to_string(&path).unwrap());
        let mut events: Vec<(u128, u128, u128)> = text
            .lines()
            .map(|l| {
                (
                    header_num(l, "seq"),
                    header_num(l, "ts_mono_ns"),
                    header_num(l, "rot"),
                )
            })
            .collect();
        assert!(
            events.len() > 8,
            "rotation kept only {} events",
            events.len()
        );
        events.sort_by_key(|e| e.0);
        for pair in events.windows(2) {
            assert!(pair[0].0 < pair[1].0, "seq strictly increases");
            assert!(
                pair[0].1 <= pair[1].1,
                "ts_mono_ns must be monotonic in seq order across rollovers: {pair:?}"
            );
            assert!(pair[0].2 <= pair[1].2, "rot never goes backwards");
        }
        let max_rot = events.iter().map(|e| e.2).max().unwrap();
        assert!(max_rot >= 2, "cap of 256 bytes must rotate repeatedly");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_emitters_keep_ts_monotonic_in_seq_order() {
        let sink = Shared::default();
        let journal = Arc::new(Journal::new(Box::new(sink.clone())));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let journal = Arc::clone(&journal);
                std::thread::spawn(move || {
                    for i in 0..200 {
                        journal.emit("tick", &[("t", Value::Num((t * 1000 + i) as f64))]);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        journal.flush();
        let text = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
        let mut events: Vec<(u128, u128)> = text
            .lines()
            .map(|l| (header_num(l, "seq"), header_num(l, "ts_mono_ns")))
            .collect();
        assert_eq!(events.len(), 800);
        events.sort_by_key(|e| e.0);
        for pair in events.windows(2) {
            assert!(
                pair[0].1 <= pair[1].1,
                "clock is read under the seq lock, so this cannot interleave: {pair:?}"
            );
        }
    }

    #[test]
    fn appending_journal_preserves_prior_incarnations() {
        let dir = std::env::temp_dir().join(format!("obs-append-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let first = Journal::appending(&path).unwrap();
        first.emit("job_started", &[]);
        drop(first);
        let second = Journal::appending(&path).unwrap();
        second.emit("job_finished", &[]);
        drop(second);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "append mode must not truncate: {text}");
        assert!(lines[0].contains("\"event\":\"job_started\""));
        assert!(lines[1].contains("\"event\":\"job_finished\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_rotating_sinks_stamp_rot_zero() {
        let sink = Shared::default();
        let journal = Journal::new(Box::new(sink.clone()));
        journal.emit("tick", &[]);
        journal.flush();
        let text = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
        assert!(
            text.contains(",\"rot\":0,") || text.contains(",\"rot\":0}"),
            "{text}"
        );
    }

    #[test]
    fn flushes_are_batched_but_guaranteed_on_drop() {
        let sink = CountingSink::default();
        let journal = Journal::new(Box::new(sink.clone()));
        for _ in 0..5 {
            journal.emit("e", &[]);
        }
        let flushes_before_drop = sink.0.lock().unwrap().1;
        assert!(
            flushes_before_drop <= 1,
            "5 quick events should not flush per event (saw {flushes_before_drop})"
        );
        drop(journal);
        assert!(
            sink.0.lock().unwrap().1 > flushes_before_drop,
            "drop must flush"
        );
    }
}
