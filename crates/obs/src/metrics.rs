//! Counter and gauge primitives.
//!
//! Both are plain atomics so the hot path is one `fetch_add`/`store` —
//! no locks, no allocation. Handles are cheaply clonable `Arc`s; callers
//! on hot paths resolve a handle once and keep it, paying the registry
//! lookup only at setup time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An `f64` stored in an `AtomicU64` via its bit pattern.
///
/// `store`/`load` are single atomic ops; `add` is a CAS loop, which is
/// fine for the low-contention gauges this crate maintains (queue
/// depths, template counts) and for histogram sums.
#[derive(Debug, Default)]
pub(crate) struct AtomicF64(AtomicU64);

impl AtomicF64 {
    pub fn new(value: f64) -> Self {
        AtomicF64(AtomicU64::new(value.to_bits()))
    }

    pub fn load(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    pub fn store(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    pub fn add(&self, delta: f64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }
}

#[derive(Debug, Default)]
pub(crate) struct CounterCore {
    value: AtomicU64,
}

/// A monotonically increasing counter.
///
/// Cloning shares the underlying value (both clones increment the same
/// series).
#[derive(Debug, Clone, Default)]
pub struct Counter(pub(crate) Arc<CounterCore>);

impl Counter {
    /// A counter not attached to any registry (used for series dropped
    /// by the label-cardinality guard: increments still work, nothing is
    /// exported).
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.inc_by(1);
    }

    /// Adds `n`.
    pub fn inc_by(&self, n: u64) {
        self.0.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.value.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
pub(crate) struct GaugeCore {
    value: AtomicF64,
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Clone, Default)]
pub struct Gauge(pub(crate) Arc<GaugeCore>);

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn detached() -> Self {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, value: f64) {
        self.0.value.store(value);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: f64) {
        self.0.value.add(delta);
    }

    /// Subtracts `delta`.
    pub fn sub(&self, delta: f64) {
        self.0.value.add(-delta);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        self.0.value.load()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::detached();
        c.inc();
        c.inc_by(41);
        assert_eq!(c.get(), 42);
        let clone = c.clone();
        clone.inc();
        assert_eq!(c.get(), 43, "clones share the series");
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::detached();
        g.set(10.0);
        g.add(5.0);
        g.sub(2.5);
        assert_eq!(g.get(), 12.5);
    }

    #[test]
    fn concurrent_counter_increments_from_8_threads() {
        let c = Counter::detached();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn concurrent_gauge_adds_are_lossless() {
        let g = Gauge::detached();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let g = g.clone();
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        if i % 2 == 0 {
                            g.add(1.0);
                        } else {
                            g.sub(1.0);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(g.get(), 0.0);
    }
}
