//! Metric handles for the job coordinator.
//!
//! Resolved once per [`crate::run_job`] call against the process-global
//! [`logparse_obs`] registry, so a `logmine jobs run` exposes its
//! progress through the same `logmine metrics dump` surface as the
//! streaming pipeline. Family names stay string literals at their
//! registration call so the obs-metric-hygiene lint can cross-check
//! them against DESIGN.md's Observability table.

use logparse_obs::{global, Buckets, Counter, Gauge, Histogram};

/// Every family the coordinator publishes, registered up front so a
/// scrape taken mid-job already shows zero-valued series.
#[derive(Debug)]
pub struct JobMetrics {
    /// `jobs_tasks_completed_total` — map tasks with a validated result.
    pub tasks_completed: Counter,
    /// `jobs_task_retries_total` — failed attempts absorbed by a retry.
    pub task_retries: Counter,
    /// `jobs_tasks_dead_lettered_total` — tasks that exhausted their
    /// attempt budget and landed in the DLQ.
    pub tasks_dead_lettered: Counter,
    /// `jobs_workers_active` — worker processes currently running.
    pub workers_active: Gauge,
    /// `jobs_task_attempt_seconds{parser}` — wall time of one worker
    /// attempt, spawn to reap.
    pub attempt_seconds: Histogram,
}

impl JobMetrics {
    /// Resolves (and thereby pre-registers) every `jobs_*` family.
    pub fn new(parser: &str) -> Self {
        let registry = global();
        JobMetrics {
            tasks_completed: registry.counter(
                "jobs_tasks_completed_total",
                "Map tasks completed with a validated shard result",
                &[],
            ),
            task_retries: registry.counter(
                "jobs_task_retries_total",
                "Failed worker attempts absorbed by a retry",
                &[],
            ),
            tasks_dead_lettered: registry.counter(
                "jobs_tasks_dead_lettered_total",
                "Tasks dead-lettered after exhausting their attempt budget",
                &[],
            ),
            workers_active: registry.gauge(
                "jobs_workers_active",
                "Worker processes currently running",
                &[],
            ),
            attempt_seconds: registry.histogram(
                "jobs_task_attempt_seconds",
                "Wall time of one worker attempt from spawn to reap",
                &Buckets::durations(),
                &[("parser", parser)],
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_metrics_pre_register_every_family() {
        let _metrics = JobMetrics::new("drain");
        let text = global().render();
        for family in [
            "jobs_tasks_completed_total",
            "jobs_task_retries_total",
            "jobs_tasks_dead_lettered_total",
            "jobs_workers_active",
            "jobs_task_attempt_seconds",
        ] {
            assert!(
                text.contains(&format!("# TYPE {family} ")),
                "family {family} not pre-registered"
            );
        }
    }
}
