//! The pure scheduling state machine of a map job.
//!
//! The [`Scheduler`] owns every decision that matters for correctness —
//! which task runs next, whether a failure retries or dead-letters, how
//! long a retry backs off — while knowing nothing about processes,
//! files or clocks: time is an abstract `now_ms` the caller passes in.
//! The coordinator drives it against real subprocesses; the property
//! tests drive it against simulated fault plans, which is how the
//! partition and backoff invariants are checked over arbitrary (shard
//! count, worker count, fault plan) triples without spawning anything.
//!
//! # Invariants
//!
//! * Every task ends in exactly one terminal state ([`TaskState::Completed`]
//!   or [`TaskState::DeadLettered`]); together the terminal tasks
//!   partition the job's chunk ranges exactly once.
//! * A task is dead-lettered precisely when its `max_retries`-th
//!   attempt (the attempt budget, first try included) fails.
//! * Per task, retry backoff delays are monotone non-decreasing:
//!   attempt `a` waits in `[step_a, 2·step_a]` with
//!   `step_a = backoff_ms · 2^(a-1)`, and the delay is additionally
//!   clamped to never regress below the previous delay (relevant only
//!   once the exponential saturates).
//! * At most `workers` tasks are running at any moment.

/// Where a task stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Waiting to run `attempt` (1-based) once `ready_at_ms` passes.
    Pending {
        /// The attempt number the next spawn will carry.
        attempt: u32,
        /// Earliest `now_ms` at which the attempt may start.
        ready_at_ms: u64,
    },
    /// `attempt` is running since `started_at_ms`.
    Running {
        /// The running attempt number.
        attempt: u32,
        /// When the attempt started, in the caller's `now_ms` clock.
        started_at_ms: u64,
    },
    /// A validated result exists.
    Completed,
    /// The attempt budget is exhausted; a DLQ record exists.
    DeadLettered,
}

/// Initial task state when (re)building a scheduler from a job
/// directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskSeed {
    /// Never attempted (or attempted with nothing durable to show).
    Fresh,
    /// Some attempts were consumed by a previous coordinator
    /// incarnation; the next spawn carries `next_attempt`.
    Resumed {
        /// The attempt number the next spawn will carry.
        next_attempt: u32,
    },
    /// A validated result already exists.
    Completed,
    /// A dead-letter record already exists.
    DeadLettered,
}

/// What the coordinator should do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Spawn `attempt` of `task` now. The scheduler has already moved
    /// the task to [`TaskState::Running`].
    Spawn {
        /// Task to spawn.
        task: usize,
        /// Attempt number to pass to the worker (1-based).
        attempt: u32,
    },
    /// Nothing to spawn right now: wait for a running worker to exit,
    /// or until `until_ms` (the earliest retry becomes ready) if given.
    Wait {
        /// Earliest `now_ms` at which a pending retry unblocks, when
        /// the only obstacle is backoff rather than a full worker pool.
        until_ms: Option<u64>,
    },
    /// Every task is terminal.
    Done,
}

/// How a reported failure was absorbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureDisposition {
    /// The task will be retried as `next_attempt` after `backoff_ms`.
    Retry {
        /// The attempt number of the upcoming retry.
        next_attempt: u32,
        /// The backoff delay before it becomes ready.
        backoff_ms: u64,
    },
    /// The attempt budget is exhausted after `attempts` tries; the
    /// caller must write the DLQ record.
    DeadLetter {
        /// Total attempts consumed (== the budget).
        attempts: u32,
    },
}

/// The scheduling state machine. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct Scheduler {
    tasks: Vec<TaskState>,
    /// Largest delay handed out so far, per task — the monotonicity
    /// clamp for the saturated tail of the exponential.
    last_delay_ms: Vec<u64>,
    workers: usize,
    max_retries: u32,
    backoff_ms: u64,
    seed: u64,
}

/// FNV-1a over `(seed, task, attempt)`, reduced to `0..=bound` — the
/// deterministic jitter source. The same job id always jitters the
/// same way, which keeps chaos tests reproducible.
fn jitter(seed: u64, task: usize, attempt: u32, bound: u64) -> u64 {
    if bound == 0 {
        return 0;
    }
    let mut hash: u64 = 0xcbf29ce484222325 ^ seed;
    for byte in (task as u64)
        .to_le_bytes()
        .into_iter()
        .chain(u64::from(attempt).to_le_bytes())
    {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash % (bound.saturating_add(1))
}

impl Scheduler {
    /// A scheduler for `tasks` map tasks over at most `workers`
    /// concurrent workers, with a per-task attempt budget of
    /// `max_retries` (clamped to at least 1) and a base backoff of
    /// `backoff_ms`. `seed` feeds the deterministic jitter.
    pub fn new(tasks: usize, workers: usize, max_retries: u32, backoff_ms: u64, seed: u64) -> Self {
        Scheduler {
            tasks: vec![
                TaskState::Pending {
                    attempt: 1,
                    ready_at_ms: 0,
                };
                tasks
            ],
            last_delay_ms: vec![0; tasks],
            workers: workers.max(1),
            max_retries: max_retries.max(1),
            backoff_ms,
            seed,
        }
    }

    /// Re-seats `task` from recovered on-disk state (resume path).
    /// A resumed attempt counter at or beyond the budget seats the
    /// task as pending its final attempt — the caller is expected to
    /// have dead-lettered such tasks before restoring.
    pub fn restore(&mut self, task: usize, seed: TaskSeed) {
        let Some(slot) = self.tasks.get_mut(task) else {
            return;
        };
        *slot = match seed {
            TaskSeed::Fresh => TaskState::Pending {
                attempt: 1,
                ready_at_ms: 0,
            },
            TaskSeed::Resumed { next_attempt } => TaskState::Pending {
                attempt: next_attempt.clamp(1, self.max_retries),
                ready_at_ms: 0,
            },
            TaskSeed::Completed => TaskState::Completed,
            TaskSeed::DeadLettered => TaskState::DeadLettered,
        };
    }

    /// The state of `task` (out-of-range reads as dead-lettered, which
    /// never happens for in-contract callers).
    pub fn state(&self, task: usize) -> TaskState {
        self.tasks
            .get(task)
            .copied()
            .unwrap_or(TaskState::DeadLettered)
    }

    /// Number of tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// The attempt budget.
    pub fn max_retries(&self) -> u32 {
        self.max_retries
    }

    /// Tasks currently running.
    pub fn running(&self) -> usize {
        self.tasks
            .iter()
            .filter(|t| matches!(t, TaskState::Running { .. }))
            .count()
    }

    /// Task ids in a terminal state, split `(completed, dead_lettered)`.
    pub fn terminal(&self) -> (Vec<usize>, Vec<usize>) {
        let mut completed = Vec::new();
        let mut dead = Vec::new();
        for (task, state) in self.tasks.iter().enumerate() {
            match state {
                TaskState::Completed => completed.push(task),
                TaskState::DeadLettered => dead.push(task),
                _ => {}
            }
        }
        (completed, dead)
    }

    /// Whether every task is terminal.
    pub fn is_done(&self) -> bool {
        self.tasks
            .iter()
            .all(|t| matches!(t, TaskState::Completed | TaskState::DeadLettered))
    }

    /// Picks the next thing to do at `now_ms`. Spawns the lowest-id
    /// ready pending task while worker slots are free; moves it to
    /// [`TaskState::Running`] before returning.
    pub fn next_action(&mut self, now_ms: u64) -> Action {
        if self.is_done() {
            return Action::Done;
        }
        let mut earliest: Option<u64> = None;
        if self.running() < self.workers {
            for (task, state) in self.tasks.iter().enumerate() {
                if let TaskState::Pending {
                    attempt,
                    ready_at_ms,
                } = *state
                {
                    if ready_at_ms <= now_ms {
                        if let Some(slot) = self.tasks.get_mut(task) {
                            *slot = TaskState::Running {
                                attempt,
                                started_at_ms: now_ms,
                            };
                        }
                        return Action::Spawn { task, attempt };
                    }
                    earliest = Some(earliest.map_or(ready_at_ms, |e| e.min(ready_at_ms)));
                }
            }
        }
        Action::Wait { until_ms: earliest }
    }

    /// Records a validated completion of `task`.
    pub fn completed(&mut self, task: usize) {
        if let Some(slot) = self.tasks.get_mut(task) {
            *slot = TaskState::Completed;
        }
    }

    /// Records a failed attempt of `task` at `now_ms`. Returns how the
    /// failure was absorbed, or `None` if the task was not running
    /// (a caller bookkeeping bug, surfaced instead of panicking).
    pub fn failed(&mut self, task: usize, now_ms: u64) -> Option<FailureDisposition> {
        let TaskState::Running { attempt, .. } = self.state(task) else {
            return None;
        };
        if attempt >= self.max_retries {
            if let Some(slot) = self.tasks.get_mut(task) {
                *slot = TaskState::DeadLettered;
            }
            return Some(FailureDisposition::DeadLetter { attempts: attempt });
        }
        let delay = self.backoff_delay_ms(task, attempt);
        if let Some(slot) = self.tasks.get_mut(task) {
            *slot = TaskState::Pending {
                attempt: attempt + 1,
                ready_at_ms: now_ms.saturating_add(delay),
            };
        }
        Some(FailureDisposition::Retry {
            next_attempt: attempt + 1,
            backoff_ms: delay,
        })
    }

    /// The backoff delay after `failed_attempt` of `task` fails:
    /// exponential step plus deterministic jitter in `[0, step]`,
    /// clamped non-decreasing against the task's previous delay.
    pub fn backoff_delay_ms(&mut self, task: usize, failed_attempt: u32) -> u64 {
        let exponent = failed_attempt.saturating_sub(1).min(20);
        let step = self.backoff_ms.saturating_mul(1u64 << exponent);
        let raw = step.saturating_add(jitter(self.seed, task, failed_attempt, step));
        let previous = self.last_delay_ms.get(task).copied().unwrap_or(0);
        let delay = raw.max(previous);
        if let Some(slot) = self.last_delay_ms.get_mut(task) {
            *slot = delay;
        }
        delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn happy_path_runs_every_task_once() {
        let mut sched = Scheduler::new(3, 2, 3, 100, 7);
        let mut spawned = Vec::new();
        let mut now = 0;
        loop {
            match sched.next_action(now) {
                Action::Spawn { task, attempt } => {
                    assert_eq!(attempt, 1);
                    spawned.push(task);
                    assert!(sched.running() <= 2, "worker cap respected");
                }
                Action::Wait { .. } => {
                    // Complete one running task to free a slot.
                    let running: Vec<usize> = (0..3)
                        .filter(|&t| matches!(sched.state(t), TaskState::Running { .. }))
                        .collect();
                    sched.completed(running[0]);
                    now += 1;
                }
                Action::Done => break,
            }
        }
        spawned.sort_unstable();
        assert_eq!(spawned, vec![0, 1, 2]);
        let (completed, dead) = sched.terminal();
        assert_eq!(completed, vec![0, 1, 2]);
        assert!(dead.is_empty());
    }

    #[test]
    fn budget_exhaustion_dead_letters_after_exactly_max_retries() {
        let mut sched = Scheduler::new(1, 1, 3, 10, 42);
        let mut attempts_seen = Vec::new();
        let mut now = 0u64;
        loop {
            match sched.next_action(now) {
                Action::Spawn { task, attempt } => {
                    attempts_seen.push(attempt);
                    match sched.failed(task, now).unwrap() {
                        FailureDisposition::Retry { backoff_ms, .. } => now += backoff_ms,
                        FailureDisposition::DeadLetter { attempts } => {
                            assert_eq!(attempts, 3);
                        }
                    }
                }
                Action::Wait { until_ms } => now = until_ms.unwrap_or(now + 1),
                Action::Done => break,
            }
        }
        assert_eq!(attempts_seen, vec![1, 2, 3]);
        assert!(matches!(sched.state(0), TaskState::DeadLettered));
    }

    #[test]
    fn backoff_is_monotone_and_roughly_exponential() {
        let mut sched = Scheduler::new(1, 1, 8, 50, 1234);
        let delays: Vec<u64> = (1..8).map(|a| sched.backoff_delay_ms(0, a)).collect();
        for (i, pair) in delays.windows(2).enumerate() {
            assert!(pair[0] <= pair[1], "attempt {}: {delays:?}", i + 1);
        }
        // Attempt a's delay lies in [step, 2*step].
        for (i, &delay) in delays.iter().enumerate() {
            let step = 50u64 << i;
            assert!(
                delay >= step && delay <= 2 * step,
                "attempt {}: {delay}",
                i + 1
            );
        }
    }

    #[test]
    fn retries_respect_ready_at() {
        let mut sched = Scheduler::new(1, 1, 2, 100, 0);
        assert!(matches!(
            sched.next_action(0),
            Action::Spawn {
                task: 0,
                attempt: 1
            }
        ));
        let Some(FailureDisposition::Retry { backoff_ms, .. }) = sched.failed(0, 0) else {
            panic!("first failure must retry");
        };
        // Not ready yet: the scheduler says when to wake up.
        match sched.next_action(backoff_ms - 1) {
            Action::Wait { until_ms } => assert_eq!(until_ms, Some(backoff_ms)),
            other => panic!("expected Wait, got {other:?}"),
        }
        assert!(matches!(
            sched.next_action(backoff_ms),
            Action::Spawn {
                task: 0,
                attempt: 2
            }
        ));
    }

    #[test]
    fn restore_reseats_resumed_state() {
        let mut sched = Scheduler::new(3, 2, 3, 10, 0);
        sched.restore(0, TaskSeed::Completed);
        sched.restore(1, TaskSeed::DeadLettered);
        sched.restore(2, TaskSeed::Resumed { next_attempt: 3 });
        assert!(matches!(sched.state(0), TaskState::Completed));
        assert!(matches!(sched.state(1), TaskState::DeadLettered));
        match sched.next_action(0) {
            Action::Spawn {
                task: 2,
                attempt: 3,
            } => {}
            other => panic!("expected final attempt of task 2, got {other:?}"),
        }
        // Failing the final attempt dead-letters immediately.
        assert_eq!(
            sched.failed(2, 0),
            Some(FailureDisposition::DeadLetter { attempts: 3 })
        );
        assert!(sched.is_done());
    }

    #[test]
    fn failed_on_a_non_running_task_is_reported_not_panicked() {
        let mut sched = Scheduler::new(1, 1, 2, 10, 0);
        assert_eq!(sched.failed(0, 0), None);
        assert_eq!(sched.failed(9, 0), None);
    }
}
