//! Distributed map-reduce parse jobs: a coordinator that shards a
//! corpus across worker **processes**, retries failed shards with
//! exponential backoff, dead-letters poison shards, and survives
//! SIGKILL of any participant.
//!
//! The paper's efficiency study (§V) runs every parser single-threaded;
//! the in-process [`logparse_core::ParallelDriver`] lifts that to
//! threads, and this crate lifts the same map/merge pipeline to
//! processes — the unit of failure an operator actually loses (OOM
//! kills, node reboots, `kill -9`). The split of responsibilities:
//!
//! * **`logparse_ingest::jobs`** — the work-dir *protocol*: manifest,
//!   shard results, DLQ records, the fault injector, and the worker
//!   entry point (`logmine worker`).
//! * **[`Scheduler`]** — the pure state machine: who runs next,
//!   retry-vs-dead-letter, exponential backoff with deterministic
//!   jitter. Property-tested without spawning a single process.
//! * **[`run_job`]** — the effectful shell: spawn/reap workers, emit
//!   JSONL lifecycle events (`job_started`, `task_assigned`,
//!   `agent_started`, `agent_failed`, `agent_retrying`,
//!   `task_completed`, `task_dead_lettered`, `job_finished` — all
//!   correlated by `job_id`), publish `jobs_*` metrics, and [`reduce`]
//!   the shard results with the exact merge `ParallelDriver` uses, so
//!   the distributed answer is byte-identical to the in-process one.
//!
//! # Crash safety
//!
//! Every hand-off is a file made visible by atomic rename; attempt
//! counters are persisted *before* each spawn. A coordinator restarted
//! over an existing job directory re-seats completed shards without
//! re-running them, grants poison shards only their remaining attempt
//! budget, and finishes the rest — no shard is lost, none is reduced
//! twice.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coordinator;
mod metrics;
mod scheduler;

pub use coordinator::{reduce, run_job, JobConfig, JobOutcome};
pub use metrics::JobMetrics;
pub use scheduler::{Action, FailureDisposition, Scheduler, TaskSeed, TaskState};

use logparse_ingest::IngestError;

/// Errors the coordinator can surface.
#[derive(Debug)]
pub enum JobError {
    /// An I/O failure spawning, reaping, or reading job artifacts.
    Io(std::io::Error),
    /// An invalid configuration (bad shard count, manifest mismatch,
    /// malformed fault plan, scheduler bookkeeping violation).
    Config(String),
    /// A work-dir protocol failure (corrupt manifest or state blob).
    Protocol(IngestError),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Io(e) => write!(f, "I/O error: {e}"),
            JobError::Config(msg) => write!(f, "job configuration error: {msg}"),
            JobError::Protocol(e) => write!(f, "job protocol error: {e}"),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Io(e) => Some(e),
            JobError::Protocol(e) => Some(e),
            JobError::Config(_) => None,
        }
    }
}

impl From<std::io::Error> for JobError {
    fn from(e: std::io::Error) -> Self {
        JobError::Io(e)
    }
}

impl From<IngestError> for JobError {
    fn from(e: IngestError) -> Self {
        match e {
            IngestError::Io(e) => JobError::Io(e),
            IngestError::Config(msg) => JobError::Config(msg),
            other => JobError::Protocol(other),
        }
    }
}

impl From<logparse_core::ParseError> for JobError {
    fn from(e: logparse_core::ParseError) -> Self {
        JobError::from(IngestError::from(e))
    }
}

impl From<logparse_store::StoreError> for JobError {
    fn from(e: logparse_store::StoreError) -> Self {
        JobError::from(IngestError::from(e))
    }
}
