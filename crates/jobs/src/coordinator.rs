//! The job coordinator: spawns worker processes, reaps them, retries
//! failures, dead-letters poison shards, and reduces the surviving
//! shard results into one [`Parse`].
//!
//! All decisions live in the pure [`Scheduler`]; this module is the
//! effectful shell around it — process spawning, the work-dir protocol
//! of `logparse_ingest::jobs`, journal events, and metrics. Crash
//! safety comes entirely from the protocol's durable artifacts:
//!
//! * the manifest and per-task attempt counters live in a
//!   `logparse-store` state store (CRC-framed, atomically renamed);
//! * a task counts as complete **iff** its `out/task-<i>.json`
//!   validates against the manifest, and as dead **iff** its
//!   `dlq/task-<i>.json` exists;
//! * the attempt counter is persisted *before* each spawn, so an
//!   attempt in flight when the coordinator is SIGKILLed is counted as
//!   consumed (conservative: a poison shard can never exceed its
//!   budget across restarts).
//!
//! A restarted coordinator rebuilds the scheduler from those artifacts
//! and continues; completed shards are never re-run, so resume neither
//! loses nor duplicates work.

use std::io::Read as _;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use logparse_core::{count_corpus_lines, EventId, Parse, Template, TemplateMerge};
use logparse_ingest::jobs::{
    dlq_dir, events_path, kill_self, out_dir, state_dir, DlqRecord, FaultPlan, JobManifest,
    ResultRead, ShardResult,
};
use logparse_ingest::IngestError;
use logparse_obs::journal::{mint_run_id, Value};
use logparse_obs::Journal;
use logparse_store::{sync_dir, BlobRead, StoreConfig, TemplateStore};

use crate::metrics::JobMetrics;
use crate::scheduler::{Action, FailureDisposition, Scheduler, TaskSeed};
use crate::JobError;

/// How often the coordinator polls its worker pool between reaps.
const POLL_INTERVAL: Duration = Duration::from_millis(5);

/// Everything [`run_job`] needs. The manifest-determining fields
/// (`corpus`, `parser`, `shards`, `max_retries`, `backoff_ms`) are
/// validated against a stored manifest on resume — a job directory
/// answers for exactly one job.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// The job directory (created if absent; resumed if populated).
    pub job_dir: PathBuf,
    /// The corpus file workers read and slice.
    pub corpus: PathBuf,
    /// Batch parser name (`drain`, `iplom`, `slct`, …).
    pub parser: String,
    /// Number of map tasks; determines the result exactly as the chunk
    /// count of `ParallelDriver` does.
    pub shards: usize,
    /// Maximum concurrently running worker processes (≥ 1).
    pub workers: usize,
    /// Attempt budget per task, first try included.
    pub max_retries: u32,
    /// Base retry backoff; doubles per attempt, plus deterministic
    /// jitter.
    pub backoff_ms: u64,
    /// Kill a worker attempt that runs longer than this (hung-worker
    /// protection); `None` = no timeout.
    pub task_timeout_ms: Option<u64>,
    /// The binary spawned as `<worker_exe> worker --job-dir … --task …
    /// --attempt …` — normally the running `logmine` executable itself.
    pub worker_exe: PathBuf,
}

/// What a finished [`run_job`] call reports.
#[derive(Debug)]
pub struct JobOutcome {
    /// The job's correlation id (stable across restarts).
    pub job_id: String,
    /// Whether an existing job directory was resumed.
    pub resumed: bool,
    /// Corpus line count from the manifest.
    pub lines: usize,
    /// Tasks with a validated result, ascending.
    pub completed: Vec<usize>,
    /// Tasks in the dead-letter queue, ascending.
    pub dead_lettered: Vec<usize>,
    /// Failed attempts absorbed by retries during *this* run.
    pub retries: u64,
    /// The reduced parse — present iff no task was dead-lettered.
    pub parse: Option<Parse>,
}

/// One spawned worker attempt awaiting reap.
struct RunningWorker {
    task: usize,
    attempt: u32,
    child: Child,
    started: Instant,
    spawned_at_ms: u64,
}

/// Reads how many attempts of `task` previous coordinator incarnations
/// persisted. Missing or corrupt counters read as 0 — the benign
/// direction (a lost counter grants attempts, it never steals them).
fn attempts_used(job_dir: &Path, task: usize) -> Result<u32, JobError> {
    let name = format!("attempts-{task}");
    Ok(
        match TemplateStore::read_blob(&state_dir(job_dir), &name)? {
            BlobRead::Ok(bytes) => String::from_utf8(bytes)
                .ok()
                .and_then(|text| text.trim().parse().ok())
                .unwrap_or(0),
            BlobRead::Missing | BlobRead::Corrupt => 0,
        },
    )
}

/// Drains whatever the worker wrote to its piped stderr (bounded by the
/// pipe buffer; workers print at most one error line).
fn drain_stderr(child: &mut Child) -> String {
    let mut text = String::new();
    if let Some(mut stderr) = child.stderr.take() {
        let _ = stderr.read_to_string(&mut text);
    }
    text.trim().replace('\n', " | ")
}

/// Emits the failure events for one failed attempt, updates the
/// scheduler, and writes the DLQ record when the budget is exhausted.
#[allow(clippy::too_many_arguments)]
fn absorb_failure(
    sched: &mut Scheduler,
    journal: &Journal,
    metrics: &JobMetrics,
    manifest: &JobManifest,
    job_dir: &Path,
    task: usize,
    attempt: u32,
    now_ms: u64,
    reason: &str,
    retries: &mut u64,
) -> Result<(), JobError> {
    let disposition = sched
        .failed(task, now_ms)
        .ok_or_else(|| JobError::Config(format!("scheduler lost track of task {task}")))?;
    let retry_eligible = matches!(disposition, FailureDisposition::Retry { .. });
    journal.emit(
        "agent_failed",
        &[
            ("job_id", Value::str(manifest.job_id.clone())),
            ("task", Value::Num(task as f64)),
            ("attempt", Value::Num(f64::from(attempt))),
            ("failure_reason", Value::str(reason)),
            ("retry_eligible", Value::Bool(retry_eligible)),
        ],
    );
    match disposition {
        FailureDisposition::Retry {
            next_attempt,
            backoff_ms,
        } => {
            journal.emit(
                "agent_retrying",
                &[
                    ("job_id", Value::str(manifest.job_id.clone())),
                    ("task", Value::Num(task as f64)),
                    ("attempt", Value::Num(f64::from(next_attempt))),
                    ("backoff_ms", Value::Num(backoff_ms as f64)),
                ],
            );
            metrics.task_retries.inc();
            *retries += 1;
        }
        FailureDisposition::DeadLetter { attempts } => {
            DlqRecord {
                task,
                job_id: manifest.job_id.clone(),
                attempts,
                failure: reason.to_owned(),
            }
            .write(job_dir)?;
            journal.emit(
                "task_dead_lettered",
                &[
                    ("job_id", Value::str(manifest.job_id.clone())),
                    ("task", Value::Num(task as f64)),
                    ("attempts", Value::Num(f64::from(attempts))),
                    ("failure_reason", Value::str(reason)),
                ],
            );
            metrics.tasks_dead_lettered.inc();
        }
    }
    Ok(())
}

/// Validates a resumed manifest against the requested configuration.
fn validate_manifest(manifest: &JobManifest, config: &JobConfig) -> Result<(), JobError> {
    if manifest.parser != config.parser {
        return Err(JobError::Config(format!(
            "job directory already holds a `{}` job, requested `{}`",
            manifest.parser, config.parser
        )));
    }
    if manifest.shards != config.shards {
        return Err(JobError::Config(format!(
            "job directory already split into {} shard(s), requested {}",
            manifest.shards, config.shards
        )));
    }
    if manifest.corpus != config.corpus {
        return Err(JobError::Config(format!(
            "job directory already bound to corpus {}, requested {}",
            manifest.corpus.display(),
            config.corpus.display()
        )));
    }
    Ok(())
}

/// Runs (or resumes) the job described by `config` to completion: every
/// task ends either completed or dead-lettered. Returns the reduced
/// [`Parse`] when the whole corpus was covered; a job with dead
/// letters returns `parse: None` and the caller decides how loudly to
/// fail. See the [module docs](self) for the crash-safety contract.
pub fn run_job(config: &JobConfig) -> Result<JobOutcome, JobError> {
    if config.shards == 0 {
        return Err(JobError::Config("shards must be at least 1".into()));
    }
    if config.max_retries == 0 {
        return Err(JobError::Config("max-retries must be at least 1".into()));
    }
    std::fs::create_dir_all(&config.job_dir)?;
    std::fs::create_dir_all(out_dir(&config.job_dir))?;
    std::fs::create_dir_all(dlq_dir(&config.job_dir))?;
    // Every publish below (results, DLQ records, store state) renames
    // into these directories; fsync their entries now so a power loss
    // cannot erase the job layout the durable publishes rely on.
    if let Some(parent) = config
        .job_dir
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
    {
        sync_dir(parent)?;
    }
    sync_dir(&config.job_dir)?;
    let (store, _recovery) = TemplateStore::open(
        &state_dir(&config.job_dir),
        &StoreConfig {
            shards: 1,
            ..StoreConfig::default()
        },
    )?;

    let (manifest, resumed) = match JobManifest::load(&config.job_dir)? {
        Some(existing) => {
            validate_manifest(&existing, config)?;
            (existing, true)
        }
        None => {
            // One mmap + SWAR count pass — no record materialization
            // just to size the shard manifest.
            let lines = count_corpus_lines(&config.corpus)?;
            if lines == 0 {
                return Err(JobError::Config(format!(
                    "corpus {} is empty",
                    config.corpus.display()
                )));
            }
            let manifest = JobManifest {
                job_id: mint_run_id(),
                parser: config.parser.clone(),
                corpus: config.corpus.clone(),
                lines,
                shards: config.shards,
                max_retries: config.max_retries,
                backoff_ms: config.backoff_ms,
            };
            manifest.save(&store)?;
            (manifest, false)
        }
    };

    let journal = Journal::appending(&events_path(&config.job_dir))?;
    let metrics = JobMetrics::new(&manifest.parser);
    let fault = FaultPlan::from_env()?;
    let ranges = manifest.ranges();
    let tasks = ranges.len();
    // The job id is 16 hex chars minted by the journal; reusing it as
    // the jitter seed keeps every retry delay a pure function of the
    // job identity.
    let seed = u64::from_str_radix(&manifest.job_id, 16).unwrap_or(0x9e37_79b9_7f4a_7c15);
    let mut sched = Scheduler::new(
        tasks,
        config.workers,
        manifest.max_retries,
        manifest.backoff_ms,
        seed,
    );
    journal.emit(
        "job_started",
        &[
            ("job_id", Value::str(manifest.job_id.clone())),
            ("parser", Value::str(manifest.parser.clone())),
            (
                "corpus",
                Value::str(manifest.corpus.to_string_lossy().into_owned()),
            ),
            ("lines", Value::Num(manifest.lines as f64)),
            ("tasks", Value::Num(tasks as f64)),
            ("workers", Value::Num(config.workers as f64)),
            ("max_retries", Value::Num(f64::from(manifest.max_retries))),
            ("backoff_ms", Value::Num(manifest.backoff_ms as f64)),
            ("resumed", Value::Bool(resumed)),
        ],
    );

    // Rebuild the scheduler from the durable artifacts (no-op for a
    // fresh directory: everything stays Fresh).
    for task in 0..tasks {
        if let ResultRead::Ok(_) = ShardResult::load(&config.job_dir, &manifest, task) {
            sched.restore(task, TaskSeed::Completed);
            if resumed {
                journal.emit(
                    "task_recovered",
                    &[
                        ("job_id", Value::str(manifest.job_id.clone())),
                        ("task", Value::Num(task as f64)),
                    ],
                );
            }
            continue;
        }
        if DlqRecord::load(&config.job_dir, task)?.is_some() {
            sched.restore(task, TaskSeed::DeadLettered);
            continue;
        }
        let used = attempts_used(&config.job_dir, task)?;
        if used == 0 {
            continue;
        }
        if used >= manifest.max_retries {
            // The budget was consumed by earlier incarnations (the
            // last attempt was in flight when the coordinator died and
            // counts as failed) — dead-letter now, never over-spend.
            let reason = "attempt budget exhausted before coordinator restart";
            DlqRecord {
                task,
                job_id: manifest.job_id.clone(),
                attempts: used,
                failure: reason.into(),
            }
            .write(&config.job_dir)?;
            journal.emit(
                "task_dead_lettered",
                &[
                    ("job_id", Value::str(manifest.job_id.clone())),
                    ("task", Value::Num(task as f64)),
                    ("attempts", Value::Num(f64::from(used))),
                    ("failure_reason", Value::str(reason)),
                ],
            );
            metrics.tasks_dead_lettered.inc();
            sched.restore(task, TaskSeed::DeadLettered);
        } else {
            sched.restore(
                task,
                TaskSeed::Resumed {
                    next_attempt: used + 1,
                },
            );
        }
    }

    // lint:allow(timing-discipline): the scheduler clock; feeds backoff
    // ready-times and the task timeout, not a metric
    let clock = Instant::now();
    let now_ms = |clock: &Instant| clock.elapsed().as_millis() as u64;
    let exit_after = fault.coordinator_exit_after();
    let mut completions_this_run = 0usize;
    let mut retries_this_run = 0u64;
    let mut running: Vec<RunningWorker> = Vec::new();

    loop {
        // Reap exited (and kill timed-out) workers.
        let now = now_ms(&clock);
        let mut still = Vec::with_capacity(running.len());
        for mut worker in running.drain(..) {
            let status = match worker.child.try_wait() {
                Ok(Some(status)) => Some(Ok(status)),
                Ok(None) => {
                    let timed_out = config
                        .task_timeout_ms
                        .is_some_and(|t| now.saturating_sub(worker.spawned_at_ms) >= t);
                    if timed_out {
                        let _ = worker.child.kill();
                        let _ = worker.child.wait();
                        Some(Err(format!(
                            "attempt exceeded task timeout ({} ms)",
                            config.task_timeout_ms.unwrap_or(0)
                        )))
                    } else {
                        None
                    }
                }
                Err(err) => Some(Err(format!("could not reap worker: {err}"))),
            };
            let Some(status) = status else {
                still.push(worker);
                continue;
            };
            metrics
                .attempt_seconds
                .observe_duration(worker.started.elapsed());
            let failure = match status {
                Ok(status) if status.success() => {
                    match ShardResult::load(&config.job_dir, &manifest, worker.task) {
                        ResultRead::Ok(_) => None,
                        ResultRead::Missing => {
                            Some("worker exited cleanly without publishing a result".to_owned())
                        }
                        ResultRead::Corrupt(reason) => {
                            Some(format!("published result rejected: {reason}"))
                        }
                    }
                }
                Ok(status) => {
                    let stderr = drain_stderr(&mut worker.child);
                    Some(if stderr.is_empty() {
                        format!("worker died: {status}")
                    } else {
                        format!("worker died: {status}: {stderr}")
                    })
                }
                Err(reason) => Some(reason),
            };
            match failure {
                None => {
                    sched.completed(worker.task);
                    journal.emit(
                        "task_completed",
                        &[
                            ("job_id", Value::str(manifest.job_id.clone())),
                            ("task", Value::Num(worker.task as f64)),
                            ("attempt", Value::Num(f64::from(worker.attempt))),
                        ],
                    );
                    metrics.tasks_completed.inc();
                    completions_this_run += 1;
                    if exit_after.is_some_and(|n| completions_this_run >= n) {
                        // Injected coordinator crash: die like SIGKILL,
                        // after flushing the journal so the chaos tests
                        // can assert on the event trail so far.
                        journal.flush();
                        kill_self();
                    }
                }
                Some(reason) => absorb_failure(
                    &mut sched,
                    &journal,
                    &metrics,
                    &manifest,
                    &config.job_dir,
                    worker.task,
                    worker.attempt,
                    now,
                    &reason,
                    &mut retries_this_run,
                )?,
            }
        }
        running = still;

        // Spawn everything that is ready while worker slots are free.
        let mut done = false;
        loop {
            let now = now_ms(&clock);
            match sched.next_action(now) {
                Action::Spawn { task, attempt } => {
                    // Durable *before* the process exists: a coordinator
                    // SIGKILL between here and the spawn costs at most
                    // one attempt, never grants an extra one.
                    store.put_blob(&format!("attempts-{task}"), attempt.to_string().as_bytes())?;
                    journal.emit(
                        "task_assigned",
                        &[
                            ("job_id", Value::str(manifest.job_id.clone())),
                            ("task", Value::Num(task as f64)),
                            ("attempt", Value::Num(f64::from(attempt))),
                        ],
                    );
                    let spawned = Command::new(&config.worker_exe)
                        .arg("worker")
                        .arg("--job-dir")
                        .arg(&config.job_dir)
                        .arg("--task")
                        .arg(task.to_string())
                        .arg("--attempt")
                        .arg(attempt.to_string())
                        .stdin(Stdio::null())
                        .stdout(Stdio::null())
                        .stderr(Stdio::piped())
                        .spawn();
                    match spawned {
                        Ok(child) => {
                            journal.emit(
                                "agent_started",
                                &[
                                    ("job_id", Value::str(manifest.job_id.clone())),
                                    ("task", Value::Num(task as f64)),
                                    ("attempt", Value::Num(f64::from(attempt))),
                                    ("pid", Value::Num(f64::from(child.id()))),
                                ],
                            );
                            running.push(RunningWorker {
                                task,
                                attempt,
                                child,
                                // lint:allow(timing-discipline): feeds the
                                // jobs_task_attempt_seconds histogram on reap
                                started: Instant::now(),
                                spawned_at_ms: now,
                            });
                        }
                        Err(err) => absorb_failure(
                            &mut sched,
                            &journal,
                            &metrics,
                            &manifest,
                            &config.job_dir,
                            task,
                            attempt,
                            now,
                            &format!("spawn failed: {err}"),
                            &mut retries_this_run,
                        )?,
                    }
                }
                Action::Wait { .. } => break,
                Action::Done => {
                    done = true;
                    break;
                }
            }
        }
        metrics.workers_active.set(running.len() as f64);
        if done {
            break;
        }
        std::thread::sleep(POLL_INTERVAL);
    }

    let (completed, dead_lettered) = sched.terminal();
    let parse = if dead_lettered.is_empty() {
        let mut results = Vec::with_capacity(tasks);
        for task in 0..tasks {
            match ShardResult::load(&config.job_dir, &manifest, task) {
                ResultRead::Ok(result) => results.push(result),
                ResultRead::Missing => {
                    return Err(JobError::Protocol(IngestError::Checkpoint(format!(
                        "task {task} completed but its result file vanished"
                    ))))
                }
                ResultRead::Corrupt(reason) => {
                    return Err(JobError::Protocol(IngestError::Checkpoint(format!(
                        "task {task} result no longer validates: {reason}"
                    ))))
                }
            }
        }
        Some(reduce(manifest.lines, &results))
    } else {
        None
    };
    journal.emit(
        "job_finished",
        &[
            ("job_id", Value::str(manifest.job_id.clone())),
            ("completed", Value::Num(completed.len() as f64)),
            ("dead_lettered", Value::Num(dead_lettered.len() as f64)),
            (
                "templates",
                parse
                    .as_ref()
                    .map_or(Value::Null, |p| Value::Num(p.event_count() as f64)),
            ),
            ("retries", Value::Num(retries_this_run as f64)),
        ],
    );
    journal.flush();
    store.finish()?;
    Ok(JobOutcome {
        job_id: manifest.job_id,
        resumed,
        lines: manifest.lines,
        completed,
        dead_lettered,
        retries: retries_this_run,
        parse,
    })
}

/// Folds shard results (sorted by task) into one global [`Parse`] —
/// the reduce step. This mirrors the in-process parallel driver's
/// merge exactly: templates unify by [`Template::structural_key`] in
/// task order, and with a single shard the merge is skipped entirely
/// (just as `ParallelDriver` hands back the lone chunk parse), so
/// `jobs run` with N shards is byte-identical to `parse_parallel`
/// with N chunks.
pub fn reduce(lines: usize, results: &[ShardResult]) -> Parse {
    if results.len() <= 1 {
        let Some(only) = results.first() else {
            return Parse::new(Vec::new(), vec![None; lines]);
        };
        let assignments = only
            .assignments
            .iter()
            .map(|slot| slot.map(EventId))
            .collect();
        return Parse::new(only.templates.clone(), assignments);
    }
    let mut merge = TemplateMerge::new();
    let mut templates: Vec<Template> = Vec::new();
    for result in results {
        let keys: Vec<String> = result
            .templates
            .iter()
            .map(Template::structural_key)
            .collect();
        merge.merge_shard(result.task, &keys);
        for (local, template) in result.templates.iter().enumerate() {
            let Some(gid) = merge.resolve(result.task, local) else {
                continue;
            };
            if gid == templates.len() {
                templates.push(template.clone());
            }
        }
    }
    let mut assignments: Vec<Option<EventId>> = vec![None; lines];
    for result in results {
        for (offset, assigned) in result.assignments.iter().enumerate() {
            if let Some(slot) = assignments.get_mut(result.start + offset) {
                *slot = assigned.and_then(|local| merge.resolve(result.task, local).map(EventId));
            }
        }
    }
    Parse::new(templates, assignments)
}
