//! Property tests for the pure job scheduler: for arbitrary (shard
//! count, worker count, fault plan) triples the completed and
//! dead-lettered tasks partition the corpus chunks exactly once, a
//! poison task consumes exactly its attempt budget, the worker cap is
//! never exceeded, and per-task backoff delays are monotone
//! non-decreasing.

use logparse_core::ParallelDriver;
use logparse_jobs::{Action, FailureDisposition, Scheduler, TaskState};
use proptest::prelude::*;

/// Drives a scheduler against a simulated fault plan: task `t` fails
/// its first `faults[t]` attempts and succeeds after that (a plan with
/// `faults[t] >= max_retries` is a poison task). Workers "run" in an
/// in-flight set and resolve one at a time whenever the scheduler has
/// nothing to spawn, which exercises the concurrency cap for real.
/// Returns the per-task spawn counts.
fn simulate(sched: &mut Scheduler, faults: &mut [u32], workers: usize) -> Vec<u32> {
    let mut spawns = vec![0u32; faults.len()];
    // First observed attempt number minus one — 0 for fresh tasks,
    // the consumed-attempt count for resumed ones.
    let mut base: Vec<Option<u32>> = vec![None; faults.len()];
    let mut inflight: Vec<(usize, u32)> = Vec::new();
    let mut now = 0u64;
    loop {
        assert!(
            sched.running() <= workers,
            "worker cap exceeded: {} running with {workers} slot(s)",
            sched.running()
        );
        match sched.next_action(now) {
            Action::Spawn { task, attempt } => {
                spawns[task] += 1;
                let start = *base[task].get_or_insert(attempt - 1);
                assert_eq!(
                    start + spawns[task],
                    attempt,
                    "attempt numbers must count spawns of task {task}"
                );
                inflight.push((task, attempt));
            }
            Action::Wait { until_ms } => {
                // Resolve the oldest in-flight attempt, or advance the
                // clock to the scheduler's own wake-up time.
                if inflight.is_empty() {
                    now = until_ms.expect("scheduler waits forever with nothing running");
                    continue;
                }
                let (task, _attempt) = inflight.remove(0);
                if faults[task] > 0 {
                    faults[task] -= 1;
                    let disposition = sched
                        .failed(task, now)
                        .expect("failing a running task must be absorbed");
                    if let FailureDisposition::Retry { backoff_ms, .. } = disposition {
                        // Failures cost wall time too; otherwise every
                        // retry of a zero-backoff plan is ready at once.
                        now += backoff_ms.min(1);
                    }
                } else {
                    sched.completed(task);
                }
            }
            Action::Done => break,
        }
    }
    assert!(inflight.is_empty(), "done with attempts still in flight");
    spawns
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Completed + dead-lettered tasks partition the chunk ranges of
    /// the corpus exactly once, for any fault plan.
    #[test]
    fn terminal_tasks_partition_the_corpus_exactly_once(
        lines in 1usize..5_000,
        shards in 1usize..12,
        workers in 1usize..6,
        max_retries in 1u32..5,
        fault_seed in proptest::collection::vec(0u32..7, 12),
    ) {
        let ranges = ParallelDriver::chunk_ranges(lines, shards);
        let tasks = ranges.len();
        let mut faults: Vec<u32> = (0..tasks).map(|t| fault_seed[t % fault_seed.len()]).collect();
        let planned = faults.clone();
        let mut sched = Scheduler::new(tasks, workers, max_retries, 10, 0xfeed);
        let spawns = simulate(&mut sched, &mut faults, workers);

        prop_assert!(sched.is_done());
        let (completed, dead) = sched.terminal();
        // Exactly-once partition of the task set…
        let mut all: Vec<usize> = completed.iter().chain(dead.iter()).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..tasks).collect::<Vec<_>>());
        // …and therefore of the corpus lines: the terminal tasks' chunk
        // ranges tile 0..lines contiguously with no gap or overlap.
        let mut covered = 0usize;
        for (task, range) in ranges.iter().enumerate() {
            prop_assert_eq!(range.start, covered, "task {} range must abut", task);
            covered = range.end;
        }
        prop_assert_eq!(covered, lines);
        // A task dead-letters iff its fault plan outlasts the budget,
        // and consumes min(planned_failures + 1, budget) attempts.
        for task in 0..tasks {
            let poison = planned[task] >= max_retries;
            prop_assert_eq!(
                dead.contains(&task),
                poison,
                "task {} with {} planned failure(s), budget {}",
                task, planned[task], max_retries
            );
            prop_assert_eq!(
                spawns[task],
                (planned[task] + 1).min(max_retries),
                "task {} attempt count", task
            );
        }
    }

    /// Backoff delays are monotone non-decreasing per task and stay in
    /// the `[step, 2·step]` exponential envelope while un-saturated.
    #[test]
    fn backoff_is_monotone_non_decreasing_per_task(
        backoff_ms in 0u64..10_000,
        tasks in 1usize..8,
        attempts in 2u32..24,
        seed in 0u64..1_000_000,
    ) {
        let mut sched = Scheduler::new(tasks, 1, 1, backoff_ms, seed);
        for task in 0..tasks {
            let delays: Vec<u64> =
                (1..=attempts).map(|a| sched.backoff_delay_ms(task, a)).collect();
            for (i, pair) in delays.windows(2).enumerate() {
                prop_assert!(
                    pair[0] <= pair[1],
                    "task {}: delay regressed at attempt {}: {:?}",
                    task, i + 2, delays
                );
            }
            for (i, &delay) in delays.iter().enumerate() {
                let exponent = (i as u32).min(20);
                let step = backoff_ms.saturating_mul(1u64 << exponent);
                prop_assert!(
                    delay >= step && delay <= step.saturating_mul(2).max(delays[0]),
                    "task {}: attempt {} delay {} outside [{}, {}]",
                    task, i + 1, delay, step, step.saturating_mul(2)
                );
            }
        }
    }
}

/// The exponential saturates instead of overflowing, and the monotone
/// clamp holds across the saturation boundary where raw jitter could
/// otherwise regress.
#[test]
fn backoff_saturation_stays_monotone() {
    let mut sched = Scheduler::new(1, 1, 1, u64::MAX / 4, 99);
    let mut previous = 0u64;
    for attempt in 1..40 {
        let delay = sched.backoff_delay_ms(0, attempt);
        assert!(delay >= previous, "attempt {attempt}: {delay} < {previous}");
        previous = delay;
    }
    assert_eq!(previous, u64::MAX, "saturated backoff pins at u64::MAX");
}

/// A resumed task gets only its remaining budget: restoring with
/// `next_attempt == budget` leaves exactly one attempt before the DLQ.
#[test]
fn resume_grants_only_the_remaining_budget() {
    let mut sched = Scheduler::new(2, 2, 3, 5, 7);
    sched.restore(0, logparse_jobs::TaskSeed::Resumed { next_attempt: 3 });
    let mut faults = vec![10u32, 0u32]; // task 0 poison, task 1 clean
    let spawns = simulate(&mut sched, &mut faults, 2);
    assert_eq!(spawns[0], 1, "task 0 had one attempt left");
    assert_eq!(spawns[1], 1);
    let (completed, dead) = sched.terminal();
    assert_eq!(completed, vec![1]);
    assert_eq!(dead, vec![0]);
    assert!(matches!(sched.state(0), TaskState::DeadLettered));
}
