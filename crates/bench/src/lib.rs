//! Benchmark harness for the `logmine` workspace.
//!
//! This crate carries no library code of its own; it hosts
//!
//! * **table/figure binaries** (`src/bin/`) — `table1`, `table2`,
//!   `table3`, `fig2`, `fig3`, `critical_events`, `preprocess_ablation`,
//!   `mining_tasks` — each regenerating one artifact of the paper via
//!   [`logparse_eval::experiments`] and printing a paper-style table.
//!   Run with `cargo run -p logparse-bench --release --bin <name>`;
//!   every binary accepts an optional `--quick` flag for a reduced-size
//!   run.
//! * **Criterion benches** (`benches/`) — `parser_scaling` (Fig. 2's
//!   companion), `parser_accuracy_cost` (Table II's runtime),
//!   `mining_pipeline` (Table III's stages), `preprocess` and
//!   `tokenizer` (substrate throughput).

#![forbid(unsafe_code)]

/// Returns `true` when `--quick` was passed on the command line; the
/// table/figure binaries use it to shrink their workloads for smoke runs.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Returns `true` when `--metrics` was passed on the command line; the
/// table/figure binaries then append the process-global metric registry
/// (Prometheus text format) to stderr via [`dump_metrics`] after their
/// run, exposing the `obs_span_duration_seconds{span="parser_parse"}`
/// histograms the experiments record through `LogParser::timed_parse`.
pub fn metrics_mode() -> bool {
    std::env::args().any(|a| a == "--metrics")
}

/// Returns the value of `--threads N` (or `-j N`) from the command
/// line; `default` when the flag is absent. The table/figure binaries
/// pass it to `LogParser::parse_parallel` for chunked-parallel runs.
///
/// # Panics
///
/// Panics with a usage message when the flag is present but its value is
/// missing or not a positive integer.
pub fn threads_arg(default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    let Some(i) = args.iter().position(|a| a == "--threads" || a == "-j") else {
        return default;
    };
    args.get(i + 1)
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| panic!("{} needs a positive integer value", args[i]))
}

/// Prints the process-global metric registry to stderr when
/// [`metrics_mode`] is on; a no-op otherwise. Stderr keeps the tables on
/// stdout clean for redirection.
pub fn dump_metrics() {
    if metrics_mode() {
        eprintln!("--- metrics ---");
        eprint!("{}", logparse_obs::global().render());
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_mode_is_callable() {
        // In the test harness there is no --quick flag.
        assert!(!super::quick_mode());
    }

    #[test]
    fn dump_metrics_without_flag_is_a_no_op() {
        assert!(!super::metrics_mode());
        super::dump_metrics();
    }

    #[test]
    fn threads_arg_defaults_when_flag_is_absent() {
        // The test harness passes no --threads flag.
        assert_eq!(super::threads_arg(1), 1);
        assert_eq!(super::threads_arg(4), 4);
    }
}
