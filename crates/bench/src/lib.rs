//! Benchmark harness for the `logmine` workspace.
//!
//! This crate carries no library code of its own; it hosts
//!
//! * **table/figure binaries** (`src/bin/`) — `table1`, `table2`,
//!   `table3`, `fig2`, `fig3`, `critical_events`, `preprocess_ablation`,
//!   `mining_tasks` — each regenerating one artifact of the paper via
//!   [`logparse_eval::experiments`] and printing a paper-style table.
//!   Run with `cargo run -p logparse-bench --release --bin <name>`;
//!   every binary accepts an optional `--quick` flag for a reduced-size
//!   run.
//! * **Criterion benches** (`benches/`) — `parser_scaling` (Fig. 2's
//!   companion), `parser_accuracy_cost` (Table II's runtime),
//!   `mining_pipeline` (Table III's stages), `preprocess` and
//!   `tokenizer` (substrate throughput).

/// Returns `true` when `--quick` was passed on the command line; the
/// table/figure binaries use it to shrink their workloads for smoke runs.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_mode_is_callable() {
        // In the test harness there is no --quick flag.
        assert!(!super::quick_mode());
    }
}
