//! Regenerates **Table II** (parsing accuracy, raw/preprocessed). See
//! `logparse_eval::experiments::table2`.

use logparse_bench::quick_mode;
use logparse_eval::experiments::table2;

fn main() {
    let (sample, runs) = if quick_mode() { (500, 3) } else { (2_000, 10) };
    eprintln!("running Table II: {sample}-message samples, {runs} seeds for randomized parsers…");
    let columns = table2::run(sample, runs, 42);
    println!("Table II: Parsing Accuracy of Log Parsing Methods (Raw/Preprocessed)");
    println!();
    print!("{}", table2::render(&columns));
    println!();
    println!("paper reference:");
    println!("        BGL        HPC        HDFS       Zookeeper  Proxifier");
    println!("SLCT    0.61/0.94  0.81/0.86  0.86/0.93  0.92/0.92  0.89/-");
    println!("IPLoM   0.99/0.99  0.64/0.64  0.99/1.00  0.94/0.90  0.90/-");
    println!("LKE     0.67/0.70  0.17/0.17  0.57/0.96  0.78/0.82  0.81/-");
    println!("LogSig  0.26/0.98  0.77/0.87  0.91/0.93  0.96/0.99  0.84/-");
}
