//! Regenerates the **Finding 6 ablation** (critical-event parse errors →
//! order-of-magnitude mining degradation). See
//! `logparse_eval::experiments::critical`.

use logparse_bench::quick_mode;
use logparse_eval::experiments::critical;

fn main() {
    let mut config = critical::CriticalConfig::default();
    if quick_mode() {
        config.blocks = 1_000;
    }
    eprintln!(
        "running critical-event ablation on {} blocks…",
        config.blocks
    );
    let points = critical::run(&config);
    println!("Finding 6 ablation: merge errors on critical vs. non-critical events");
    println!();
    print!("{}", critical::render(&points));
    println!();
    println!("paper claim: \"4% errors in parsing could even cause an order of magnitude");
    println!("performance degradation in log mining\" — observe the false-alarm column of");
    println!("the critical target versus the non-critical control at equal error rates,");
    println!("and note how small the overall error fraction stays.");
}
