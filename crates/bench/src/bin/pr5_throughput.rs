//! Single-thread parser throughput on the generated HDFS-style corpus.
//!
//! Emits one JSON object per parser on stdout — the measurement behind
//! `BENCH_PR5.json` (before/after evidence for the token-interning
//! refactor). Deterministic corpora (seeded generator); best-of-three
//! wall time per parser so a stray scheduler hiccup cannot masquerade
//! as a regression.
//!
//! ```text
//! cargo run --release -p logparse-bench --bin pr5_throughput [--quick]
//! ```

use std::time::Instant;

use logparse_bench::quick_mode;
use logparse_core::{Corpus, LogParser};
use logparse_datasets::hdfs;
use logparse_parsers::{Ael, Drain, Iplom, LenMa, Lke, LogMine, LogSig, Slct, Spell};

/// Parsers with the corpus size each one gets: the quadratic methods
/// (LKE, LogMine, LenMa vs. group count) run on a smaller slice so the
/// whole suite finishes in minutes while the hash-bound parsers see
/// enough lines for stable rates.
fn suite(quick: bool) -> Vec<(Box<dyn LogParser>, usize)> {
    let scale = if quick { 10 } else { 1 };
    vec![
        (
            Box::new(Slct::builder().support_count(2).build()) as Box<dyn LogParser>,
            60_000 / scale,
        ),
        (Box::new(Iplom::default()), 60_000 / scale),
        (
            Box::new(LogSig::builder().clusters(12).seed(1).build()),
            20_000 / scale,
        ),
        (Box::new(Drain::default()), 60_000 / scale),
        (Box::new(Spell::default()), 30_000 / scale),
        (Box::new(Ael::default()), 60_000 / scale),
        (Box::new(LenMa::default()), 30_000 / scale),
        (Box::new(LogMine::default()), 20_000 / scale),
        (Box::new(Lke::default()), 2_000 / scale),
    ]
}

fn main() {
    let quick = quick_mode();
    let corpus_full = hdfs::generate(60_000 / if quick { 10 } else { 1 }, 9).corpus;
    println!("[");
    let suite = suite(quick);
    let last = suite.len() - 1;
    for (i, (parser, lines)) in suite.into_iter().enumerate() {
        let corpus: Corpus = corpus_full.take(lines);
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let started = Instant::now();
            let parse = parser.parse(&corpus).expect("bench corpus parses");
            let elapsed = started.elapsed().as_secs_f64();
            assert_eq!(parse.len(), corpus.len());
            best = best.min(elapsed);
        }
        let rate = corpus.len() as f64 / best;
        println!(
            "  {{\"parser\": \"{}\", \"lines\": {}, \"seconds\": {:.4}, \"lines_per_sec\": {:.0}}}{}",
            parser.name(),
            corpus.len(),
            best,
            rate,
            if i == last { "" } else { "," }
        );
    }
    println!("]");
}
