//! Runs the **extension-parser benchmark** (Drain, Spell, AEL, LenMa,
//! LogMine — the next-generation LogPAI parsers — under the Table II
//! protocol). See `logparse_eval::experiments::extensions`.

use logparse_bench::quick_mode;
use logparse_eval::experiments::extensions;

fn main() {
    let sample = if quick_mode() { 500 } else { 2_000 };
    eprintln!("running extension-parser benchmark on {sample}-message samples…");
    let points = extensions::run(sample, 42);
    println!("Extension parsers (default configs, raw messages): F-measure");
    println!();
    print!("{}", extensions::render(&points));
    println!();
    println!("context: these are the parsers the authors' follow-on LogPAI toolkit added");
    println!("after the study; compare with the tuned Table II rows of the original four.");
}
