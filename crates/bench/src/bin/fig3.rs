//! Regenerates **Fig. 3** (parsing accuracy vs. corpus size with
//! parameters tuned on a 2 k sample). See
//! `logparse_eval::experiments::fig3`.

use logparse_bench::quick_mode;
use logparse_eval::experiments::fig3;
use logparse_eval::ParserKind;

fn main() {
    let config = if quick_mode() {
        fig3::Fig3Config {
            sizes: vec![400, 1_000, 4_000],
            tuning_sample: 1_000,
            lke_cap: 1_000,
            ..fig3::Fig3Config::default()
        }
    } else {
        fig3::Fig3Config {
            sizes: vec![400, 1_000, 4_000, 10_000, 40_000],
            tuning_sample: 2_000,
            lke_cap: 2_000,
            logsig_cap: 10_000,
            ..fig3::Fig3Config::default()
        }
    };
    eprintln!("running Fig. 3 sweep: sizes {:?}…", config.sizes);
    let points = fig3::run(&config);
    println!("Fig. 3: Parsing Accuracy on Datasets in Different Size (params tuned on sample)");
    for dataset in ["BGL", "HPC", "HDFS", "Zookeeper", "Proxifier"] {
        println!();
        println!("({dataset})");
        print!("{}", fig3::render(&points, dataset));
        for kind in ParserKind::ALL {
            if let Some(s) = fig3::consistency_spread(&points, dataset, kind) {
                println!("  {} accuracy spread across sizes: {s:.2}", kind.name());
            }
        }
    }
    println!();
    println!("paper shape: IPLoM consistent in most cases; SLCT consistent except HPC; LKE");
    println!("volatile; LogSig consistent on event-poor datasets, varying on BGL/HPC.");
}
