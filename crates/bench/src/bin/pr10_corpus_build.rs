//! Corpus-construction throughput: legacy reader vs. zero-copy loader.
//!
//! Measures file -> [`Corpus`] over two workload shapes — a
//! low-cardinality "steady templates" corpus (vocabulary of ~100
//! tokens, the allocation-bound case the loader targets) and the
//! generated HDFS-style corpus (unique block ids and addresses, so
//! construction is dominated by first-occurrence interning that both
//! pipelines pay identically) — through three builders:
//!
//! * `legacy` — `read_lines` + `Corpus::from_lines`: one `String` per
//!   line, char-decoded splitting, one `Vec<Symbol>` per row;
//! * `mmap_seq` — `Corpus::from_path`: mmap + SWAR scan + arena-direct
//!   interning, no per-line or per-row allocation;
//! * `mmap_par` — `Corpus::from_path_parallel` at the machine's
//!   available parallelism (on a single-core host this adds only the
//!   chunk bookkeeping).
//!
//! Configurations are interleaved (best-of-five) so machine-state
//! drift hits every builder equally, and bit-identity between the
//! three corpora is asserted before any number is reported. A fourth
//! row times the SWAR scan alone (`count_corpus_lines`) as the ceiling
//! on pure line discovery. Output is the JSON behind `BENCH_PR10.json`.
//!
//! ```text
//! cargo run --release -p logparse-bench --bin pr10_corpus_build [--quick]
//! ```

use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

use logparse_bench::quick_mode;
use logparse_core::{count_corpus_lines, read_lines, Corpus, Tokenizer};
use logparse_datasets::hdfs;

struct Workload {
    name: &'static str,
    path: PathBuf,
    lines: usize,
}

/// Writes `lines`-many low-cardinality log lines (vocabulary ~120
/// distinct tokens) — the steady-state shape where construction cost
/// is line/token bookkeeping, not vocabulary growth.
fn steady_workload(lines: usize) -> Workload {
    let path = std::env::temp_dir().join(format!("pr10-steady-{}.log", std::process::id()));
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path).expect("temp file"));
    for i in 0..lines as u64 {
        writeln!(
            f,
            "evt {} worker {} state {} latency {}",
            i % 13,
            i % 7,
            i % 5,
            i % 97
        )
        .expect("write line");
    }
    Workload {
        name: "steady",
        path,
        lines,
    }
}

/// Materializes the generated HDFS-style corpus (block ids, addresses:
/// the vocabulary grows with the file, so interning dominates).
fn hdfs_workload(lines: usize) -> Workload {
    let data = hdfs::generate(lines, 17);
    let path = std::env::temp_dir().join(format!("pr10-hdfs-{}.log", std::process::id()));
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path).expect("temp file"));
    for i in 0..data.len() {
        writeln!(f, "{}", data.corpus.record(i).content).expect("write line");
    }
    Workload {
        name: "hdfs",
        path,
        lines,
    }
}

fn main() {
    let quick = quick_mode();
    let scale = if quick { 20 } else { 1 };
    let threads = std::thread::available_parallelism().map_or(4, usize::from);
    let tok = Tokenizer::default();
    let workloads = [
        steady_workload(1_000_000 / scale),
        hdfs_workload(400_000 / scale),
    ];

    println!("[");
    for (w, last) in workloads.iter().map(|w| (w, w.name == "hdfs")) {
        let legacy_build = || {
            let l = read_lines(std::fs::File::open(&w.path).expect("open")).expect("utf-8");
            Corpus::from_lines(&l, &tok)
        };
        let seq_build = || Corpus::from_path(&w.path, &tok).expect("loader");
        let par_build = || Corpus::from_path_parallel(&w.path, &tok, threads).expect("loader");

        // Untimed warm-up (page cache, allocator), then interleaved
        // best-of-five; identity checked on the warm-up outputs.
        let (legacy, seq, par) = (legacy_build(), seq_build(), par_build());
        assert_eq!(legacy, seq, "{}: sequential loader diverged", w.name);
        assert_eq!(legacy, par, "{}: parallel loader diverged", w.name);
        assert_eq!(count_corpus_lines(&w.path).expect("count"), legacy.len());

        let (mut t_legacy, mut t_seq, mut t_par, mut t_scan) =
            (f64::INFINITY, f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for _ in 0..5 {
            let timed = |f: &mut dyn FnMut() -> usize| {
                let started = Instant::now();
                let n = f();
                assert_eq!(n, legacy.len());
                started.elapsed().as_secs_f64()
            };
            t_legacy = t_legacy.min(timed(&mut || legacy_build().len()));
            t_seq = t_seq.min(timed(&mut || seq_build().len()));
            t_par = t_par.min(timed(&mut || par_build().len()));
            t_scan = t_scan.min(timed(&mut || count_corpus_lines(&w.path).expect("count")));
        }

        let bytes = std::fs::metadata(&w.path).expect("stat").len();
        let rate = |s: f64| w.lines as f64 / s;
        println!("  {{");
        println!("    \"workload\": \"{}\",", w.name);
        println!("    \"lines\": {},", w.lines);
        println!("    \"bytes\": {bytes},");
        println!("    \"vocabulary\": {},", legacy.interner().len());
        println!("    \"threads\": {threads},");
        println!("    \"legacy_seconds\": {t_legacy:.4},");
        println!("    \"legacy_lines_per_sec\": {:.0},", rate(t_legacy));
        println!("    \"mmap_seq_seconds\": {t_seq:.4},");
        println!("    \"mmap_seq_lines_per_sec\": {:.0},", rate(t_seq));
        println!("    \"mmap_parallel_seconds\": {t_par:.4},");
        println!("    \"mmap_parallel_lines_per_sec\": {:.0},", rate(t_par));
        println!("    \"swar_scan_lines_per_sec\": {:.0},", rate(t_scan));
        println!("    \"seq_speedup\": {:.2},", t_legacy / t_seq);
        println!("    \"parallel_speedup\": {:.2}", t_legacy / t_par);
        println!("  }}{}", if last { "" } else { "," });
        std::fs::remove_file(&w.path).ok();
    }
    println!("]");
}
