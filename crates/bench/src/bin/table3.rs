//! Regenerates **Table III** (anomaly detection with different parsers).
//! See `logparse_eval::experiments::table3`.

use logparse_bench::{dump_metrics, quick_mode};
use logparse_eval::experiments::table3;

fn main() {
    let mut config = table3::Table3Config::default();
    if quick_mode() {
        config.blocks = 1_000;
    }
    eprintln!(
        "running Table III: {} blocks, anomaly rate {:.1}%…",
        config.blocks,
        config.anomaly_rate * 100.0
    );
    let (rows, anomalies) = table3::run(&config);
    println!(
        "Table III: Anomaly Detection with Different Log Parsing Methods ({} Anomalies)",
        logparse_eval::fmt_count(anomalies)
    );
    println!();
    print!("{}", table3::render(&rows, anomalies));
    println!();
    println!("paper reference (16,838 anomalies):");
    println!("SLCT          0.83  18,450  10,935 (64%)  7,515 (40%)");
    println!("LogSig        0.87  11,091  10,678 (63%)    413 (3.7%)");
    println!("IPLoM         0.99  10,998  10,720 (63%)    278 (2.5%)");
    println!("Ground truth  1.00  11,473  11,195 (66%)    278 (2.4%)");
    dump_metrics();
}
