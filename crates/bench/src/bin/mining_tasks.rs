//! Regenerates the **§III-A extension** (parser effect on deployment
//! verification and FSM model construction). See
//! `logparse_eval::experiments::mining_tasks`.

use logparse_bench::quick_mode;
use logparse_eval::experiments::mining_tasks;

fn main() {
    let mut config = mining_tasks::MiningTasksConfig::default();
    if quick_mode() {
        config.dev_blocks = 300;
        config.prod_blocks = 600;
    }
    eprintln!(
        "running mining-task generality: {} dev blocks, {} prod blocks…",
        config.dev_blocks, config.prod_blocks
    );
    let rows = mining_tasks::run(&config);
    println!("Mining-task generality: deployment verification & FSM model construction");
    println!();
    print!("{}", mining_tasks::render(&rows));
    println!();
    println!("interpretation: a parser that splits events fabricates novel sequences");
    println!("(flagged sessions above ground truth = wasted inspection; extra FSM edges =");
    println!("spurious model branches); one that merges them hides real regressions.");
}
