//! Runs the **detector comparison** (PCA vs. invariant mining on the
//! Table III setup). See
//! `logparse_eval::experiments::invariant_compare`.

use logparse_bench::quick_mode;
use logparse_eval::experiments::invariant_compare;

fn main() {
    let mut config = invariant_compare::CompareConfig::default();
    if quick_mode() {
        config.blocks = 600;
    }
    eprintln!("comparing detectors on {} blocks…", config.blocks);
    let (rows, anomalies) = invariant_compare::run(&config);
    println!(
        "PCA (Xu et al.) vs invariant mining (Lou et al.) — {} true anomalies",
        anomalies
    );
    println!();
    print!("{}", invariant_compare::render(&rows, anomalies));
    println!();
    println!("invariant mining catches flow-integrity violations (truncated writes,");
    println!("replica under-counts) with near-zero false alarms but cannot see anomalies");
    println!("that only add events; PCA sees those but needs anomalies to stay rare.");
}
