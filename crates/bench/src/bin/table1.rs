//! Regenerates **Table I** (dataset summary). See
//! `logparse_eval::experiments::table1`.

use logparse_bench::quick_mode;
use logparse_eval::experiments::table1;

fn main() {
    let divisor = if quick_mode() { 10_000 } else { 1_000 };
    let rows = table1::run(divisor, 42);
    println!("Table I: Summary of the system log datasets (synthetic, paper sizes / {divisor})");
    println!();
    print!("{}", table1::render(&rows));
    println!();
    println!(
        "paper total: {} lines; generated total: {} lines",
        logparse_eval::fmt_count(table1::PAPER_TOTAL_LOGS),
        logparse_eval::fmt_count(rows.iter().map(|r| r.generated_logs).sum()),
    );
}
