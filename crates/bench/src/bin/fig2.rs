//! Regenerates **Fig. 2** (running time vs. corpus size). See
//! `logparse_eval::experiments::fig2`.

use logparse_bench::{dump_metrics, quick_mode, threads_arg};
use logparse_eval::experiments::fig2;
use logparse_eval::ParserKind;

fn main() {
    let threads = threads_arg(1);
    let config = if quick_mode() {
        fig2::Fig2Config {
            sizes: vec![400, 1_000, 4_000],
            lke_cap: 1_000,
            threads,
            ..fig2::Fig2Config::default()
        }
    } else {
        fig2::Fig2Config {
            sizes: vec![400, 1_000, 4_000, 10_000, 40_000],
            lke_cap: 2_000,
            logsig_cap: 10_000,
            threads,
            ..fig2::Fig2Config::default()
        }
    };
    eprintln!(
        "running Fig. 2 sweep: sizes {:?} (LKE capped at {}, {} thread{})…",
        config.sizes,
        config.lke_cap,
        config.threads,
        if config.threads == 1 { "" } else { "s" }
    );
    let points = fig2::run(&config);
    println!("Fig. 2: Running Time of Log Parsing Methods on Datasets in Different Size");
    for dataset in ["BGL", "HPC", "HDFS", "Zookeeper", "Proxifier"] {
        println!();
        println!("({dataset})");
        print!("{}", fig2::render(&points, dataset));
        for kind in ParserKind::ALL {
            if let Some(a) = fig2::scaling_exponent(&points, dataset, kind) {
                println!("  {} empirical scaling exponent: {a:.2}", kind.name());
            }
        }
    }
    println!();
    println!("paper shape: SLCT and IPLoM linear (minutes for 10m lines); LogSig linear with");
    println!("a large constant (2+ hours for 10m HDFS lines); LKE O(n^2), unable to finish");
    println!("BGL4m/HDFS10m in reasonable time (points missing).");
    dump_metrics();
}
