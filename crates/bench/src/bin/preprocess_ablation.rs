//! Regenerates the **Finding 2 ablation** (per-rule preprocessing
//! contribution). See
//! `logparse_eval::experiments::preprocess_ablation`.

use logparse_bench::quick_mode;
use logparse_eval::experiments::preprocess_ablation;

fn main() {
    let sample = if quick_mode() { 500 } else { 2_000 };
    eprintln!("running preprocessing ablation on {sample}-message BGL samples…");
    let points = preprocess_ablation::run(sample, 42);
    println!("Finding 2 ablation: BGL parsing accuracy by preprocessing rule subset");
    println!();
    print!("{}", preprocess_ablation::render(&points));
    println!();
    println!("paper: preprocessing improves SLCT and LogSig dramatically on BGL");
    println!("(0.61->0.94 and 0.26->0.98) but not IPLoM, which normalizes internally");
    println!("(0.99->0.99).");
}
