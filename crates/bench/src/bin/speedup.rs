//! Reports the chunked-parallel parsing speedup (sequential baseline vs
//! `parse_parallel` at 1/2/4/8 threads, per parser per dataset). See
//! `logparse_eval::experiments::speedup`.

use logparse_bench::{dump_metrics, quick_mode};
use logparse_eval::experiments::speedup;

fn main() {
    let config = if quick_mode() {
        // Small enough that LKE (O(n²) sequentially) is included, so the
        // quick run demonstrates the algorithmic speedup of chunking.
        speedup::SpeedupConfig {
            size: 2_000,
            ..speedup::SpeedupConfig::default()
        }
    } else {
        speedup::SpeedupConfig::default()
    };
    eprintln!(
        "running speedup sweep: {} messages, threads {:?}, datasets {:?}…",
        config.size, config.threads, config.datasets
    );
    let points = speedup::run(&config);
    println!("Parallel parsing speedup (chunked driver vs sequential baseline)");
    for dataset in &config.datasets {
        println!();
        println!("({dataset}, {} messages)", config.size);
        print!("{}", speedup::render(&points, dataset));
    }
    println!();
    println!("agree = worst-case pairwise F-measure of the parallel grouping against the");
    println!("sequential grouping across thread counts (1.000 = identical partition).");
    println!("On a single core only superlinear methods can beat 1.00x: chunking divides");
    println!("their work (k chunks of n/k cost n^2/k for LKE), while linear methods need");
    println!("real cores to gain and pay a small merge overhead here.");
    dump_metrics();
}
