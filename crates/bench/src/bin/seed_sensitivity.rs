//! Runs the **LogSig seed-sensitivity ablation** (what the study's
//! 10-run averaging hides). See
//! `logparse_eval::experiments::seed_sensitivity`.

use logparse_bench::quick_mode;
use logparse_eval::experiments::seed_sensitivity;

fn main() {
    let (sample, seeds) = if quick_mode() { (500, 5) } else { (2_000, 10) };
    eprintln!("running LogSig over {seeds} seeds on {sample}-message samples…");
    let stats = seed_sensitivity::run(sample, seeds, 42);
    println!("LogSig accuracy across {seeds} random initializations");
    println!();
    print!("{}", seed_sensitivity::render(&stats));
    println!();
    println!("the study reports 10-run averages (§IV-A); the spread column shows how");
    println!("much a single unlucky seed can deviate from that average.");
}
