//! Ingest overhead of the drift observability family (PR 7).
//!
//! Runs the streaming pipeline over the same generated HDFS-style
//! corpus twice — once with the quality/drift telemetry, history ring
//! and default alert rules enabled (the PR 7 default), once with the
//! whole family off (`drift: false`, the PR 6 pipeline shape) — and
//! reports the throughput delta. One untimed warm-up per
//! configuration, then interleaved best-of-five wall times, so neither
//! a scheduler hiccup nor slow machine-state drift can masquerade as
//! overhead. The acceptance bar is ≤5% (recorded in `BENCH_PR7.json`).
//!
//! ```text
//! cargo run --release -p logparse-bench --bin pr7_obs_overhead [--quick]
//! ```

use std::time::Instant;

use logparse_bench::quick_mode;
use logparse_datasets::hdfs;
use logparse_ingest::{run_pipeline, EventLog, IngestConfig, MemorySource};

/// One timed pipeline run over `lines`.
fn run(lines: &[String], drift: bool) -> f64 {
    let mut source = MemorySource::new(lines.to_vec());
    let config = IngestConfig {
        shards: 4,
        window_size: 1_000,
        warmup: 4,
        drift,
        alert_rules: if drift {
            logparse_obs::default_rules()
        } else {
            Vec::new()
        },
        ..IngestConfig::default()
    };
    let started = Instant::now();
    let summary =
        run_pipeline(&mut source, &config, EventLog::disabled(), None).expect("pipeline runs");
    let elapsed = started.elapsed().as_secs_f64();
    assert_eq!(summary.lines, lines.len() as u64);
    elapsed
}

fn main() {
    let quick = quick_mode();
    let count = if quick { 20_000 } else { 200_000 };
    let data = hdfs::generate(count, 11);
    let lines: Vec<String> = (0..data.len())
        .map(|i| data.corpus.record(i).content.to_owned())
        .collect();

    // One untimed warm-up per configuration (page cache, allocator,
    // thread spawn paths), then interleaved best-of-five so slow drift
    // in machine state hits both configurations equally.
    run(&lines, false);
    run(&lines, true);
    let mut baseline = f64::INFINITY;
    let mut with_drift = f64::INFINITY;
    for _ in 0..5 {
        baseline = baseline.min(run(&lines, false));
        with_drift = with_drift.min(run(&lines, true));
    }
    let overhead_pct = (with_drift - baseline) / baseline * 100.0;

    println!("{{");
    println!("  \"lines\": {count},");
    println!("  \"baseline_seconds\": {baseline:.4},");
    println!("  \"drift_seconds\": {with_drift:.4},");
    println!(
        "  \"baseline_lines_per_sec\": {:.0},",
        count as f64 / baseline
    );
    println!(
        "  \"drift_lines_per_sec\": {:.0},",
        count as f64 / with_drift
    );
    println!("  \"overhead_pct\": {overhead_pct:.2}");
    println!("}}");
}
