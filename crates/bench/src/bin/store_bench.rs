//! Template-store durability cost: snapshot-write and replay-restart
//! wall time as the template population grows.
//!
//! Emits one JSON object per population size on stdout — the
//! measurement behind `BENCH_PR6.json`. Each round builds a store of N
//! templates (with one binding per template, the shape ingest
//! produces), then times (a) compacting the full state into fresh
//! snapshots, (b) appending a 10% delta-log tail, and (c) the restart
//! path: recovering snapshot + log replay into a fresh `MapState`.
//! Best of three per phase.
//!
//! ```text
//! cargo run --release -p logparse-bench --bin store_bench [--quick]
//! ```

use std::path::PathBuf;
use std::time::Instant;

use logparse_bench::quick_mode;
use logparse_core::MergeDelta;
use logparse_store::{MapState, StoreConfig, TemplateStore};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("store-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn template_key(gid: usize) -> String {
    format!(
        "service {} emitted event of kind {} with args * * *",
        gid % 997,
        gid
    )
}

/// N templates plus one binding each, as deltas and as a state image.
fn population(n: usize) -> (Vec<MergeDelta>, MapState) {
    let mut deltas = Vec::with_capacity(2 * n);
    let mut state = MapState::new();
    for gid in 0..n {
        deltas.push(MergeDelta::Insert {
            gid,
            key: template_key(gid),
        });
        deltas.push(MergeDelta::Assign {
            shard: gid % 8,
            local: gid / 8,
            gid,
        });
    }
    for delta in &deltas {
        state.apply(delta);
    }
    (deltas, state)
}

fn main() {
    let sizes: &[usize] = if quick_mode() {
        &[10_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    println!("[");
    for (i, &n) in sizes.iter().enumerate() {
        let (deltas, state) = population(n);
        let mut snapshot_best = f64::INFINITY;
        let mut append_best = f64::INFINITY;
        let mut replay_best = f64::INFINITY;
        for round in 0..3 {
            let dir = temp_dir(&format!("{n}-{round}"));
            let (mut store, _) =
                TemplateStore::open(&dir, &StoreConfig::default()).expect("open bench store");

            // (a) snapshot write: fold the whole population into
            // fresh per-shard snapshots.
            let started = Instant::now();
            store.compact(&state).expect("compact");
            snapshot_best = snapshot_best.min(started.elapsed().as_secs_f64());

            // (b) delta-log tail: the last 10% appended again as live
            // log traffic (batch size 64, flushed per batch — the
            // aggregator's write shape).
            let tail = &deltas[deltas.len() - deltas.len() / 10..];
            let started = Instant::now();
            for batch in tail.chunks(64) {
                store.append(batch).expect("append");
                store.flush().expect("flush");
            }
            append_best = append_best.min(started.elapsed().as_secs_f64());
            store.finish().expect("finish");

            // (c) restart: snapshot load + log replay.
            let started = Instant::now();
            let recovery = TemplateStore::recover(&dir).expect("recover");
            replay_best = replay_best.min(started.elapsed().as_secs_f64());
            assert_eq!(recovery.state.len(), n);
            assert_eq!(recovery.quarantined_shards, 0);

            let _ = std::fs::remove_dir_all(&dir);
        }
        println!(
            "  {{\"templates\": {n}, \"snapshot_write_seconds\": {snapshot_best:.4}, \
             \"delta_append_seconds\": {append_best:.4}, \
             \"replay_restart_seconds\": {replay_best:.4}}}{}",
            if i + 1 == sizes.len() { "" } else { "," }
        );
    }
    println!("]");
}
