//! Throughput of the shared tokenizer substrate, in raw lines and with
//! the optional trimming/delimiter features enabled — plus the three
//! output flavours (owned strings, borrowed slices, interned symbols)
//! head to head, the measurement behind the corpus-construction path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use logparse_core::{Interner, Tokenizer};
use logparse_datasets::{bgl, hdfs};

fn tokenizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("tokenizer");
    let hdfs_lines: Vec<String> = {
        let d = hdfs::generate(5_000, 9);
        (0..d.len())
            .map(|i| d.corpus.record(i).content.to_owned())
            .collect()
    };
    let bgl_lines: Vec<String> = {
        let d = bgl::generate(5_000, 9);
        (0..d.len())
            .map(|i| d.corpus.record(i).content.to_owned())
            .collect()
    };
    group.throughput(Throughput::Elements(5_000));
    for (name, lines) in [("hdfs", &hdfs_lines), ("bgl", &bgl_lines)] {
        group.bench_with_input(BenchmarkId::new("whitespace", name), lines, |b, ls| {
            let t = Tokenizer::default();
            b.iter(|| ls.iter().map(|l| t.tokenize(l).len()).sum::<usize>())
        });
        group.bench_with_input(BenchmarkId::new("trimmed", name), lines, |b, ls| {
            let t = Tokenizer::new().with_trimmed_punctuation();
            b.iter(|| ls.iter().map(|l| t.tokenize(l).len()).sum::<usize>())
        });
    }
    group.finish();
}

/// `tokenize` (one `String` per token) vs `tokenize_refs` (borrowed,
/// the streaming-worker path) vs `tokenize_interned` (symbols into a
/// shared table, the corpus-construction path). Interning allocates
/// only on first sight of a token, so on log data — tiny vocabulary,
/// massive repetition — it should land near the zero-copy flavour.
fn tokenize_intern(c: &mut Criterion) {
    let mut group = c.benchmark_group("tokenize_intern");
    let lines: Vec<String> = {
        let d = hdfs::generate(5_000, 9);
        (0..d.len())
            .map(|i| d.corpus.record(i).content.to_owned())
            .collect()
    };
    group.throughput(Throughput::Elements(5_000));
    let t = Tokenizer::default();
    group.bench_with_input(BenchmarkId::new("owned", "hdfs"), &lines, |b, ls| {
        b.iter(|| ls.iter().map(|l| t.tokenize(l).len()).sum::<usize>())
    });
    group.bench_with_input(BenchmarkId::new("refs", "hdfs"), &lines, |b, ls| {
        b.iter(|| ls.iter().map(|l| t.tokenize_refs(l).len()).sum::<usize>())
    });
    group.bench_with_input(BenchmarkId::new("interned", "hdfs"), &lines, |b, ls| {
        b.iter(|| {
            let mut interner = Interner::new();
            ls.iter()
                .map(|l| t.tokenize_interned(l, &mut interner).len())
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, tokenizer, tokenize_intern);
criterion_main!(benches);
