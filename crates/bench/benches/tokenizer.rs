//! Throughput of the shared tokenizer substrate, in raw lines and with
//! the optional trimming/delimiter features enabled.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use logparse_core::Tokenizer;
use logparse_datasets::{bgl, hdfs};

fn tokenizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("tokenizer");
    let hdfs_lines: Vec<String> = {
        let d = hdfs::generate(5_000, 9);
        (0..d.len())
            .map(|i| d.corpus.record(i).content.clone())
            .collect()
    };
    let bgl_lines: Vec<String> = {
        let d = bgl::generate(5_000, 9);
        (0..d.len())
            .map(|i| d.corpus.record(i).content.clone())
            .collect()
    };
    group.throughput(Throughput::Elements(5_000));
    for (name, lines) in [("hdfs", &hdfs_lines), ("bgl", &bgl_lines)] {
        group.bench_with_input(BenchmarkId::new("whitespace", name), lines, |b, ls| {
            let t = Tokenizer::default();
            b.iter(|| ls.iter().map(|l| t.tokenize(l).len()).sum::<usize>())
        });
        group.bench_with_input(BenchmarkId::new("trimmed", name), lines, |b, ls| {
            let t = Tokenizer::new().with_trimmed_punctuation();
            b.iter(|| ls.iter().map(|l| t.tokenize(l).len()).sum::<usize>())
        });
    }
    group.finish();
}

criterion_group!(benches, tokenizer);
criterion_main!(benches);
