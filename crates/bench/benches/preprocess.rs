//! Throughput of the domain-knowledge preprocessing rules (Finding 2's
//! substrate): masking a corpus with each dataset's rule set.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use logparse_core::{MaskRule, Preprocessor};
use logparse_datasets::{bgl, hdfs};

fn preprocess(c: &mut Criterion) {
    let mut group = c.benchmark_group("preprocess");
    let hdfs_data = hdfs::generate(5_000, 3);
    let bgl_data = bgl::generate(5_000, 3);
    group.throughput(Throughput::Elements(5_000));
    group.bench_with_input(BenchmarkId::new("hdfs", "ip+blk"), &hdfs_data, |b, d| {
        let pre = Preprocessor::new(vec![MaskRule::IpAddress, MaskRule::BlockId]);
        b.iter(|| pre.apply(&d.corpus))
    });
    group.bench_with_input(BenchmarkId::new("bgl", "core"), &bgl_data, |b, d| {
        let pre = Preprocessor::new(vec![MaskRule::CoreId]);
        b.iter(|| pre.apply(&d.corpus))
    });
    group.bench_with_input(BenchmarkId::new("hdfs", "all-rules"), &hdfs_data, |b, d| {
        let pre = Preprocessor::new(vec![
            MaskRule::IpAddress,
            MaskRule::BlockId,
            MaskRule::CoreId,
            MaskRule::HexValue,
            MaskRule::Path,
            MaskRule::Number,
        ]);
        b.iter(|| pre.apply(&d.corpus))
    });
    group.finish();
}

criterion_group!(benches, preprocess);
criterion_main!(benches);
