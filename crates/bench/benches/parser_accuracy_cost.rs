//! Criterion companion of **Table II**: the cost of one accuracy
//! measurement — parsing a 2 000-message sample — per parser and
//! dataset, the unit of work the paper's RQ1 protocol repeats
//! (10× for randomized methods).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use logparse_core::LogParser;
use logparse_datasets::{bgl, hdfs, hpc};
use logparse_parsers::{Iplom, LogSig, Slct};

fn parser_accuracy_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("parser_accuracy_cost");
    group.sample_size(10);
    let datasets: [(&str, logparse_datasets::LabeledCorpus); 3] = [
        ("BGL", bgl::generate(2_000, 7)),
        ("HPC", hpc::generate(2_000, 7)),
        ("HDFS", hdfs::generate(2_000, 7)),
    ];
    for (name, data) in &datasets {
        group.bench_with_input(BenchmarkId::new("SLCT", name), data, |b, d| {
            let p = Slct::builder().support_fraction(0.002).build();
            b.iter(|| p.parse(&d.corpus).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("IPLoM", name), data, |b, d| {
            let p = Iplom::default();
            b.iter(|| p.parse(&d.corpus).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("LogSig", name), data, |b, d| {
            let k = d.distinct_events().max(1);
            let p = LogSig::builder()
                .clusters(k)
                .seed(1)
                .max_iterations(20)
                .build();
            b.iter(|| p.parse(&d.corpus).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, parser_accuracy_cost);
criterion_main!(benches);
