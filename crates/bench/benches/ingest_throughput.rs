//! End-to-end throughput of the streaming ingestion pipeline: 100k
//! synthetic HDFS lines through source → router → sharded parse workers
//! → aggregator (template merging, windowing, online PCA scoring), at
//! increasing shard counts. Reported per-element, so criterion prints
//! lines/second directly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use logparse_datasets::hdfs;
use logparse_ingest::{run_pipeline, EventLog, IngestConfig, MemorySource};

const LINES: usize = 100_000;

fn ingest_throughput(c: &mut Criterion) {
    let corpus = hdfs::generate(LINES, 42).corpus;
    let lines: Vec<String> = (0..corpus.len())
        .map(|i| corpus.record(i).content.to_owned())
        .collect();

    let mut group = c.benchmark_group("ingest_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(LINES as u64));
    for &shards in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("drain", shards), &lines, |b, lines| {
            let config = IngestConfig {
                shards,
                batch_size: 512,
                window_size: 1_000,
                ..IngestConfig::default()
            };
            b.iter(|| {
                let mut source = MemorySource::new(lines.clone());
                let summary =
                    run_pipeline(&mut source, &config, EventLog::disabled(), None).unwrap();
                assert_eq!(summary.lines, LINES as u64);
                summary
            })
        });
    }
    group.finish();
}

criterion_group!(benches, ingest_throughput);
criterion_main!(benches);
