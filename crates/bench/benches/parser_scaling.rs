//! Criterion companion of **Fig. 2**: parser running time as corpus size
//! grows, one group per dataset. LKE is only benched at sizes its O(n²)
//! clustering can handle, mirroring the paper's missing data points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use logparse_core::LogParser;
use logparse_datasets::{hdfs, proxifier, zookeeper};
use logparse_parsers::{Iplom, Lke, LogSig, Slct};

fn bench_dataset(
    c: &mut Criterion,
    name: &str,
    generate: fn(usize, u64) -> logparse_datasets::LabeledCorpus,
) {
    let mut group = c.benchmark_group(format!("parser_scaling/{name}"));
    group.sample_size(10);
    for &size in &[500usize, 2_000, 8_000] {
        let data = generate(size, 42);
        group.throughput(Throughput::Elements(size as u64));
        group.bench_with_input(BenchmarkId::new("SLCT", size), &data, |b, d| {
            let p = Slct::builder().support_fraction(0.002).build();
            b.iter(|| p.parse(&d.corpus).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("IPLoM", size), &data, |b, d| {
            let p = Iplom::default();
            b.iter(|| p.parse(&d.corpus).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("LogSig", size), &data, |b, d| {
            let k = d.distinct_events().max(1);
            let p = LogSig::builder()
                .clusters(k)
                .seed(1)
                .max_iterations(20)
                .build();
            b.iter(|| p.parse(&d.corpus).unwrap())
        });
        if size <= 2_000 {
            group.bench_with_input(BenchmarkId::new("LKE", size), &data, |b, d| {
                let p = Lke::builder().fixed_threshold(0.4).build();
                b.iter(|| p.parse(&d.corpus).unwrap())
            });
        }
    }
    group.finish();
}

fn parser_scaling(c: &mut Criterion) {
    bench_dataset(c, "HDFS", hdfs::generate);
    bench_dataset(c, "Zookeeper", zookeeper::generate);
    bench_dataset(c, "Proxifier", proxifier::generate);
}

criterion_group!(benches, parser_scaling);
criterion_main!(benches);
