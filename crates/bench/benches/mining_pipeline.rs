//! Criterion companion of **Table III**: the stages of the anomaly
//! detection pipeline — event-count matrix generation, TF-IDF weighting,
//! and PCA fit + scoring — at increasing block counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use logparse_datasets::hdfs;
use logparse_mining::{tfidf_weight, truth_count_matrix, PcaDetector, PcaDetectorConfig};

fn mining_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("mining_pipeline");
    group.sample_size(10);
    for &blocks in &[500usize, 2_000, 8_000] {
        let sessions = hdfs::generate_sessions(blocks, 0.029, 21);
        group.throughput(Throughput::Elements(blocks as u64));
        group.bench_with_input(
            BenchmarkId::new("matrix_generation", blocks),
            &sessions,
            |b, s| {
                b.iter(|| {
                    truth_count_matrix(
                        &s.data.labels,
                        s.data.truth_templates.len(),
                        &s.block_of,
                        s.block_count(),
                    )
                })
            },
        );
        let counts = truth_count_matrix(
            &sessions.data.labels,
            sessions.data.truth_templates.len(),
            &sessions.block_of,
            sessions.block_count(),
        );
        group.bench_with_input(BenchmarkId::new("tfidf", blocks), &counts, |b, m| {
            b.iter(|| tfidf_weight(m))
        });
        group.bench_with_input(BenchmarkId::new("pca_detect", blocks), &counts, |b, m| {
            let detector = PcaDetector::new(PcaDetectorConfig {
                components: Some(2),
                ..PcaDetectorConfig::default()
            });
            b.iter(|| detector.detect(m))
        });
    }
    group.finish();
}

criterion_group!(benches, mining_pipeline);
criterion_main!(benches);
