//! Offline drop-in subset of the `criterion` benchmark API.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of criterion its benches use: [`Criterion`],
//! benchmark groups with `sample_size`/`throughput`/`bench_with_input`/
//! `bench_function`, [`BenchmarkId`], [`Throughput`], [`black_box`] and
//! the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Instead of criterion's statistical engine, each benchmark is warmed
//! up briefly and then timed over enough iterations to fill a small
//! measurement budget; the harness reports mean wall-clock time per
//! iteration (and derived throughput) on stdout. Under `cargo test`
//! (the `--test` flag cargo passes to `harness = false` targets) every
//! benchmark runs exactly once, as a smoke test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `function/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `function/parameter`.
    pub fn new(function: impl ToString, parameter: impl ToString) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.to_string(), parameter.to_string()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Drives closures under measurement; passed to every benchmark body.
pub struct Bencher<'a> {
    mode: Mode,
    report: &'a mut Vec<String>,
    label: String,
    throughput: Option<Throughput>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full measurement (cargo bench).
    Measure,
    /// One iteration per benchmark (cargo test).
    Smoke,
}

impl Bencher<'_> {
    /// Measures `routine`, discarding its output through a black box.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.mode == Mode::Smoke {
            black_box(routine());
            self.report.push(format!("{} ... smoke ok", self.label));
            return;
        }
        // Warm-up: run until ~50ms or 3 iterations, whichever is later.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters < 3 || warm_start.elapsed() < Duration::from_millis(50) {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Measurement budget ~250ms, at least 5 iterations.
        let iters = ((0.25 / per_iter.max(1e-9)) as u64).clamp(5, 10_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let elapsed = start.elapsed().as_secs_f64();
        let mean = elapsed / iters as f64;
        let mut line = format!(
            "{:<48} {:>12} /iter ({iters} iters)",
            self.label,
            fmt_time(mean)
        );
        if let Some(tp) = self.throughput {
            let (count, unit) = match tp {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            let rate = count as f64 / mean;
            let _ = write!(line, "  {:>14}", format!("{} {unit}/s", fmt_rate(rate)));
        }
        self.report.push(line);
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

fn fmt_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2}k", rate / 1e3)
    } else {
        format!("{rate:.1}")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the harness sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn sampling_mode(&mut self, _mode: SamplingMode) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Sets the per-iteration throughput annotation.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `routine` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let label = format!("{}/{}", self.name, id.into().name);
        let mut bencher = Bencher {
            mode: self.criterion.mode,
            report: &mut self.criterion.report,
            label,
            throughput: self.throughput,
        };
        routine(&mut bencher, input);
        self
    }

    /// Benchmarks a plain routine.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let label = format!("{}/{}", self.name, id.into().name);
        let mut bencher = Bencher {
            mode: self.criterion.mode,
            report: &mut self.criterion.report,
            label,
            throughput: self.throughput,
        };
        routine(&mut bencher);
        self
    }

    /// Flushes the group's report lines.
    pub fn finish(self) {
        self.criterion.flush();
    }
}

/// Sampling mode stub (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum SamplingMode {
    /// Automatic selection.
    Auto,
    /// Fixed-iteration sampling.
    Flat,
    /// Linear sampling.
    Linear,
}

/// The top-level benchmark manager.
pub struct Criterion {
    mode: Mode,
    report: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes `harness = false` bench targets with `--test`
        // under `cargo test`; run each benchmark once there.
        let smoke = std::env::args().any(|a| a == "--test");
        Criterion {
            mode: if smoke { Mode::Smoke } else { Mode::Measure },
            report: Vec::new(),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Benchmarks a routine outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut bencher = Bencher {
            mode: self.mode,
            report: &mut self.report,
            label: name.to_owned(),
            throughput: None,
        };
        routine(&mut bencher);
        self.flush();
        self
    }

    fn flush(&mut self) {
        for line in self.report.drain(..) {
            println!("  {line}");
        }
    }

    /// Final configuration hook used by [`criterion_main!`].
    pub fn final_summary(&mut self) {
        self.flush();
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once_and_reports() {
        let mut c = Criterion {
            mode: Mode::Smoke,
            report: Vec::new(),
        };
        let mut runs = 0;
        {
            let mut group = c.benchmark_group("g");
            group.throughput(Throughput::Elements(10));
            group.bench_with_input(BenchmarkId::new("f", 1), &3, |b, &x| {
                b.iter(|| {
                    runs += 1;
                    x * 2
                })
            });
        }
        assert_eq!(runs, 1);
        assert_eq!(c.report.len(), 1);
        assert!(c.report[0].contains("g/f/1"));
    }

    #[test]
    fn measure_mode_times_the_routine() {
        let mut c = Criterion {
            mode: Mode::Measure,
            report: Vec::new(),
        };
        c.bench_function("tiny", |b| b.iter(|| black_box(1u64 + 1)));
        // flushed to stdout, report drained
        assert!(c.report.is_empty());
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
        assert_eq!(fmt_rate(2_500_000.0), "2.50M");
    }
}
