//! Corruption-injection property tests: random workloads written to a
//! store, then random damage — truncation at an arbitrary offset, or a
//! bit flip at an arbitrary offset — injected into an arbitrary store
//! file. Recovery must (a) never panic, (b) never serve a template
//! string that was not genuinely written (corrupt records are dropped
//! or quarantined, not decoded into garbage), and (c) keep every
//! surviving binding pointing at the id it was written with.

use std::path::{Path, PathBuf};

use logparse_core::MergeDelta;
use logparse_store::{MapState, StoreConfig, TemplateStore};
use proptest::prelude::*;

const SHARDS: usize = 3;
const VOCAB: usize = 24;

fn vocab(i: usize) -> String {
    format!("event template {} with argument *", i % VOCAB)
}

fn temp_store(tag: &str, case: u64) -> PathBuf {
    std::env::temp_dir().join(format!("store-fuzz-{tag}-{}-{case}", std::process::id()))
}

/// Turns raw op tuples into a valid, in-range delta sequence.
fn decode_ops(ops: &[(u8, usize, usize)]) -> Vec<MergeDelta> {
    let mut deltas = Vec::with_capacity(ops.len());
    let mut next_gid = 0usize;
    for &(kind, a, b) in ops {
        let delta = match kind % 4 {
            1 if next_gid > 0 => MergeDelta::Refine {
                gid: a % next_gid,
                key: vocab(b),
            },
            2 if next_gid > 1 => MergeDelta::Union {
                winner: a % next_gid,
                loser: b % next_gid,
            },
            3 if next_gid > 0 => MergeDelta::Assign {
                shard: a % SHARDS,
                local: b % 64,
                gid: b % next_gid,
            },
            _ => {
                next_gid += 1;
                MergeDelta::Insert {
                    gid: next_gid - 1,
                    key: vocab(a),
                }
            }
        };
        deltas.push(delta);
    }
    deltas
}

/// Writes the workload (flushing after every small batch, compacting
/// once mid-way so snapshots and logs both exist) and returns the
/// ground-truth state.
fn build_store(dir: &Path, deltas: &[MergeDelta]) -> MapState {
    let config = StoreConfig {
        shards: SHARDS,
        ..StoreConfig::default()
    };
    let (mut store, _) = TemplateStore::open(dir, &config).expect("open fresh store");
    let mut truth = MapState::new();
    let half = deltas.len() / 2;
    for (i, delta) in deltas.iter().enumerate() {
        truth.apply(delta);
        store.append(std::slice::from_ref(delta)).expect("append");
        if i % 5 == 4 {
            store.flush().expect("flush");
        }
        if i + 1 == half {
            store.compact(&truth).expect("compact");
        }
    }
    store.put_blob("meta", b"{\"version\":1}").expect("blob");
    store.finish().expect("finish");
    truth
}

/// Every store file recovery might read, deterministically ordered.
fn store_files(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        let mut entries: Vec<_> = std::fs::read_dir(&current)
            .expect("read store dir")
            .map(|e| e.expect("dir entry").path())
            .collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                stack.push(path);
            } else {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

/// Everything a damaged store may legitimately serve: recovery rolls a
/// shard back to a *prefix* of its history (or quarantines it), so any
/// key or binding ever written is fair, anything else is corruption
/// leaking through the CRC.
struct Written {
    keys: std::collections::HashSet<String>,
    bindings: std::collections::HashSet<((usize, usize), usize)>,
}

impl Written {
    fn of(deltas: &[MergeDelta]) -> Written {
        let mut keys = std::collections::HashSet::new();
        let mut bindings = std::collections::HashSet::new();
        for delta in deltas {
            match delta {
                MergeDelta::Insert { key, .. } | MergeDelta::Refine { key, .. } => {
                    keys.insert(key.clone());
                }
                MergeDelta::Assign { shard, local, gid } => {
                    bindings.insert(((*shard, *local), *gid));
                }
                MergeDelta::Union { .. } => {}
            }
        }
        Written { keys, bindings }
    }
}

/// The safety contract after damage: recovery reported `Ok`, dropped
/// or quarantined whatever it could not verify, and everything it
/// *did* serve was genuinely written at some point.
fn assert_recovery_is_safe(recovered: &MapState, written: &Written) {
    for template in &recovered.templates {
        assert!(
            template.is_empty() || written.keys.contains(template),
            "recovery served a never-written template {template:?}"
        );
    }
    for (slot, gid) in &recovered.assign {
        assert!(
            written.bindings.contains(&(*slot, *gid)),
            "binding {slot:?} -> {gid} was never written"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn truncation_at_any_offset_recovers_a_safe_prefix(
        ops in prop::collection::vec((0u8..8, 0usize..1000, 0usize..1000), 10..80),
        victim_seed in 0usize..1000,
        cut in 0.0f64..1.0,
    ) {
        let case = proptest_case_id(&ops, victim_seed, cut.to_bits() as usize);
        let dir = temp_store("trunc", case);
        let _ = std::fs::remove_dir_all(&dir);
        let deltas = decode_ops(&ops);
        let written = Written::of(&deltas);
        build_store(&dir, &deltas);

        let files = store_files(&dir);
        let victim = &files[victim_seed % files.len()];
        let len = std::fs::metadata(victim).expect("victim metadata").len();
        let keep = (len as f64 * cut) as u64;
        let file = std::fs::OpenOptions::new().write(true).open(victim).expect("open victim");
        file.set_len(keep).expect("truncate");
        drop(file);

        // Skip the manifest: truncating it makes the directory not a
        // store at all, which recovery reports as a (graceful) error.
        if victim.file_name().is_some_and(|n| n == "MANIFEST") {
            prop_assert!(TemplateStore::recover(&dir).is_err() || keep == len);
        } else {
            let recovery = TemplateStore::recover(&dir).expect("recover after truncation");
            assert_recovery_is_safe(&recovery.state, &written);
            // Truncation is the crash shape: at worst one shard of
            // state is rolled back or quarantined, never the store.
            prop_assert!(recovery.quarantined_shards <= 1);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flips_at_any_offset_never_serve_corrupt_templates(
        ops in prop::collection::vec((0u8..8, 0usize..1000, 0usize..1000), 10..80),
        victim_seed in 0usize..1000,
        at in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let case = proptest_case_id(&ops, victim_seed, at.to_bits() as usize ^ bit as usize);
        let dir = temp_store("flip", case);
        let _ = std::fs::remove_dir_all(&dir);
        let deltas = decode_ops(&ops);
        let written = Written::of(&deltas);
        build_store(&dir, &deltas);

        let files = store_files(&dir);
        let victim = &files[victim_seed % files.len()];
        let mut bytes = std::fs::read(victim).expect("read victim");
        if !bytes.is_empty() {
            let offset = ((bytes.len() as f64 * at) as usize).min(bytes.len() - 1);
            bytes[offset] ^= 1 << bit;
            std::fs::write(victim, &bytes).expect("write corrupted victim");
        }

        if victim.file_name().is_some_and(|n| n == "MANIFEST") {
            // A damaged manifest is a graceful error, never a panic.
            let _ = TemplateStore::recover(&dir);
        } else {
            let recovery = TemplateStore::recover(&dir).expect("recover after bit flip");
            assert_recovery_is_safe(&recovery.state, &written);

            // Opening (which repairs: truncates torn tails, quarantines
            // bad shards) must also succeed, and the store must keep
            // accepting appends afterwards.
            let config = StoreConfig { shards: SHARDS, ..StoreConfig::default() };
            let (mut store, opened) = TemplateStore::open(&dir, &config).expect("open damaged store");
            assert_recovery_is_safe(&opened.state, &written);
            let next_gid = opened.state.len();
            store.append(&[MergeDelta::Insert { gid: next_gid, key: "after damage".into() }])
                .expect("append after repair");
            store.finish().expect("finish after repair");
            let reread = TemplateStore::recover(&dir).expect("recover after repair");
            prop_assert!(reread.state.templates.contains(&"after damage".to_string()));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A stable per-case directory suffix derived from the generated
/// inputs (the proptest shim does not expose the case index).
fn proptest_case_id(ops: &[(u8, usize, usize)], a: usize, b: usize) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for &(k, x, y) in ops {
        mix(k as u64);
        mix(x as u64);
        mix(y as u64);
    }
    mix(a as u64);
    mix(b as u64);
    h
}
