//! Regressions for the durable-open path: `TemplateStore::open` now
//! fsyncs the directory entries it creates (the store dir's parent and
//! the store dir itself after shard files land), so opening must keep
//! working for every directory shape those syncs can encounter.

use std::path::{Path, PathBuf};

use logparse_store::{StoreConfig, TemplateStore};

fn temp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("store-open-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn open_creates_and_pins_a_deeply_nested_store() {
    // Several missing levels: `create_dir_all` makes them all, and the
    // parent sync must target the (just-created) immediate parent, not
    // assume it pre-existed.
    let root = temp("deep");
    let dir = root.join("a/b/c/store");
    let (store, recovery) = TemplateStore::open(&dir, &StoreConfig::default()).unwrap();
    assert_eq!(
        recovery.replayed_records, 0,
        "fresh store opens clean: {recovery:?}"
    );
    drop(store);
    assert!(dir.is_dir());
    // Reopen over the now-existing tree: the sync path runs again
    // against directories that already existed.
    let (_store, recovery) = TemplateStore::open(&dir, &StoreConfig::default()).unwrap();
    assert_eq!(recovery.quarantined_shards, 0, "{recovery:?}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn open_handles_a_bare_relative_path() {
    // Regression: `Path::new("name").parent()` is `Some("")`, and
    // syncing the empty path would fail the whole open. The guard must
    // skip the empty parent, not error out.
    let name = format!("store-open-rel-{}", std::process::id());
    let dir = Path::new(&name);
    let _ = std::fs::remove_dir_all(dir);
    let (store, recovery) = TemplateStore::open(dir, &StoreConfig::default()).unwrap();
    assert_eq!(recovery.quarantined_shards, 0, "{recovery:?}");
    drop(store);
    let _ = std::fs::remove_dir_all(dir);
}
