//! Round-trip integration tests: everything appended to a store comes
//! back from recovery, across clean shutdowns, dirty drops (the
//! in-process SIGKILL analogue), compaction, and blob storage.

use std::path::PathBuf;

use logparse_core::MergeDelta;
use logparse_store::{BlobRead, MapState, StoreConfig, TemplateStore};

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("store-rt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A workload touching every delta kind, plus the state it must
/// recover to.
fn workload() -> (Vec<MergeDelta>, MapState) {
    let deltas = vec![
        MergeDelta::Insert {
            gid: 0,
            key: "send pkt 7 ok".into(),
        },
        MergeDelta::Insert {
            gid: 1,
            key: "disk full on volume 2".into(),
        },
        MergeDelta::Assign {
            shard: 0,
            local: 0,
            gid: 0,
        },
        MergeDelta::Assign {
            shard: 1,
            local: 0,
            gid: 1,
        },
        MergeDelta::Refine {
            gid: 0,
            key: "send pkt * ok".into(),
        },
        MergeDelta::Insert {
            gid: 2,
            key: "send pkt * ok".into(),
        },
        MergeDelta::Union {
            winner: 0,
            loser: 2,
        },
        MergeDelta::Assign {
            shard: 2,
            local: 0,
            gid: 2,
        },
    ];
    let mut expected = MapState::new();
    for delta in &deltas {
        expected.apply(delta);
    }
    (deltas, expected)
}

/// Recovered state must agree with `expected` on everything observable:
/// id-space size, canonical partition, bindings, and canonical keys.
fn assert_equivalent(recovered: &MapState, expected: &MapState) {
    assert_eq!(recovered.len(), expected.len());
    assert_eq!(recovered.assign, expected.assign);
    assert_eq!(
        recovered.canonical_templates(),
        expected.canonical_templates()
    );
    for gid in 0..expected.len() {
        assert_eq!(
            recovered.templates[recovered.resolve_root(gid)],
            expected.templates[expected.resolve_root(gid)],
            "gid {gid} resolves to a different canonical key"
        );
    }
}

#[test]
fn clean_shutdown_round_trips_every_delta_kind() {
    let dir = temp_store("clean");
    let (deltas, expected) = workload();
    let (mut store, recovery) = TemplateStore::open(&dir, &StoreConfig::default()).unwrap();
    assert!(recovery.state.is_empty());
    store.append(&deltas).unwrap();
    store.finish().unwrap();

    let recovery = TemplateStore::recover(&dir).unwrap();
    assert_eq!(recovery.quarantined_shards, 0);
    assert_equivalent(&recovery.state, &expected);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn dirty_drop_after_flush_loses_nothing() {
    let dir = temp_store("dirty");
    let (deltas, expected) = workload();
    let (mut store, _) = TemplateStore::open(&dir, &StoreConfig::default()).unwrap();
    store.append(&deltas).unwrap();
    store.flush().unwrap();
    drop(store); // no finish(): the process "died" here

    let recovery = TemplateStore::recover(&dir).unwrap();
    assert_eq!(recovery.quarantined_shards, 0);
    assert_equivalent(&recovery.state, &expected);

    // And the store reopens for more appends afterwards.
    let (mut store, recovery) = TemplateStore::open(&dir, &StoreConfig::default()).unwrap();
    assert_equivalent(&recovery.state, &expected);
    store
        .append(&[MergeDelta::Insert {
            gid: 3,
            key: "late arrival".into(),
        }])
        .unwrap();
    store.finish().unwrap();
    let recovery = TemplateStore::recover(&dir).unwrap();
    assert_eq!(recovery.state.len(), 4);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn compaction_preserves_state_and_advances_the_generation() {
    let dir = temp_store("compact");
    let config = StoreConfig {
        compact_log_bytes: 64, // tiny: a handful of records trips it
        ..StoreConfig::default()
    };
    let (mut store, _) = TemplateStore::open(&dir, &config).unwrap();
    let mut expected = MapState::new();
    for gid in 0..200 {
        let delta = MergeDelta::Insert {
            gid,
            key: format!("template number {gid} with payload *"),
        };
        expected.apply(&delta);
        store.append(std::slice::from_ref(&delta)).unwrap();
    }
    store.flush().unwrap();
    assert!(store.should_compact(), "200 inserts must trip a 64B cap");
    let before = store.generation();
    store.compact(&expected).unwrap();
    assert!(store.generation() > before);
    assert!(!store.should_compact(), "fresh snapshot, empty logs");
    store.finish().unwrap();

    let recovery = TemplateStore::recover(&dir).unwrap();
    assert_eq!(recovery.quarantined_shards, 0);
    assert_equivalent(&recovery.state, &expected);

    // Appends after compaction land in the new generation's logs.
    let (mut store, _) = TemplateStore::open(&dir, &config).unwrap();
    let delta = MergeDelta::Insert {
        gid: 200,
        key: "post compaction".into(),
    };
    expected.apply(&delta);
    store.append(&[delta]).unwrap();
    store.finish().unwrap();
    let recovery = TemplateStore::recover(&dir).unwrap();
    assert_equivalent(&recovery.state, &expected);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn background_compaction_catches_up_on_finish() {
    let dir = temp_store("bg");
    let (mut store, _) = TemplateStore::open(&dir, &StoreConfig::default()).unwrap();
    let mut expected = MapState::new();
    for gid in 0..50 {
        let delta = MergeDelta::Insert {
            gid,
            key: format!("bg template {gid}"),
        };
        expected.apply(&delta);
        store.append(std::slice::from_ref(&delta)).unwrap();
    }
    assert!(store.compact_background(expected.clone()).unwrap());
    store.finish().unwrap(); // joins the worker

    let recovery = TemplateStore::recover(&dir).unwrap();
    assert_equivalent(&recovery.state, &expected);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn blobs_round_trip_and_flag_corruption() {
    let dir = temp_store("blob");
    let (store, _) = TemplateStore::open(&dir, &StoreConfig::default()).unwrap();
    assert_eq!(
        TemplateStore::read_blob(&dir, "meta").unwrap(),
        BlobRead::Missing
    );
    store.put_blob("meta", b"{\"version\":1}").unwrap();
    assert_eq!(
        TemplateStore::read_blob(&dir, "meta").unwrap(),
        BlobRead::Ok(b"{\"version\":1}".to_vec())
    );

    // Overwrite is atomic: the new payload fully replaces the old.
    store
        .put_blob("meta", b"{\"version\":1,\"lines\":9}")
        .unwrap();
    assert_eq!(
        TemplateStore::read_blob(&dir, "meta").unwrap(),
        BlobRead::Ok(b"{\"version\":1,\"lines\":9}".to_vec())
    );
    store.finish().unwrap();

    // A flipped byte must read back as Corrupt, not as data.
    let path = dir.join("meta.blob");
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    assert_eq!(
        TemplateStore::read_blob(&dir, "meta").unwrap(),
        BlobRead::Corrupt
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Regression: a blob that exists but frames an empty payload must be
/// Corrupt, not `Ok(vec![])`. Checkpoint recovery used to treat the
/// empty payload as readable, fail to parse it, and silently fall back
/// to a fresh parser exactly as if the blob were Missing — hiding an
/// interrupted or misbehaving writer.
#[test]
fn empty_payload_blob_is_corrupt_not_ok() {
    let dir = temp_store("emptyblob");
    let (store, _) = TemplateStore::open(&dir, &StoreConfig::default()).unwrap();
    store.put_blob("parser-0", b"").unwrap();
    assert_eq!(
        TemplateStore::read_blob(&dir, "parser-0").unwrap(),
        BlobRead::Corrupt
    );
    // A zero-length file (writer died before framing anything) is also
    // Corrupt, and always was — pin both shapes.
    std::fs::write(dir.join("parser-1.blob"), b"").unwrap();
    assert_eq!(
        TemplateStore::read_blob(&dir, "parser-1").unwrap(),
        BlobRead::Corrupt
    );
    store.finish().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn shard_count_is_pinned_by_the_manifest() {
    let dir = temp_store("pin");
    let (store, _) = TemplateStore::open(
        &dir,
        &StoreConfig {
            shards: 3,
            ..StoreConfig::default()
        },
    )
    .unwrap();
    assert_eq!(store.shard_count(), 3);
    store.finish().unwrap();

    // Reopening with a different configured count keeps the manifest's.
    let (store, _) = TemplateStore::open(
        &dir,
        &StoreConfig {
            shards: 8,
            ..StoreConfig::default()
        },
    )
    .unwrap();
    assert_eq!(store.shard_count(), 3);
    store.finish().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}
