//! The replayed template map: the materialized result of applying a
//! snapshot plus its delta logs.
//!
//! [`MapState`] is the store's value type — a plain, fully-owned image
//! of the global template table that `logparse-ingest`'s `GlobalMap`
//! both exports (for snapshots) and rebuilds from (at restart). It is
//! valid by construction: every write grows the table first
//! ([`MapState::ensure`]), so no replayed record, however corrupt its
//! ids, can index out of range.
//!
//! Replay reproduces the *partition* of the live union-find, not its
//! raw parent array: the live merge path-halves on lookup, so its
//! parent pointers compress over time, while replayed parents step
//! through recorded unions only. [`MapState::resolve_root`] gives the
//! canonical representative either way.

use logparse_core::MergeDelta;
use std::collections::BTreeMap;

/// A materialized global template map.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MapState {
    /// Template key per global id. Ids never observed (a hole left by
    /// a quarantined shard) hold an empty-string tombstone.
    pub templates: Vec<String>,
    /// Union-find parent per global id (`parent[i] == i` for roots).
    pub parent: Vec<usize>,
    /// `(worker shard, local id) -> global id` bindings. Ordered so
    /// snapshots serialize deterministically.
    pub assign: BTreeMap<(usize, usize), usize>,
}

impl MapState {
    /// An empty map.
    pub fn new() -> Self {
        MapState::default()
    }

    /// Number of global id slots (including tombstones).
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Whether the map holds no slots at all.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// Grows the table so `gid` is a valid index. New slots are
    /// self-parented empty-string tombstones — they stay inert unless
    /// a later record writes them.
    pub fn ensure(&mut self, gid: usize) {
        while self.templates.len() <= gid {
            self.templates.push(String::new());
            self.parent.push(self.parent.len());
        }
    }

    /// Applies one delta. Total: out-of-range ids grow the table,
    /// never index past it.
    pub fn apply(&mut self, delta: &MergeDelta) {
        match delta {
            MergeDelta::Insert { gid, key } | MergeDelta::Refine { gid, key } => {
                self.ensure(*gid);
                self.templates[*gid] = key.clone();
            }
            MergeDelta::Assign { shard, local, gid } => {
                self.ensure(*gid);
                self.assign.insert((*shard, *local), *gid);
            }
            MergeDelta::Union { winner, loser } => {
                self.ensure(*winner);
                self.ensure(*loser);
                if winner != loser {
                    self.parent[*loser] = *winner;
                }
            }
        }
    }

    /// Writes one snapshot slot (id, parent pointer, key).
    pub fn set_slot(&mut self, gid: usize, parent: usize, key: String) {
        self.ensure(gid);
        self.ensure(parent);
        self.templates[gid] = key;
        self.parent[gid] = parent;
    }

    /// The canonical (root) id for `gid`, without mutating the parent
    /// chain. Iteration is capped at the table length, so a corrupt
    /// parent cycle terminates instead of spinning.
    pub fn resolve_root(&self, gid: usize) -> usize {
        if gid >= self.parent.len() {
            return gid;
        }
        let mut current = gid;
        for _ in 0..self.parent.len() {
            let up = self.parent[current];
            if up == current {
                return current;
            }
            current = up;
        }
        current
    }

    /// The distinct canonical template keys, in root-id order — the
    /// set a restarted pipeline serves.
    pub fn canonical_templates(&self) -> Vec<String> {
        let mut out = Vec::new();
        for gid in 0..self.templates.len() {
            if self.resolve_root(gid) == gid && !self.templates[gid].is_empty() {
                out.push(self.templates[gid].clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replaying_deltas_rebuilds_the_table() {
        let mut state = MapState::new();
        state.apply(&MergeDelta::Insert {
            gid: 0,
            key: "a <*>".into(),
        });
        state.apply(&MergeDelta::Assign {
            shard: 0,
            local: 0,
            gid: 0,
        });
        state.apply(&MergeDelta::Insert {
            gid: 1,
            key: "b <*>".into(),
        });
        state.apply(&MergeDelta::Assign {
            shard: 1,
            local: 0,
            gid: 1,
        });
        state.apply(&MergeDelta::Union {
            winner: 0,
            loser: 1,
        });
        state.apply(&MergeDelta::Refine {
            gid: 0,
            key: "ab <*>".into(),
        });
        assert_eq!(state.len(), 2);
        assert_eq!(state.resolve_root(1), 0);
        assert_eq!(state.canonical_templates(), vec!["ab <*>".to_string()]);
        assert_eq!(state.assign.get(&(1, 0)), Some(&1));
    }

    #[test]
    fn out_of_range_ids_grow_tombstones_instead_of_panicking() {
        let mut state = MapState::new();
        state.apply(&MergeDelta::Union {
            winner: 7,
            loser: 3,
        });
        assert_eq!(state.len(), 8);
        assert_eq!(state.resolve_root(3), 7);
        assert!(
            state.canonical_templates().is_empty(),
            "tombstones are not served"
        );
        state.apply(&MergeDelta::Assign {
            shard: 0,
            local: 5,
            gid: 12,
        });
        assert_eq!(state.len(), 13);
    }

    #[test]
    fn resolve_root_survives_a_corrupt_parent_cycle() {
        let mut state = MapState::new();
        state.ensure(2);
        state.parent[0] = 1;
        state.parent[1] = 0;
        // No canonical answer exists; the contract is termination.
        let root = state.resolve_root(0);
        assert!(root == 0 || root == 1);
    }

    #[test]
    fn self_union_is_a_noop() {
        let mut state = MapState::new();
        state.apply(&MergeDelta::Union {
            winner: 2,
            loser: 2,
        });
        assert_eq!(state.resolve_root(2), 2);
    }
}
