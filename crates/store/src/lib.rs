//! Durable sharded template store for the streaming pipeline.
//!
//! The DSN'16 study's mining tasks assume parsed templates persist for
//! the whole corpus lifetime; a long-lived ingestion server therefore
//! needs template state that survives restarts *byte-for-byte* — the
//! global template ids handed to downstream mining are only stable if
//! the store that mints them is. This crate provides that store:
//!
//! * **Sharded layout** — template state is hash-partitioned over a
//!   fixed set of store shards (`shard-<i>/` directories). Corruption
//!   is contained per shard: a bad shard is quarantined, the rest of
//!   the store keeps serving.
//! * **Snapshot + delta log** — each shard owns a checksummed snapshot
//!   file (`snap-<gen>.snap`) plus an append-only delta log
//!   (`delta-<gen>.log`) of template mutations ([`MergeDelta`]:
//!   insert / assign / refinement / union). Restart = load the newest
//!   valid snapshot, replay the logs.
//! * **Compaction** — logs are periodically folded into fresh
//!   snapshots (inline or on a background thread), bounding both log
//!   length and restart time.
//! * **Corruption detection** — every record is CRC-framed
//!   ([`frame`]); a torn tail (the normal SIGKILL outcome) is
//!   truncated away, anything worse quarantines the shard instead of
//!   failing the store.
//!
//! The ingestion pipeline's `GlobalMap` writes through this store, so
//! its checkpoint path inherits the durability contract. The fsync
//! helpers ([`write_atomic`], [`sync_dir`]) are exported for the same
//! reason — any file the pipeline renames into place must also sync
//! the parent directory, or the rename itself can be lost on power
//! failure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod crc;
pub mod frame;
mod metrics;
mod shard;
mod state;
mod store;

pub use state::MapState;
pub use store::{
    BlobRead, Recovery, ShardReport, StoreConfig, TemplateStore, DEFAULT_COMPACT_LOG_BYTES,
    DEFAULT_SHARDS,
};

use std::fmt;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

/// Errors surfaced by the store.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O operation failed.
    Io(io::Error),
    /// On-disk state is corrupt beyond what recovery tolerates.
    Corrupt(String),
    /// The store was opened with an inconsistent configuration.
    Config(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(err) => write!(f, "store i/o error: {err}"),
            StoreError::Corrupt(msg) => write!(f, "store corrupt: {msg}"),
            StoreError::Config(msg) => write!(f, "store config error: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(err: io::Error) -> Self {
        StoreError::Io(err)
    }
}

/// Fsyncs a directory so a rename or file creation inside it survives
/// power loss. On platforms where directories cannot be opened for
/// sync (non-unix), this is a no-op — rename atomicity still holds,
/// only the power-failure window widens.
pub fn sync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
    Ok(())
}

/// Writes `bytes` to `path` durably: write to a sibling temp file,
/// fsync it, rename it into place, then fsync the parent directory.
/// The rename is atomic, so readers observe either the old file or
/// the complete new one — never a torn write — and the directory
/// fsync pins the rename itself to disk (rename alone does not
/// survive power loss on ext4).
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let parent = path.parent().unwrap_or_else(|| Path::new("."));
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = parent.join(tmp_name);
    {
        let mut file = File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_dir(parent)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_atomic_round_trips_and_replaces() {
        let dir = std::env::temp_dir().join(format!("store-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("file.bin");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second, longer payload").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer payload");
        assert!(
            !dir.join("file.bin.tmp").exists(),
            "temp file must not linger"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_atomic_rejects_bare_root() {
        assert!(write_atomic(Path::new("/"), b"x").is_err());
    }
}
