//! Per-shard file management: snapshot encode/validate, delta-log
//! scanning, and the append-side log writer.
//!
//! Each store shard owns one directory holding `snap-<gen>.snap`
//! snapshot files and `delta-<gen>.log` append-only logs. Generation
//! numbers pair them: snapshot `G` captures all state up to the
//! moment log `G` was opened, so restart loads snapshot `G` and
//! replays logs `G..` — older generations are garbage the compactor
//! removes.
//!
//! Validation contracts enforced here:
//!
//! * a snapshot is accepted only if its header opens the file with
//!   the expected shard/generation, its footer closes the file with
//!   counts matching the records seen, and every byte belongs to a
//!   CRC-valid record — anything less rejects the whole snapshot
//!   (snapshots are written atomically, so a partial one is
//!   corruption, not a crash artifact);
//! * a delta log tolerates a *torn tail* — the valid record prefix is
//!   kept and the tail length reported, because a crash mid-append is
//!   the expected failure mode. Whether a torn log is acceptable
//!   (final generation) or quarantinable (earlier generation) is the
//!   store's policy decision, not this layer's.

use crate::codec::{FileHeader, Payload, FORMAT_VERSION};
use crate::frame::{append_record, Frame, FrameReader};
use logparse_core::MergeDelta;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::Path;

/// File name of a snapshot generation.
pub(crate) fn snap_name(generation: u64) -> String {
    format!("snap-{generation}.snap")
}

/// File name of a delta-log generation.
pub(crate) fn log_name(generation: u64) -> String {
    format!("delta-{generation}.log")
}

/// Store shard a slot-targeted record routes to (inserts, refinements
/// and unions, keyed by the written gid).
pub(crate) fn route_slot(gid: usize, shards: usize) -> usize {
    gid % shards.max(1)
}

/// Store shard an assign record routes to. Keyed by the *binding*
/// (worker shard, local id) — not the gid — so that re-assignments of
/// the same binding after a restart land in the same log and replay
/// in write order.
pub(crate) fn route_assign(shard: usize, local: usize, shards: usize) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for half in [shard as u64, local as u64] {
        for byte in half.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    (hash % shards.max(1) as u64) as usize
}

/// Generations present in one shard directory, each list ascending.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub(crate) struct ShardFiles {
    pub snaps: Vec<u64>,
    pub logs: Vec<u64>,
}

fn parse_generation(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

/// Lists the snapshot and log generations in `dir`. Unrecognized
/// files are ignored (editor droppings, quarantine notes).
pub(crate) fn scan_dir(dir: &Path) -> io::Result<ShardFiles> {
    let mut files = ShardFiles::default();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(generation) = parse_generation(name, "snap-", ".snap") {
            files.snaps.push(generation);
        } else if let Some(generation) = parse_generation(name, "delta-", ".log") {
            files.logs.push(generation);
        }
    }
    files.snaps.sort_unstable();
    files.logs.sort_unstable();
    Ok(files)
}

/// The decoded contents of one shard's snapshot.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub(crate) struct SnapshotData {
    /// `(gid, parent, key)` slots owned by this shard.
    pub slots: Vec<(usize, usize, String)>,
    /// `(worker shard, local, gid)` bindings routed to this shard.
    pub assigns: Vec<(usize, usize, usize)>,
}

/// Encodes a complete snapshot file for one shard.
pub(crate) fn encode_snapshot(
    shard: usize,
    shard_count: usize,
    generation: u64,
    data: &SnapshotData,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + data.slots.len() * 48 + data.assigns.len() * 33);
    let header = FileHeader {
        version: FORMAT_VERSION,
        shard,
        shard_count,
        generation,
    };
    append_record(&mut out, &Payload::SnapHeader(header).encode());
    for (gid, parent, key) in &data.slots {
        append_record(
            &mut out,
            &Payload::SnapSlot {
                gid: *gid,
                parent: *parent,
                key: key.clone(),
            }
            .encode(),
        );
    }
    for (shard, local, gid) in &data.assigns {
        append_record(
            &mut out,
            &Payload::SnapAssign {
                shard: *shard,
                local: *local,
                gid: *gid,
            }
            .encode(),
        );
    }
    append_record(
        &mut out,
        &Payload::SnapFooter {
            slots: data.slots.len() as u64,
            assigns: data.assigns.len() as u64,
        }
        .encode(),
    );
    out
}

/// Validates and decodes a snapshot file. `Err` carries the rejection
/// reason; a rejected snapshot is treated as corrupt in its entirety.
pub(crate) fn read_snapshot(
    bytes: &[u8],
    shard: usize,
    shard_count: usize,
    generation: u64,
) -> Result<SnapshotData, String> {
    let mut reader = FrameReader::new(bytes);
    let first = match reader.next() {
        Frame::Record(payload) => payload,
        Frame::Corrupt => return Err("corrupt record where header expected".into()),
        Frame::Eof => return Err("empty snapshot".into()),
    };
    match Payload::decode(first) {
        Ok(Payload::SnapHeader(header)) => {
            if header.version != FORMAT_VERSION {
                return Err(format!("unsupported snapshot version {}", header.version));
            }
            if header.shard != shard
                || header.shard_count != shard_count
                || header.generation != generation
            {
                return Err(format!(
                    "header identifies shard {}/{} gen {}, expected {shard}/{shard_count} gen {generation}",
                    header.shard, header.shard_count, header.generation
                ));
            }
        }
        Ok(other) => return Err(format!("first record is not a header: {other:?}")),
        Err(err) => return Err(err.to_string()),
    }
    let mut data = SnapshotData::default();
    let mut footer: Option<(u64, u64)> = None;
    loop {
        let payload = match reader.next() {
            Frame::Record(payload) => payload,
            Frame::Corrupt => return Err("corrupt record inside snapshot".into()),
            Frame::Eof => break,
        };
        if footer.is_some() {
            return Err("records after snapshot footer".into());
        }
        match Payload::decode(payload) {
            Ok(Payload::SnapSlot { gid, parent, key }) => data.slots.push((gid, parent, key)),
            Ok(Payload::SnapAssign { shard, local, gid }) => data.assigns.push((shard, local, gid)),
            Ok(Payload::SnapFooter { slots, assigns }) => footer = Some((slots, assigns)),
            Ok(other) => return Err(format!("unexpected record in snapshot: {other:?}")),
            Err(err) => return Err(err.to_string()),
        }
    }
    match footer {
        Some((slots, assigns))
            if slots == data.slots.len() as u64 && assigns == data.assigns.len() as u64 =>
        {
            Ok(data)
        }
        Some((slots, assigns)) => Err(format!(
            "footer counts {slots}/{assigns} do not match records {}/{}",
            data.slots.len(),
            data.assigns.len()
        )),
        None => Err("snapshot has no footer".into()),
    }
}

/// The result of scanning one delta log.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub(crate) struct LogScan {
    /// Deltas recovered from the valid prefix, in write order.
    pub deltas: Vec<MergeDelta>,
    /// Byte length of the valid record prefix.
    pub valid_prefix: u64,
    /// Bytes beyond the valid prefix (zero for a clean log).
    pub torn_bytes: u64,
    /// Whether a matching log header opened the file.
    pub header_ok: bool,
}

impl LogScan {
    /// A log whose every byte belongs to a valid record.
    pub fn is_clean(&self) -> bool {
        self.header_ok && self.torn_bytes == 0
    }
}

/// Scans a delta log, keeping the longest valid prefix. Never fails:
/// corruption shortens the prefix, and `header_ok` reports whether
/// anything trustworthy was found at all (a log with a bad or
/// mismatched header contributes nothing).
pub(crate) fn read_log(bytes: &[u8], shard: usize, shard_count: usize, generation: u64) -> LogScan {
    let mut scan = LogScan {
        torn_bytes: bytes.len() as u64,
        ..LogScan::default()
    };
    let mut reader = FrameReader::new(bytes);
    let first = match reader.next() {
        Frame::Record(payload) => payload,
        Frame::Corrupt | Frame::Eof => return scan,
    };
    match Payload::decode(first) {
        Ok(Payload::LogHeader(header))
            if header.version == FORMAT_VERSION
                && header.shard == shard
                && header.shard_count == shard_count
                && header.generation == generation =>
        {
            scan.header_ok = true;
        }
        _ => return scan,
    }
    scan.valid_prefix = reader.valid_prefix() as u64;
    while let Frame::Record(payload) = reader.next() {
        match Payload::decode(payload) {
            Ok(Payload::Delta(delta)) => {
                scan.deltas.push(delta);
                scan.valid_prefix = reader.valid_prefix() as u64;
            }
            // A non-delta record mid-log is corruption the CRC cannot
            // see; stop at the last good delta.
            _ => break,
        }
    }
    scan.torn_bytes = bytes.len() as u64 - scan.valid_prefix;
    scan
}

/// The append side of one shard's current delta log.
#[derive(Debug)]
pub(crate) struct ShardWriter {
    out: io::BufWriter<File>,
    /// Bytes in the log (valid prefix at open plus appends since) —
    /// the compaction trigger input.
    pub bytes: u64,
}

impl ShardWriter {
    /// Creates `delta-<generation>.log` in `dir` with a fresh header,
    /// fsyncing the file and the directory so the rotation itself is
    /// durable before any delta lands in it.
    pub fn create(
        dir: &Path,
        shard: usize,
        shard_count: usize,
        generation: u64,
    ) -> io::Result<ShardWriter> {
        let path = dir.join(log_name(generation));
        let mut header = Vec::with_capacity(64);
        append_record(
            &mut header,
            &Payload::LogHeader(FileHeader {
                version: FORMAT_VERSION,
                shard,
                shard_count,
                generation,
            })
            .encode(),
        );
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        file.write_all(&header)?;
        file.sync_all()?;
        crate::sync_dir(dir)?;
        Ok(ShardWriter {
            out: io::BufWriter::new(file),
            bytes: header.len() as u64,
        })
    }

    /// Reopens an existing log for append, truncating away a torn
    /// tail first. If nothing valid survived (`valid_prefix == 0`) a
    /// fresh header is written in place.
    pub fn resume(
        dir: &Path,
        shard: usize,
        shard_count: usize,
        generation: u64,
        valid_prefix: u64,
    ) -> io::Result<ShardWriter> {
        if valid_prefix == 0 {
            return ShardWriter::create(dir, shard, shard_count, generation);
        }
        let path = dir.join(log_name(generation));
        let mut file = OpenOptions::new().write(true).open(&path)?;
        file.set_len(valid_prefix)?;
        file.sync_all()?;
        file.seek(SeekFrom::End(0))?;
        Ok(ShardWriter {
            out: io::BufWriter::new(file),
            bytes: valid_prefix,
        })
    }

    /// Appends one delta record (buffered).
    pub fn append(&mut self, delta: &MergeDelta) -> io::Result<()> {
        let mut framed = Vec::with_capacity(64);
        append_record(&mut framed, &Payload::Delta(delta.clone()).encode());
        self.out.write_all(&framed)?;
        self.bytes += framed.len() as u64;
        Ok(())
    }

    /// Pushes buffered records to the kernel (SIGKILL-safe once this
    /// returns; power-loss safety needs [`ShardWriter::sync`]).
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }

    /// Flushes and fsyncs the log file.
    pub fn sync(&mut self) -> io::Result<()> {
        self.out.flush()?;
        self.out.get_ref().sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips() {
        let data = SnapshotData {
            slots: vec![
                (0, 0, "a <*>".into()),
                (4, 0, String::new()),
                (8, 8, "b <*> c".into()),
            ],
            assigns: vec![(0, 0, 0), (3, 7, 8)],
        };
        let bytes = encode_snapshot(1, 4, 9, &data);
        assert_eq!(read_snapshot(&bytes, 1, 4, 9), Ok(data));
    }

    #[test]
    fn snapshot_rejects_wrong_identity_truncation_and_bit_flips() {
        let data = SnapshotData {
            slots: vec![(2, 2, "x <*>".into())],
            assigns: vec![(0, 1, 2)],
        };
        let bytes = encode_snapshot(2, 4, 3, &data);
        assert!(read_snapshot(&bytes, 3, 4, 3).is_err(), "wrong shard");
        assert!(read_snapshot(&bytes, 2, 8, 3).is_err(), "wrong shard count");
        assert!(read_snapshot(&bytes, 2, 4, 4).is_err(), "wrong generation");
        assert!(read_snapshot(&bytes[..bytes.len() - 1], 2, 4, 3).is_err());
        assert!(read_snapshot(&[], 2, 4, 3).is_err());
        for at in (0..bytes.len()).step_by(7) {
            let mut flipped = bytes.to_vec();
            flipped[at] ^= 0x10;
            assert!(read_snapshot(&flipped, 2, 4, 3).is_err(), "flip at {at}");
        }
    }

    fn sample_deltas() -> Vec<MergeDelta> {
        vec![
            MergeDelta::Insert {
                gid: 0,
                key: "started <*>".into(),
            },
            MergeDelta::Assign {
                shard: 0,
                local: 0,
                gid: 0,
            },
            MergeDelta::Refine {
                gid: 0,
                key: "started <*> <*>".into(),
            },
            MergeDelta::Union {
                winner: 0,
                loser: 3,
            },
        ]
    }

    #[test]
    fn log_write_scan_round_trips_through_a_real_file() {
        let dir = std::env::temp_dir().join(format!("store-shard-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut writer = ShardWriter::create(&dir, 0, 2, 5).unwrap();
        for delta in sample_deltas() {
            writer.append(&delta).unwrap();
        }
        writer.sync().unwrap();
        let bytes = std::fs::read(dir.join(log_name(5))).unwrap();
        let scan = read_log(&bytes, 0, 2, 5);
        assert!(scan.is_clean());
        assert_eq!(scan.deltas, sample_deltas());
        assert_eq!(scan.valid_prefix, bytes.len() as u64);
        assert_eq!(writer.bytes, bytes.len() as u64);

        // Tear the tail and resume: the torn record vanishes, appends
        // continue from the valid prefix.
        drop(writer);
        let torn_len = bytes.len() - 3;
        let file = OpenOptions::new()
            .write(true)
            .open(dir.join(log_name(5)))
            .unwrap();
        file.set_len(torn_len as u64).unwrap();
        drop(file);
        let torn_bytes = std::fs::read(dir.join(log_name(5))).unwrap();
        let torn_scan = read_log(&torn_bytes, 0, 2, 5);
        assert!(!torn_scan.is_clean());
        assert_eq!(torn_scan.deltas.len(), sample_deltas().len() - 1);
        let mut resumed = ShardWriter::resume(&dir, 0, 2, 5, torn_scan.valid_prefix).unwrap();
        resumed
            .append(&MergeDelta::Insert {
                gid: 9,
                key: "after resume".into(),
            })
            .unwrap();
        resumed.sync().unwrap();
        let final_bytes = std::fs::read(dir.join(log_name(5))).unwrap();
        let final_scan = read_log(&final_bytes, 0, 2, 5);
        assert!(final_scan.is_clean());
        let mut expected: Vec<MergeDelta> = sample_deltas();
        expected.pop();
        expected.push(MergeDelta::Insert {
            gid: 9,
            key: "after resume".into(),
        });
        assert_eq!(final_scan.deltas, expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn log_with_bad_header_contributes_nothing() {
        let mut bytes = Vec::new();
        append_record(
            &mut bytes,
            &Payload::Delta(MergeDelta::Insert {
                gid: 0,
                key: "headerless".into(),
            })
            .encode(),
        );
        let scan = read_log(&bytes, 0, 2, 1);
        assert!(!scan.header_ok);
        assert!(scan.deltas.is_empty());
        assert_eq!(scan.valid_prefix, 0);
    }

    #[test]
    fn assign_routing_is_stable_and_in_range() {
        for shards in 1..9 {
            for shard in 0..4 {
                for local in 0..64 {
                    let a = route_assign(shard, local, shards);
                    let b = route_assign(shard, local, shards);
                    assert_eq!(a, b);
                    assert!(a < shards);
                }
            }
        }
        assert_eq!(route_slot(13, 4), 1);
    }

    #[test]
    fn dir_scan_orders_generations_and_skips_strangers() {
        let dir = std::env::temp_dir().join(format!("store-scan-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for name in [
            "snap-3.snap",
            "snap-0.snap",
            "delta-3.log",
            "delta-10.log",
            "delta-2.log",
            "notes.txt",
            "snap-x.snap",
        ] {
            std::fs::write(dir.join(name), b"").unwrap();
        }
        let files = scan_dir(&dir).unwrap();
        assert_eq!(files.snaps, vec![0, 3]);
        assert_eq!(files.logs, vec![2, 3, 10]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
