//! Metric handles for the template store.
//!
//! Resolved once per open store against the process-global
//! [`logparse_obs`] registry, so `logmine serve --metrics-addr`
//! scrapes show store activity alongside the pipeline stages. Family
//! names stay string literals at their registration call so the
//! obs-metric-hygiene lint can cross-check them against DESIGN.md's
//! Observability table.

use logparse_obs::{global, Buckets, Counter, Histogram};

/// Store-wide metric handles.
#[derive(Debug, Clone)]
pub(crate) struct StoreMetrics {
    /// `store_snapshot_seconds` — latency of writing one full
    /// snapshot generation (all shards).
    pub snapshot_seconds: Histogram,
    /// `store_replay_records_total` — records replayed during
    /// recovery (snapshot slots, assigns and log deltas).
    pub replay_records: Counter,
    /// `store_compaction_runs_total` — completed compactions.
    pub compaction_runs: Counter,
    /// `store_quarantined_shards_total` — shards moved aside because
    /// recovery could not reconstruct a consistent state.
    pub quarantined_shards: Counter,
}

impl StoreMetrics {
    /// Resolves (and thereby pre-registers) every store family.
    pub fn new() -> Self {
        let registry = global();
        StoreMetrics {
            snapshot_seconds: registry.histogram(
                "store_snapshot_seconds",
                "Latency of writing one snapshot generation across all store shards",
                &Buckets::durations(),
                &[],
            ),
            replay_records: registry.counter(
                "store_replay_records_total",
                "Records replayed while recovering store state at open",
                &[],
            ),
            compaction_runs: registry.counter(
                "store_compaction_runs_total",
                "Delta-log compactions folded into fresh snapshots",
                &[],
            ),
            quarantined_shards: registry.counter(
                "store_quarantined_shards_total",
                "Store shards quarantined because recovery found them inconsistent",
                &[],
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_metrics_pre_register_every_family() {
        let _metrics = StoreMetrics::new();
        let text = global().render();
        for family in [
            "store_snapshot_seconds",
            "store_replay_records_total",
            "store_compaction_runs_total",
            "store_quarantined_shards_total",
        ] {
            assert!(
                text.contains(&format!("# TYPE {family} ")),
                "family {family} not pre-registered"
            );
        }
    }
}
