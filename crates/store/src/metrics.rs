//! Metric handles for the template store.
//!
//! Resolved once per open store against the process-global
//! [`logparse_obs`] registry, so `logmine serve --metrics-addr`
//! scrapes show store activity alongside the pipeline stages. Family
//! names stay string literals at their registration call so the
//! obs-metric-hygiene lint can cross-check them against DESIGN.md's
//! Observability table.

use logparse_obs::{global, Buckets, Counter, Gauge, Histogram};

/// Store-wide metric handles.
#[derive(Debug, Clone)]
pub(crate) struct StoreMetrics {
    /// `store_snapshot_seconds` — latency of writing one full
    /// snapshot generation (all shards).
    pub snapshot_seconds: Histogram,
    /// `store_replay_records_total` — records replayed during
    /// recovery (snapshot slots, assigns and log deltas).
    pub replay_records: Counter,
    /// `store_compaction_runs_total` — completed compactions.
    pub compaction_runs: Counter,
    /// `store_quarantined_shards_total` — shards moved aside because
    /// recovery could not reconstruct a consistent state.
    pub quarantined_shards: Counter,
    /// `store_shard_disk_bytes{shard,kind="snapshot"}` — on-disk size
    /// of each shard's snapshot files; refreshed at open and after
    /// every compaction.
    pub disk_snapshot: Vec<Gauge>,
    /// `store_shard_disk_bytes{shard,kind="log"}` — size of each
    /// shard's live delta log; refreshed on flush and rotation.
    pub disk_log: Vec<Gauge>,
}

impl StoreMetrics {
    /// Resolves (and thereby pre-registers) every store family for a
    /// store with `shards` shards.
    pub fn new(shards: usize) -> Self {
        let registry = global();
        let disk = |kind: &str, help: &str| -> Vec<Gauge> {
            (0..shards)
                .map(|shard| {
                    registry.gauge(
                        "store_shard_disk_bytes",
                        help,
                        &[("shard", &shard.to_string()), ("kind", kind)],
                    )
                })
                .collect()
        };
        StoreMetrics {
            snapshot_seconds: registry.histogram(
                "store_snapshot_seconds",
                "Latency of writing one snapshot generation across all store shards",
                &Buckets::durations(),
                &[],
            ),
            replay_records: registry.counter(
                "store_replay_records_total",
                "Records replayed while recovering store state at open",
                &[],
            ),
            compaction_runs: registry.counter(
                "store_compaction_runs_total",
                "Delta-log compactions folded into fresh snapshots",
                &[],
            ),
            quarantined_shards: registry.counter(
                "store_quarantined_shards_total",
                "Store shards quarantined because recovery found them inconsistent",
                &[],
            ),
            disk_snapshot: disk(
                "snapshot",
                "On-disk bytes per store shard by file kind (snapshot|log)",
            ),
            disk_log: disk(
                "log",
                "On-disk bytes per store shard by file kind (snapshot|log)",
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_metrics_pre_register_every_family() {
        let metrics = StoreMetrics::new(2);
        let text = global().render();
        for family in [
            "store_snapshot_seconds",
            "store_replay_records_total",
            "store_compaction_runs_total",
            "store_quarantined_shards_total",
            "store_shard_disk_bytes",
        ] {
            assert!(
                text.contains(&format!("# TYPE {family} ")),
                "family {family} not pre-registered"
            );
        }
        assert_eq!(metrics.disk_snapshot.len(), 2);
        assert_eq!(metrics.disk_log.len(), 2);
        metrics.disk_log[1].set(128.0);
        let text = global().render();
        assert!(
            text.contains("store_shard_disk_bytes{kind=\"log\",shard=\"1\"} 128")
                || text.contains("store_shard_disk_bytes{shard=\"1\",kind=\"log\"} 128"),
            "{text}"
        );
    }
}
