//! Record framing: `[u32 len LE][u32 crc32 LE][payload]`.
//!
//! Every snapshot and delta-log record is wrapped in this frame. The
//! CRC covers the payload only; the length field is implicitly
//! validated by the CRC check (a corrupted length either walks the
//! reader onto bytes whose CRC cannot match, or past the end of the
//! file, both of which stop the scan). Readers distinguish:
//!
//! * a clean end of input — every byte consumed by valid records;
//! * a *torn tail* — trailing bytes that do not form a complete valid
//!   record, the expected state after a crash mid-append. The valid
//!   prefix is kept, the tail discarded;
//!
//! Framing cannot tell a torn tail from mid-file corruption by
//! itself — it always stops at the first bad record. The layer above
//! ([`crate::shard`]) decides whether what follows the valid prefix
//! is tolerable (final log, tail truncation) or quarantinable
//! (snapshot or non-final log).

use crate::crc::crc32;

/// Maximum accepted payload length (64 MiB). A corrupted length field
/// would otherwise make the reader attempt a giant allocation.
pub const MAX_RECORD_LEN: u32 = 1 << 26;

/// Bytes of framing overhead per record (length + CRC).
pub const HEADER_LEN: usize = 8;

/// Appends one framed record to `out`.
pub fn append_record(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// A framed record stream over an in-memory buffer.
///
/// Store files are template-sized (megabytes at the extreme), so
/// recovery reads them whole and scans in memory; this keeps the
/// framing layer free of I/O errors and trivially fuzzable.
pub struct FrameReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// One step of the frame scan.
#[derive(Debug, PartialEq, Eq)]
pub enum Frame<'a> {
    /// A complete record with a valid checksum.
    Record(&'a [u8]),
    /// The bytes from the current position onward do not form a valid
    /// record (bad CRC, oversized length, or truncated mid-record).
    /// Scanning stops here; `valid_prefix` reports how much was good.
    Corrupt,
    /// Clean end of input.
    Eof,
}

impl<'a> FrameReader<'a> {
    /// A reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        FrameReader { bytes, pos: 0 }
    }

    /// Byte offset of the end of the last successfully read record —
    /// the length recovery should truncate a torn file to.
    pub fn valid_prefix(&self) -> usize {
        self.pos
    }

    /// Reads the next record. After [`Frame::Corrupt`] or
    /// [`Frame::Eof`] the reader stays put and repeats that answer.
    #[allow(clippy::should_implement_trait)] // not an Iterator: Corrupt/Eof are terminal, repeated answers, not None
    pub fn next(&mut self) -> Frame<'a> {
        let remaining = &self.bytes[self.pos..];
        if remaining.is_empty() {
            return Frame::Eof;
        }
        if remaining.len() < HEADER_LEN {
            return Frame::Corrupt;
        }
        let mut len_bytes = [0u8; 4];
        len_bytes.copy_from_slice(&remaining[0..4]);
        let len = u32::from_le_bytes(len_bytes);
        let mut crc_bytes = [0u8; 4];
        crc_bytes.copy_from_slice(&remaining[4..8]);
        let expected = u32::from_le_bytes(crc_bytes);
        if len > MAX_RECORD_LEN {
            return Frame::Corrupt;
        }
        let end = HEADER_LEN + len as usize;
        if remaining.len() < end {
            return Frame::Corrupt;
        }
        let payload = &remaining[HEADER_LEN..end];
        if crc32(payload) != expected {
            return Frame::Corrupt;
        }
        self.pos += end;
        Frame::Record(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_multiple_records() {
        let mut buf = Vec::new();
        append_record(&mut buf, b"alpha");
        append_record(&mut buf, b"");
        append_record(&mut buf, b"gamma rays");
        let mut reader = FrameReader::new(&buf);
        assert_eq!(reader.next(), Frame::Record(b"alpha".as_slice()));
        assert_eq!(reader.next(), Frame::Record(b"".as_slice()));
        assert_eq!(reader.next(), Frame::Record(b"gamma rays".as_slice()));
        assert_eq!(reader.next(), Frame::Eof);
        assert_eq!(reader.valid_prefix(), buf.len());
    }

    #[test]
    fn torn_tail_keeps_the_valid_prefix() {
        let mut buf = Vec::new();
        append_record(&mut buf, b"kept");
        let prefix = buf.len();
        append_record(&mut buf, b"lost in the crash");
        buf.truncate(buf.len() - 3);
        let mut reader = FrameReader::new(&buf);
        assert_eq!(reader.next(), Frame::Record(b"kept".as_slice()));
        assert_eq!(reader.next(), Frame::Corrupt);
        assert_eq!(reader.valid_prefix(), prefix);
        // The answer is stable across repeated calls.
        assert_eq!(reader.next(), Frame::Corrupt);
        assert_eq!(reader.valid_prefix(), prefix);
    }

    #[test]
    fn bit_flip_in_payload_is_detected() {
        let mut buf = Vec::new();
        append_record(&mut buf, b"first");
        append_record(&mut buf, b"second");
        let flip_at = HEADER_LEN + 2; // inside the first payload
        buf[flip_at] ^= 0x40;
        let mut reader = FrameReader::new(&buf);
        assert_eq!(reader.next(), Frame::Corrupt);
        assert_eq!(reader.valid_prefix(), 0);
    }

    #[test]
    fn oversized_length_is_rejected_not_allocated() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let mut reader = FrameReader::new(&buf);
        assert_eq!(reader.next(), Frame::Corrupt);
    }
}
