//! CRC-32 (ISO-HDLC, polynomial `0xEDB88320`) — the checksum guarding
//! every framed record in the store.
//!
//! The table is built at compile time, so the hot verify path is a
//! single byte-indexed lookup per input byte with no lazy-init
//! branches. This is the same CRC variant used by gzip and PNG, which
//! keeps the on-disk format inspectable with standard tooling.

/// Lookup table for one byte of input, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// The CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Published ISO-HDLC check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = b"template store record payload".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at byte {byte} bit {bit}");
            }
        }
    }
}
