//! Payload encoding for store records.
//!
//! Every framed payload starts with a one-byte tag; all integers are
//! little-endian and fixed-width (u32 for lengths/versions, u64 for
//! ids and counts), strings are length-prefixed UTF-8. Two record
//! families share the format:
//!
//! * snapshot records (`0x0_`): a header, one slot record per global
//!   template id, one assign record per `(worker shard, local id)`
//!   binding, and a footer carrying the expected counts — a snapshot
//!   is only accepted when header, counts and framing all agree;
//! * delta-log records (`0x1_`/`0x2_`): a log header stamping the
//!   shard and generation, then one record per [`MergeDelta`] in
//!   write order.
//!
//! Decoding is strict and total: every read is bounds-checked, every
//! unused byte is an error, and no input can panic the decoder —
//! corruption that slips past the CRC (or a version skew) surfaces as
//! [`DecodeError`], which recovery treats exactly like a framing
//! failure.

use logparse_core::MergeDelta;

/// On-disk format version stamped into every header record.
pub const FORMAT_VERSION: u32 = 1;

/// Magic string opening the store manifest.
pub const MANIFEST_MAGIC: &str = "logparse-store";

const TAG_SNAP_HEADER: u8 = 0x01;
const TAG_SNAP_SLOT: u8 = 0x02;
const TAG_SNAP_ASSIGN: u8 = 0x03;
const TAG_SNAP_FOOTER: u8 = 0x04;
const TAG_INSERT: u8 = 0x11;
const TAG_ASSIGN: u8 = 0x12;
const TAG_REFINE: u8 = 0x13;
const TAG_UNION: u8 = 0x14;
const TAG_LOG_HEADER: u8 = 0x21;
const TAG_MANIFEST: u8 = 0x31;

/// A decoded record payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// Opens a snapshot file.
    SnapHeader(FileHeader),
    /// One global template slot: its id, union-find parent and key.
    SnapSlot {
        /// Global template id.
        gid: usize,
        /// Union-find parent (equal to `gid` for roots).
        parent: usize,
        /// Template key (empty for tombstones).
        key: String,
    },
    /// One `(worker shard, local id) -> gid` binding.
    SnapAssign {
        /// Worker shard that announced the template.
        shard: usize,
        /// Local template id within that worker shard.
        local: usize,
        /// Global template id it resolves to.
        gid: usize,
    },
    /// Closes a snapshot file; counts must match the records seen.
    SnapFooter {
        /// Number of `SnapSlot` records in the snapshot.
        slots: u64,
        /// Number of `SnapAssign` records in the snapshot.
        assigns: u64,
    },
    /// Opens a delta-log file.
    LogHeader(FileHeader),
    /// A replayable template mutation.
    Delta(MergeDelta),
    /// The store manifest (root directory).
    Manifest {
        /// Format version of the store.
        version: u32,
        /// Number of store shards; fixed at creation.
        shard_count: usize,
    },
}

/// Identification stamped at the head of every snapshot and log file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileHeader {
    /// Format version the file was written with.
    pub version: u32,
    /// Store shard the file belongs to.
    pub shard: usize,
    /// Total store shards at write time.
    pub shard_count: usize,
    /// Generation of the file.
    pub generation: u64,
}

/// A payload that failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "record decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_usize(out: &mut Vec<u8>, v: usize) {
    push_u64(out, v as u64);
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn push_header(out: &mut Vec<u8>, tag: u8, header: &FileHeader) {
    out.push(tag);
    push_u32(out, header.version);
    push_usize(out, header.shard);
    push_usize(out, header.shard_count);
    push_u64(out, header.generation);
}

impl Payload {
    /// Encodes the payload (the bytes the frame CRC covers).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            Payload::SnapHeader(h) => push_header(&mut out, TAG_SNAP_HEADER, h),
            Payload::SnapSlot { gid, parent, key } => {
                out.push(TAG_SNAP_SLOT);
                push_usize(&mut out, *gid);
                push_usize(&mut out, *parent);
                push_str(&mut out, key);
            }
            Payload::SnapAssign { shard, local, gid } => {
                out.push(TAG_SNAP_ASSIGN);
                push_usize(&mut out, *shard);
                push_usize(&mut out, *local);
                push_usize(&mut out, *gid);
            }
            Payload::SnapFooter { slots, assigns } => {
                out.push(TAG_SNAP_FOOTER);
                push_u64(&mut out, *slots);
                push_u64(&mut out, *assigns);
            }
            Payload::LogHeader(h) => push_header(&mut out, TAG_LOG_HEADER, h),
            Payload::Delta(delta) => match delta {
                MergeDelta::Insert { gid, key } => {
                    out.push(TAG_INSERT);
                    push_usize(&mut out, *gid);
                    push_str(&mut out, key);
                }
                MergeDelta::Assign { shard, local, gid } => {
                    out.push(TAG_ASSIGN);
                    push_usize(&mut out, *shard);
                    push_usize(&mut out, *local);
                    push_usize(&mut out, *gid);
                }
                MergeDelta::Refine { gid, key } => {
                    out.push(TAG_REFINE);
                    push_usize(&mut out, *gid);
                    push_str(&mut out, key);
                }
                MergeDelta::Union { winner, loser } => {
                    out.push(TAG_UNION);
                    push_usize(&mut out, *winner);
                    push_usize(&mut out, *loser);
                }
            },
            Payload::Manifest {
                version,
                shard_count,
            } => {
                out.push(TAG_MANIFEST);
                push_str(&mut out, MANIFEST_MAGIC);
                push_u32(&mut out, *version);
                push_usize(&mut out, *shard_count);
            }
        }
        out
    }

    /// Decodes one payload; every byte must be consumed.
    pub fn decode(bytes: &[u8]) -> Result<Payload, DecodeError> {
        let mut r = Reader::new(bytes);
        let tag = r.u8()?;
        let payload = match tag {
            TAG_SNAP_HEADER => Payload::SnapHeader(r.header()?),
            TAG_SNAP_SLOT => Payload::SnapSlot {
                gid: r.id()?,
                parent: r.id()?,
                key: r.string()?,
            },
            TAG_SNAP_ASSIGN => Payload::SnapAssign {
                shard: r.id()?,
                local: r.id()?,
                gid: r.id()?,
            },
            TAG_SNAP_FOOTER => Payload::SnapFooter {
                slots: r.u64()?,
                assigns: r.u64()?,
            },
            TAG_LOG_HEADER => Payload::LogHeader(r.header()?),
            TAG_INSERT => Payload::Delta(MergeDelta::Insert {
                gid: r.id()?,
                key: r.string()?,
            }),
            TAG_ASSIGN => Payload::Delta(MergeDelta::Assign {
                shard: r.id()?,
                local: r.id()?,
                gid: r.id()?,
            }),
            TAG_REFINE => Payload::Delta(MergeDelta::Refine {
                gid: r.id()?,
                key: r.string()?,
            }),
            TAG_UNION => Payload::Delta(MergeDelta::Union {
                winner: r.id()?,
                loser: r.id()?,
            }),
            TAG_MANIFEST => {
                let magic = r.string()?;
                if magic != MANIFEST_MAGIC {
                    return Err(DecodeError(format!("bad manifest magic {magic:?}")));
                }
                Payload::Manifest {
                    version: r.u32()?,
                    shard_count: r.id()?,
                }
            }
            other => return Err(DecodeError(format!("unknown record tag 0x{other:02x}"))),
        };
        r.finish()?;
        Ok(payload)
    }
}

/// Bounds-checked little-endian cursor; all reads are fallible.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| DecodeError("record truncated".into()))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let mut buf = [0u8; 4];
        buf.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(buf))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(buf))
    }

    fn id(&mut self) -> Result<usize, DecodeError> {
        usize::try_from(self.u64()?).map_err(|_| DecodeError("id exceeds usize".into()))
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError("key is not UTF-8".into()))
    }

    fn header(&mut self) -> Result<FileHeader, DecodeError> {
        Ok(FileHeader {
            version: self.u32()?,
            shard: self.id()?,
            shard_count: self.id()?,
            generation: self.u64()?,
        })
    }

    fn finish(&self) -> Result<(), DecodeError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(DecodeError(format!(
                "{} trailing bytes after record",
                self.bytes.len() - self.pos
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(payload: Payload) {
        let bytes = payload.encode();
        assert_eq!(Payload::decode(&bytes), Ok(payload));
    }

    #[test]
    fn every_variant_round_trips() {
        let header = FileHeader {
            version: FORMAT_VERSION,
            shard: 3,
            shard_count: 8,
            generation: 42,
        };
        round_trip(Payload::SnapHeader(header));
        round_trip(Payload::LogHeader(header));
        round_trip(Payload::SnapSlot {
            gid: 17,
            parent: 4,
            key: "Receiving block <*> src <*>".into(),
        });
        round_trip(Payload::SnapSlot {
            gid: 0,
            parent: 0,
            key: String::new(),
        });
        round_trip(Payload::SnapAssign {
            shard: 2,
            local: 95,
            gid: 17,
        });
        round_trip(Payload::SnapFooter {
            slots: 1000,
            assigns: 4000,
        });
        round_trip(Payload::Delta(MergeDelta::Insert {
            gid: 9,
            key: "PacketResponder <*> terminating".into(),
        }));
        round_trip(Payload::Delta(MergeDelta::Assign {
            shard: 1,
            local: 2,
            gid: 9,
        }));
        round_trip(Payload::Delta(MergeDelta::Refine {
            gid: 9,
            key: "PacketResponder <*> <*>".into(),
        }));
        round_trip(Payload::Delta(MergeDelta::Union {
            winner: 4,
            loser: 9,
        }));
        round_trip(Payload::Manifest {
            version: FORMAT_VERSION,
            shard_count: 8,
        });
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut bytes = Payload::SnapFooter {
            slots: 1,
            assigns: 2,
        }
        .encode();
        bytes.push(0);
        assert!(Payload::decode(&bytes).is_err());
    }

    #[test]
    fn truncation_and_unknown_tags_are_errors_not_panics() {
        let full = Payload::SnapSlot {
            gid: 5,
            parent: 5,
            key: "a template with some length".into(),
        }
        .encode();
        for cut in 0..full.len() {
            assert!(Payload::decode(&full[..cut]).is_err(), "cut at {cut}");
        }
        assert!(Payload::decode(&[0x7F, 0, 0]).is_err());
        assert!(Payload::decode(&[]).is_err());
    }

    #[test]
    fn manifest_magic_is_enforced() {
        let mut bytes = Payload::Manifest {
            version: 1,
            shard_count: 4,
        }
        .encode();
        // Corrupt the first magic byte ('l' -> 'L').
        bytes[5] = b'L';
        assert!(Payload::decode(&bytes).is_err());
    }
}
