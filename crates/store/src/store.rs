//! The store proper: open/recover, delta appends, compaction and
//! quarantine.
//!
//! On-disk layout under the store directory:
//!
//! ```text
//! MANIFEST             one framed record: magic, version, shard count
//! <name>.blob          framed auxiliary blobs (checkpoint metadata)
//! shard-<i>/
//!   snap-<g>.snap      full snapshot of shard i at generation g
//!   delta-<g>.log      appends since snapshot g
//! quarantine/
//!   shard-<i>-<n>      shard directories recovery gave up on
//! ```
//!
//! Recovery runs per shard: the newest fully-valid snapshot becomes
//! the base, and every log generation from the base upward replays on
//! top — the final (highest) generation tolerates a torn tail, which
//! is truncated away before appends resume. A shard whose chain
//! cannot be reconstructed (a generation gap, a corrupt record in a
//! non-final log, no valid snapshot under a pruned log chain) is
//! *quarantined*: its directory is moved aside and a fresh shard
//! takes its place, so one bad disk region degrades the template map
//! instead of killing the store.
//!
//! Replay order matters across shards: all snapshot records apply
//! first (their slot sets are disjoint by routing), then all log
//! records in generation-major order — a union recorded in shard A's
//! log may predate the snapshot shard B was rebuilt from, and
//! generation order is the only order that serializes them correctly.

use crate::codec::{Payload, FORMAT_VERSION};
use crate::frame::{append_record, Frame, FrameReader};
use crate::metrics::StoreMetrics;
use crate::shard::{
    encode_snapshot, log_name, read_log, read_snapshot, route_assign, route_slot, scan_dir,
    snap_name, ShardWriter, SnapshotData,
};
use crate::state::MapState;
use crate::{sync_dir, write_atomic, StoreError};
use logparse_core::MergeDelta;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::thread;

/// Default number of store shards fixed at creation.
pub const DEFAULT_SHARDS: usize = 8;

/// Default per-shard log size that triggers compaction (1 MiB).
pub const DEFAULT_COMPACT_LOG_BYTES: u64 = 1 << 20;

/// Store creation / compaction tuning.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Store shards to create (ignored when opening an existing
    /// store — the manifest's count wins).
    pub shards: usize,
    /// Per-shard delta-log size at which [`TemplateStore::should_compact`]
    /// starts answering true.
    pub compact_log_bytes: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            shards: DEFAULT_SHARDS,
            compact_log_bytes: DEFAULT_COMPACT_LOG_BYTES,
        }
    }
}

/// What recovery found in one shard.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Generation of the snapshot the shard was rebuilt from.
    pub snapshot_generation: Option<u64>,
    /// Log generations replayed on top of the snapshot, ascending.
    pub log_generations: Vec<u64>,
    /// Records contributed to the rebuilt state (snapshot slots,
    /// assigns and log deltas).
    pub records_replayed: u64,
    /// Bytes discarded from the final log's torn tail.
    pub torn_tail_bytes: u64,
    /// Snapshots newer than the chosen base that failed validation.
    pub snapshots_rejected: usize,
    /// Whether the shard was (or, for a read-only scan, would be)
    /// quarantined.
    pub quarantined: bool,
    /// On-disk bytes of the shard's snapshot files at scan time.
    pub snapshot_bytes: u64,
    /// On-disk bytes of the shard's delta logs at scan time.
    pub log_bytes: u64,
}

/// The outcome of opening or scanning a store.
#[derive(Debug, Clone, Default)]
pub struct Recovery {
    /// The rebuilt template map (quarantined shards excluded).
    pub state: MapState,
    /// Per-shard detail, indexed by shard.
    pub reports: Vec<ShardReport>,
    /// Total records replayed across all shards.
    pub replayed_records: u64,
    /// Shards quarantined (or needing quarantine, read-only).
    pub quarantined_shards: usize,
}

/// The outcome of reading an auxiliary blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlobRead {
    /// No blob with that name exists.
    Missing,
    /// A file exists but its framing or checksum is invalid.
    Corrupt,
    /// The blob's payload, verified.
    Ok(Vec<u8>),
}

/// Everything recovery learned about one shard before any repair.
struct ShardPlan {
    report: ShardReport,
    snapshot: Option<SnapshotData>,
    /// Replayable log batches, ascending generation.
    logs: Vec<(u64, Vec<MergeDelta>)>,
    /// `(generation, valid_prefix)` of the final log, if the shard's
    /// current log can be resumed in place.
    resume: Option<(u64, u64)>,
    /// Highest generation present in the shard (0 when fresh).
    max_generation: u64,
    /// No files at all — a brand-new shard.
    fresh: bool,
}

fn shard_dir(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}"))
}

/// A file's on-disk size; 0 when it vanished between scan and stat.
fn file_size(path: &Path) -> u64 {
    fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}

/// Sums one shard directory's snapshot and log bytes from disk.
fn disk_usage(sdir: &Path) -> (u64, u64) {
    let Ok(files) = scan_dir(sdir) else {
        return (0, 0);
    };
    let snaps = files
        .snaps
        .iter()
        .map(|&g| file_size(&sdir.join(snap_name(g))))
        .sum();
    let logs = files
        .logs
        .iter()
        .map(|&g| file_size(&sdir.join(log_name(g))))
        .sum();
    (snaps, logs)
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("MANIFEST")
}

fn other_error(msg: String) -> StoreError {
    StoreError::Io(io::Error::other(msg))
}

/// Decodes the single framed record a manifest or blob file holds.
fn read_single_record(bytes: &[u8]) -> Option<Vec<u8>> {
    let mut reader = FrameReader::new(bytes);
    let payload = match reader.next() {
        Frame::Record(payload) => payload.to_vec(),
        _ => return None,
    };
    match reader.next() {
        Frame::Eof => Some(payload),
        _ => None,
    }
}

fn read_manifest(dir: &Path) -> Result<usize, StoreError> {
    let bytes = fs::read(manifest_path(dir))?;
    let record = read_single_record(&bytes)
        .ok_or_else(|| StoreError::Corrupt("manifest framing invalid".into()))?;
    match Payload::decode(&record) {
        Ok(Payload::Manifest {
            version,
            shard_count,
        }) => {
            if version != FORMAT_VERSION {
                return Err(StoreError::Corrupt(format!(
                    "manifest version {version} unsupported (expected {FORMAT_VERSION})"
                )));
            }
            if shard_count == 0 {
                return Err(StoreError::Corrupt("manifest declares zero shards".into()));
            }
            Ok(shard_count)
        }
        Ok(_) => Err(StoreError::Corrupt(
            "manifest holds a non-manifest record".into(),
        )),
        Err(err) => Err(StoreError::Corrupt(format!("manifest undecodable: {err}"))),
    }
}

fn write_manifest(dir: &Path, shard_count: usize) -> Result<(), StoreError> {
    let mut bytes = Vec::with_capacity(64);
    append_record(
        &mut bytes,
        &Payload::Manifest {
            version: FORMAT_VERSION,
            shard_count,
        }
        .encode(),
    );
    write_atomic(&manifest_path(dir), &bytes)?;
    Ok(())
}

/// Scans one shard directory and decides how (whether) to rebuild it.
/// Pure analysis: nothing on disk is modified.
fn plan_shard(dir: &Path, shard: usize, shard_count: usize) -> Result<ShardPlan, StoreError> {
    let sdir = shard_dir(dir, shard);
    let mut plan = ShardPlan {
        report: ShardReport {
            shard,
            ..ShardReport::default()
        },
        snapshot: None,
        logs: Vec::new(),
        resume: None,
        max_generation: 0,
        fresh: true,
    };
    if !sdir.is_dir() {
        return Ok(plan);
    }
    let files = scan_dir(&sdir)?;
    if files.snaps.is_empty() && files.logs.is_empty() {
        return Ok(plan);
    }
    plan.fresh = false;
    for &generation in &files.snaps {
        plan.report.snapshot_bytes += file_size(&sdir.join(snap_name(generation)));
    }
    for &generation in &files.logs {
        plan.report.log_bytes += file_size(&sdir.join(log_name(generation)));
    }

    // Newest fully-valid snapshot wins; invalid ones are counted and
    // skipped (an older valid snapshot plus its logs is still exact).
    for &generation in files.snaps.iter().rev() {
        let bytes = fs::read(sdir.join(snap_name(generation)))?;
        match read_snapshot(&bytes, shard, shard_count, generation) {
            Ok(data) => {
                plan.report.snapshot_generation = Some(generation);
                plan.snapshot = Some(data);
                break;
            }
            Err(_) => plan.report.snapshots_rejected += 1,
        }
    }
    let base = plan.report.snapshot_generation.unwrap_or(0);
    let had_snapshots = !files.snaps.is_empty();
    if plan.snapshot.is_none() && had_snapshots && !files.logs.contains(&0) {
        // Every snapshot rejected and the log chain cannot restart
        // from zero: history is gone.
        plan.report.quarantined = true;
    }
    let max_log = files.logs.last().copied().unwrap_or(0);
    plan.max_generation = base.max(max_log);
    if plan.report.quarantined || max_log < base {
        // Either already condemned, or a snapshot-only shard (its log
        // was lost with everything after the snapshot — the snapshot
        // itself is still an exact prefix, so it stands).
        return Ok(plan);
    }
    for generation in base..=max_log {
        if !files.logs.contains(&generation) {
            plan.report.quarantined = true;
            break;
        }
        let bytes = fs::read(sdir.join(log_name(generation)))?;
        let scan = read_log(&bytes, shard, shard_count, generation);
        let is_final = generation == max_log;
        if is_final {
            plan.report.torn_tail_bytes = scan.torn_bytes;
            plan.resume = Some((generation, scan.valid_prefix));
            plan.report.log_generations.push(generation);
            plan.logs.push((generation, scan.deltas));
        } else if scan.is_clean() {
            plan.report.log_generations.push(generation);
            plan.logs.push((generation, scan.deltas));
        } else {
            // Corruption strictly inside history — replaying past it
            // would serve wrong templates. Give the shard up.
            plan.report.quarantined = true;
            break;
        }
    }
    if plan.report.quarantined {
        plan.report.log_generations.clear();
        plan.logs.clear();
        plan.resume = None;
    }
    Ok(plan)
}

/// Builds the global state from per-shard plans: snapshots first
/// (disjoint slot sets), then logs in generation-major order.
fn replay(plans: &mut [ShardPlan]) -> MapState {
    let mut state = MapState::new();
    for plan in plans.iter_mut() {
        if plan.report.quarantined {
            continue;
        }
        if let Some(snapshot) = &plan.snapshot {
            for (gid, parent, key) in &snapshot.slots {
                state.set_slot(*gid, *parent, key.clone());
            }
            for (shard, local, gid) in &snapshot.assigns {
                state.ensure(*gid);
                state.assign.insert((*shard, *local), *gid);
            }
            plan.report.records_replayed += (snapshot.slots.len() + snapshot.assigns.len()) as u64;
        }
    }
    let mut batches: Vec<(u64, usize)> = Vec::new();
    for (idx, plan) in plans.iter().enumerate() {
        if plan.report.quarantined {
            continue;
        }
        for (generation, _) in &plan.logs {
            batches.push((*generation, idx));
        }
    }
    batches.sort_unstable();
    for (generation, idx) in batches {
        let Some(plan) = plans.get_mut(idx) else {
            continue;
        };
        let mut replayed = 0u64;
        for (log_generation, deltas) in &plan.logs {
            if *log_generation != generation {
                continue;
            }
            for delta in deltas {
                state.apply(delta);
            }
            replayed += deltas.len() as u64;
        }
        plan.report.records_replayed += replayed;
    }
    state
}

fn summarize(plans: &[ShardPlan], state: MapState) -> Recovery {
    let reports: Vec<ShardReport> = plans.iter().map(|p| p.report.clone()).collect();
    let replayed_records = reports.iter().map(|r| r.records_replayed).sum();
    let quarantined_shards = reports.iter().filter(|r| r.quarantined).count();
    Recovery {
        state,
        reports,
        replayed_records,
        quarantined_shards,
    }
}

/// The shard's routed portion of a global state — what its snapshot
/// holds.
fn shard_portion(state: &MapState, shard: usize, shard_count: usize) -> SnapshotData {
    let mut data = SnapshotData::default();
    for gid in 0..state.templates.len() {
        if route_slot(gid, shard_count) == shard {
            let parent = state.parent.get(gid).copied().unwrap_or(gid);
            let key = state.templates.get(gid).cloned().unwrap_or_default();
            data.slots.push((gid, parent, key));
        }
    }
    for ((worker_shard, local), gid) in &state.assign {
        if route_assign(*worker_shard, *local, shard_count) == shard {
            data.assigns.push((*worker_shard, *local, *gid));
        }
    }
    data
}

/// Writes generation `generation` snapshots for every shard and
/// removes all older generations. The shared body of inline and
/// background compaction.
fn write_generation(
    dir: &Path,
    shard_count: usize,
    generation: u64,
    state: &MapState,
    metrics: &StoreMetrics,
) -> io::Result<()> {
    let span =
        logparse_obs::global().span_into(metrics.snapshot_seconds.clone(), "store_snapshot", &[]);
    for shard in 0..shard_count {
        let data = shard_portion(state, shard, shard_count);
        let bytes = encode_snapshot(shard, shard_count, generation, &data);
        write_atomic(&shard_dir(dir, shard).join(snap_name(generation)), &bytes)?;
        // Cleanup below leaves this snapshot as the shard's only one.
        if let Some(gauge) = metrics.disk_snapshot.get(shard) {
            gauge.set(bytes.len() as f64);
        }
    }
    span.finish();
    for shard in 0..shard_count {
        cleanup_shard(dir, shard, generation)?;
    }
    metrics.compaction_runs.inc();
    Ok(())
}

/// Removes snapshot and log generations older than `keep_from`.
fn cleanup_shard(dir: &Path, shard: usize, keep_from: u64) -> io::Result<()> {
    let sdir = shard_dir(dir, shard);
    let files = scan_dir(&sdir)?;
    let mut removed = false;
    for generation in files.snaps.iter().filter(|&&g| g < keep_from) {
        fs::remove_file(sdir.join(snap_name(*generation)))?;
        removed = true;
    }
    for generation in files.logs.iter().filter(|&&g| g < keep_from) {
        fs::remove_file(sdir.join(log_name(*generation)))?;
        removed = true;
    }
    if removed {
        sync_dir(&sdir)?;
    }
    Ok(())
}

/// Moves a condemned shard directory into `quarantine/shard-<i>-<n>`,
/// picking the first free numeric suffix.
fn quarantine_shard(dir: &Path, shard: usize) -> Result<(), StoreError> {
    let qdir = dir.join("quarantine");
    fs::create_dir_all(&qdir)?;
    let sdir = shard_dir(dir, shard);
    for n in 0..10_000u32 {
        let target = qdir.join(format!("shard-{shard}-{n}"));
        if target.exists() {
            continue;
        }
        fs::rename(&sdir, &target)?;
        sync_dir(&qdir)?;
        sync_dir(dir)?;
        return Ok(());
    }
    Err(StoreError::Corrupt(format!(
        "shard {shard} has 10000 quarantined generations"
    )))
}

struct CompactJob {
    dir: PathBuf,
    shard_count: usize,
    generation: u64,
    state: MapState,
}

/// The lazily-spawned background compactor. One job in flight at a
/// time; results come back over `done` and are surfaced at the next
/// compaction request or at [`TemplateStore::finish`].
struct Compactor {
    jobs: Option<mpsc::Sender<CompactJob>>,
    done: mpsc::Receiver<Result<(), String>>,
    handle: Option<thread::JoinHandle<()>>,
    in_flight: bool,
}

impl Compactor {
    fn spawn(metrics: StoreMetrics) -> Compactor {
        let (jobs_tx, jobs_rx) = mpsc::channel::<CompactJob>();
        let (done_tx, done_rx) = mpsc::channel();
        let handle = thread::spawn(move || {
            while let Ok(job) = jobs_rx.recv() {
                let result = write_generation(
                    &job.dir,
                    job.shard_count,
                    job.generation,
                    &job.state,
                    &metrics,
                )
                .map_err(|err| err.to_string());
                if done_tx.send(result).is_err() {
                    return;
                }
            }
        });
        Compactor {
            jobs: Some(jobs_tx),
            done: done_rx,
            handle: Some(handle),
            in_flight: false,
        }
    }
}

impl Drop for Compactor {
    fn drop(&mut self) {
        // Closing the job channel ends the worker loop; join after,
        // never before, or the drop would deadlock.
        self.jobs = None;
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// A durable sharded template store.
pub struct TemplateStore {
    dir: PathBuf,
    shards: usize,
    compact_log_bytes: u64,
    generation: u64,
    writers: Vec<ShardWriter>,
    metrics: StoreMetrics,
    compactor: Option<Compactor>,
}

impl std::fmt::Debug for TemplateStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TemplateStore")
            .field("dir", &self.dir)
            .field("shards", &self.shards)
            .field("generation", &self.generation)
            .finish_non_exhaustive()
    }
}

impl TemplateStore {
    /// Whether `dir` holds a store (a manifest file exists).
    pub fn is_store(dir: &Path) -> bool {
        manifest_path(dir).is_file()
    }

    /// Opens (creating if necessary) the store at `dir`, recovering
    /// whatever state its snapshots and logs hold. Quarantines
    /// unrecoverable shards, truncates torn log tails, and leaves
    /// every shard ready for appends.
    pub fn open(dir: &Path, config: &StoreConfig) -> Result<(TemplateStore, Recovery), StoreError> {
        if config.shards == 0 {
            return Err(StoreError::Config("store needs at least one shard".into()));
        }
        fs::create_dir_all(dir)?;
        // Pin the store directory's own entry: without a parent fsync,
        // a power loss after the first manifest/snapshot publish can
        // drop the whole directory even though the renames inside it
        // were synced.
        if let Some(parent) = dir.parent().filter(|p| !p.as_os_str().is_empty()) {
            sync_dir(parent)?;
        }
        let shards = if TemplateStore::is_store(dir) {
            read_manifest(dir)?
        } else {
            write_manifest(dir, config.shards)?;
            config.shards
        };
        let mut plans = Vec::with_capacity(shards);
        for shard in 0..shards {
            plans.push(plan_shard(dir, shard, shards)?);
        }
        let generation = plans.iter().map(|p| p.max_generation).max().unwrap_or(0);
        let state = replay(&mut plans);
        let metrics = StoreMetrics::new(shards);

        let mut writers = Vec::with_capacity(shards);
        for plan in &plans {
            let shard = plan.report.shard;
            let sdir = shard_dir(dir, shard);
            if plan.report.quarantined {
                quarantine_shard(dir, shard)?;
                metrics.quarantined_shards.inc();
            }
            fs::create_dir_all(&sdir)?;
            match plan.resume {
                Some((log_generation, valid_prefix)) if log_generation == generation => {
                    writers.push(ShardWriter::resume(
                        &sdir,
                        shard,
                        shards,
                        generation,
                        valid_prefix,
                    )?);
                }
                _ => {
                    // No log to resume at the current generation:
                    // anchor the shard with a snapshot of its portion
                    // of the recovered state so the chain revalidates
                    // on the next open, then start a fresh log.
                    let data = shard_portion(&state, shard, shards);
                    let bytes = encode_snapshot(shard, shards, generation, &data);
                    write_atomic(&sdir.join(snap_name(generation)), &bytes)?;
                    writers.push(ShardWriter::create(&sdir, shard, shards, generation)?);
                }
            }
        }
        // The shard directories were just created (or re-verified);
        // sync their entries so recovery after power loss sees every
        // shard the snapshots below will live in.
        sync_dir(dir)?;
        let recovery = summarize(&plans, state);
        metrics.replay_records.inc_by(recovery.replayed_records);
        // Seed the disk gauges from what open just left on disk (post
        // quarantine/anchoring, so a scan is the honest source).
        for (shard, writer) in writers.iter().enumerate() {
            let (snap_bytes, _) = disk_usage(&shard_dir(dir, shard));
            metrics.disk_snapshot[shard].set(snap_bytes as f64);
            metrics.disk_log[shard].set(writer.bytes as f64);
        }
        Ok((
            TemplateStore {
                dir: dir.to_path_buf(),
                shards,
                compact_log_bytes: config.compact_log_bytes.max(1),
                generation,
                writers,
                metrics,
                compactor: None,
            },
            recovery,
        ))
    }

    /// Read-only recovery scan: rebuilds the state and reports every
    /// shard's condition without modifying anything on disk. Shards
    /// that [`TemplateStore::open`] would quarantine are flagged, not
    /// moved.
    pub fn recover(dir: &Path) -> Result<Recovery, StoreError> {
        if !TemplateStore::is_store(dir) {
            return Err(StoreError::Config(format!(
                "{} is not a template store (no MANIFEST)",
                dir.display()
            )));
        }
        let shards = read_manifest(dir)?;
        let mut plans = Vec::with_capacity(shards);
        for shard in 0..shards {
            plans.push(plan_shard(dir, shard, shards)?);
        }
        let state = replay(&mut plans);
        Ok(summarize(&plans, state))
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of store shards (fixed at creation).
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Current log generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Appends a batch of deltas, each routed to its owning shard
    /// (slot mutations by gid, assigns by binding). Buffered; call
    /// [`TemplateStore::flush`] to make the batch SIGKILL-durable.
    pub fn append(&mut self, deltas: &[MergeDelta]) -> Result<(), StoreError> {
        for delta in deltas {
            let target = match delta {
                MergeDelta::Insert { gid, .. } | MergeDelta::Refine { gid, .. } => {
                    route_slot(*gid, self.shards)
                }
                MergeDelta::Union { winner, .. } => route_slot(*winner, self.shards),
                MergeDelta::Assign { shard, local, .. } => {
                    route_assign(*shard, *local, self.shards)
                }
            };
            if let Some(writer) = self.writers.get_mut(target) {
                writer.append(delta)?;
            }
        }
        Ok(())
    }

    /// Pushes buffered appends to the kernel: after this returns the
    /// records survive SIGKILL (fsync durability needs
    /// [`TemplateStore::sync`]).
    pub fn flush(&mut self) -> Result<(), StoreError> {
        for (shard, writer) in self.writers.iter_mut().enumerate() {
            writer.flush()?;
            if let Some(gauge) = self.metrics.disk_log.get(shard) {
                gauge.set(writer.bytes as f64);
            }
        }
        Ok(())
    }

    /// Flushes and fsyncs every shard log.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        for writer in &mut self.writers {
            writer.sync()?;
        }
        Ok(())
    }

    /// Stores an auxiliary blob (checkpoint metadata, parser state)
    /// atomically and durably, CRC-framed like every other record.
    pub fn put_blob(&self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        let mut framed = Vec::with_capacity(bytes.len() + 16);
        append_record(&mut framed, bytes);
        write_atomic(&self.dir.join(format!("{name}.blob")), &framed)?;
        Ok(())
    }

    /// Reads an auxiliary blob, verifying its checksum. A blob that
    /// exists but carries an empty payload is reported as
    /// [`BlobRead::Corrupt`], not `Ok` — every writer in this codebase
    /// frames a non-empty serialized document, so an empty payload means
    /// the producer was interrupted or misbehaved, and treating it as
    /// readable used to let recovery silently degrade to a fresh state
    /// (indistinguishable from `Missing` to the caller).
    pub fn read_blob(dir: &Path, name: &str) -> Result<BlobRead, StoreError> {
        let path = dir.join(format!("{name}.blob"));
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(BlobRead::Missing),
            Err(err) => return Err(err.into()),
        };
        Ok(match read_single_record(&bytes) {
            Some(payload) if payload.is_empty() => BlobRead::Corrupt,
            Some(payload) => BlobRead::Ok(payload),
            None => BlobRead::Corrupt,
        })
    }

    /// Whether any shard's log has outgrown the compaction threshold
    /// (and no compaction is already running).
    pub fn should_compact(&self) -> bool {
        self.writers
            .iter()
            .any(|w| w.bytes >= self.compact_log_bytes)
            && !self.compactor.as_ref().is_some_and(|c| c.in_flight)
    }

    /// Rotates every shard to generation `G+1` and synchronously
    /// folds `state` into fresh snapshots, deleting older
    /// generations. `state` must be the full map the appended deltas
    /// built (the caller's live export).
    pub fn compact(&mut self, state: &MapState) -> Result<(), StoreError> {
        self.drain_background(true)?;
        let next = self.rotate()?;
        write_generation(&self.dir, self.shards, next, state, &self.metrics)?;
        Ok(())
    }

    /// Like [`TemplateStore::compact`] but the snapshot writing and
    /// cleanup run on a background thread; rotation still happens
    /// inline so new deltas land in the next generation immediately.
    /// Returns `false` (and does nothing) if a compaction is already
    /// in flight. Errors from a previous background run surface here
    /// or at [`TemplateStore::finish`].
    pub fn compact_background(&mut self, state: MapState) -> Result<bool, StoreError> {
        self.drain_background(false)?;
        if self.compactor.as_ref().is_some_and(|c| c.in_flight) {
            return Ok(false);
        }
        let next = self.rotate()?;
        let metrics = self.metrics.clone();
        let compactor = self
            .compactor
            .get_or_insert_with(|| Compactor::spawn(metrics));
        let job = CompactJob {
            dir: self.dir.clone(),
            shard_count: self.shards,
            generation: next,
            state,
        };
        match &compactor.jobs {
            Some(jobs) if jobs.send(job).is_ok() => {
                compactor.in_flight = true;
                Ok(true)
            }
            _ => Err(other_error("compactor thread is gone".into())),
        }
    }

    /// Waits for any in-flight compaction, fsyncs every log, and
    /// shuts the compactor down. The consuming close — errors that a
    /// background run hit are returned here.
    pub fn finish(mut self) -> Result<(), StoreError> {
        self.drain_background(true)?;
        self.sync()?;
        self.compactor = None;
        Ok(())
    }

    /// Opens the next log generation on every shard. Logs rotate
    /// before snapshots are written, so snapshot `G` always pairs
    /// with a log `G` that holds everything after it.
    fn rotate(&mut self) -> Result<u64, StoreError> {
        let next = self.generation + 1;
        for (shard, writer) in self.writers.iter_mut().enumerate() {
            writer.sync()?;
            *writer = ShardWriter::create(&shard_dir(&self.dir, shard), shard, self.shards, next)?;
            if let Some(gauge) = self.metrics.disk_log.get(shard) {
                gauge.set(writer.bytes as f64);
            }
        }
        self.generation = next;
        Ok(next)
    }

    /// Collects the result of an in-flight background compaction;
    /// blocking when `wait` is set, otherwise only if one is ready.
    fn drain_background(&mut self, wait: bool) -> Result<(), StoreError> {
        let Some(compactor) = &mut self.compactor else {
            return Ok(());
        };
        if !compactor.in_flight {
            return Ok(());
        }
        let outcome = if wait {
            match compactor.done.recv() {
                Ok(outcome) => outcome,
                Err(_) => {
                    compactor.in_flight = false;
                    return Err(other_error("compactor thread died mid-run".into()));
                }
            }
        } else {
            match compactor.done.try_recv() {
                Ok(outcome) => outcome,
                Err(mpsc::TryRecvError::Empty) => return Ok(()),
                Err(mpsc::TryRecvError::Disconnected) => {
                    compactor.in_flight = false;
                    return Err(other_error("compactor thread died mid-run".into()));
                }
            }
        };
        compactor.in_flight = false;
        outcome.map_err(|msg| other_error(format!("background compaction failed: {msg}")))
    }
}

impl Drop for TemplateStore {
    fn drop(&mut self) {
        // Best-effort: push buffered appends to the kernel. finish()
        // is the checked path; drop must not panic or block on the
        // compactor beyond its own Drop join.
        for writer in &mut self.writers {
            let _ = writer.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tstore-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn config(shards: usize) -> StoreConfig {
        StoreConfig {
            shards,
            compact_log_bytes: 1 << 20,
        }
    }

    fn sample_deltas() -> Vec<MergeDelta> {
        vec![
            MergeDelta::Insert {
                gid: 0,
                key: "connection from <*>".into(),
            },
            MergeDelta::Assign {
                shard: 0,
                local: 0,
                gid: 0,
            },
            MergeDelta::Insert {
                gid: 1,
                key: "disconnect <*> after <*> ms".into(),
            },
            MergeDelta::Assign {
                shard: 1,
                local: 0,
                gid: 1,
            },
            MergeDelta::Refine {
                gid: 1,
                key: "disconnect <*> after <*>".into(),
            },
        ]
    }

    fn expected_state() -> MapState {
        let mut state = MapState::new();
        for delta in sample_deltas() {
            state.apply(&delta);
        }
        state
    }

    #[test]
    fn fresh_open_append_reopen_round_trips() {
        let dir = temp_store_dir("roundtrip");
        let (mut store, recovery) = TemplateStore::open(&dir, &config(4)).unwrap();
        assert!(recovery.state.is_empty());
        assert_eq!(recovery.quarantined_shards, 0);
        store.append(&sample_deltas()).unwrap();
        store.flush().unwrap();
        store.finish().unwrap();

        let (_store, recovery) = TemplateStore::open(&dir, &config(4)).unwrap();
        assert_eq!(recovery.state, expected_state());
        assert_eq!(recovery.replayed_records, sample_deltas().len() as u64);
        assert_eq!(recovery.quarantined_shards, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_usage_reaches_reports_and_gauges() {
        let dir = temp_store_dir("diskusage");
        let (mut store, _) = TemplateStore::open(&dir, &config(2)).unwrap();
        store.append(&sample_deltas()).unwrap();
        store.flush().unwrap();
        // The flush refreshed the live-log gauges from writer state.
        let logged: f64 = store.metrics.disk_log.iter().map(|g| g.get()).sum();
        let on_disk: u64 = (0..2).map(|s| disk_usage(&shard_dir(&dir, s)).1).sum();
        assert_eq!(logged as u64, on_disk, "log gauges track on-disk bytes");
        assert!(on_disk > 0);
        // Compaction folds the logs into snapshots and the snapshot
        // gauges pick up the new generation's sizes.
        store.compact(&expected_state()).unwrap();
        let snap_gauged: f64 = store.metrics.disk_snapshot.iter().map(|g| g.get()).sum();
        let snap_disk: u64 = (0..2).map(|s| disk_usage(&shard_dir(&dir, s)).0).sum();
        assert_eq!(snap_gauged as u64, snap_disk);
        assert!(snap_disk > 0);
        store.finish().unwrap();

        // A recovery scan reports the same sizes per shard.
        let recovery = TemplateStore::recover(&dir).unwrap();
        for report in &recovery.reports {
            let (snap_bytes, log_bytes) = disk_usage(&shard_dir(&dir, report.shard));
            assert_eq!(report.snapshot_bytes, snap_bytes, "shard {}", report.shard);
            assert_eq!(report.log_bytes, log_bytes, "shard {}", report.shard);
            assert!(report.snapshot_bytes > 0);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_shard_count_beats_config() {
        let dir = temp_store_dir("manifest");
        let (store, _) = TemplateStore::open(&dir, &config(2)).unwrap();
        assert_eq!(store.shard_count(), 2);
        drop(store);
        let (store, _) = TemplateStore::open(&dir, &config(16)).unwrap();
        assert_eq!(store.shard_count(), 2, "manifest wins over config");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_preserves_state_and_prunes_generations() {
        let dir = temp_store_dir("compact");
        let (mut store, _) = TemplateStore::open(&dir, &config(2)).unwrap();
        store.append(&sample_deltas()).unwrap();
        store.compact(&expected_state()).unwrap();
        assert_eq!(store.generation(), 1);
        // Post-compaction appends land in the new generation.
        let extra = MergeDelta::Insert {
            gid: 2,
            key: "post compaction <*>".into(),
        };
        store.append(std::slice::from_ref(&extra)).unwrap();
        store.finish().unwrap();

        let files = scan_dir(&dir.join("shard-0")).unwrap();
        assert_eq!(files.snaps, vec![1], "generation 0 pruned");
        assert_eq!(files.logs, vec![1]);

        let (_store, recovery) = TemplateStore::open(&dir, &config(2)).unwrap();
        let mut expected = expected_state();
        expected.apply(&extra);
        assert_eq!(recovery.state, expected);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn background_compaction_completes_and_surfaces_at_finish() {
        let dir = temp_store_dir("bg");
        let (mut store, _) = TemplateStore::open(&dir, &config(2)).unwrap();
        store.append(&sample_deltas()).unwrap();
        assert!(store.compact_background(expected_state()).unwrap());
        store.finish().unwrap();
        let (_store, recovery) = TemplateStore::open(&dir, &config(2)).unwrap();
        assert_eq!(recovery.state, expected_state());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_log_tail_is_truncated_and_appendable() {
        let dir = temp_store_dir("torn");
        let (mut store, _) = TemplateStore::open(&dir, &config(1)).unwrap();
        store.append(&sample_deltas()).unwrap();
        store.finish().unwrap();
        // Tear the single shard's log mid-record.
        let log = dir.join("shard-0").join(log_name(0));
        let bytes = fs::read(&log).unwrap();
        fs::write(&log, &bytes[..bytes.len() - 2]).unwrap();

        let (mut store, recovery) = TemplateStore::open(&dir, &config(1)).unwrap();
        let report = recovery.reports.first().unwrap();
        assert!(report.torn_tail_bytes > 0);
        assert!(!report.quarantined);
        // The last delta (a refine) was torn away; the insert stands.
        assert_eq!(
            recovery.state.templates.get(1).unwrap(),
            "disconnect <*> after <*> ms"
        );
        store
            .append(&[MergeDelta::Refine {
                gid: 1,
                key: "re-refined <*>".into(),
            }])
            .unwrap();
        store.finish().unwrap();
        let (_store, recovery) = TemplateStore::open(&dir, &config(1)).unwrap();
        assert_eq!(recovery.state.templates.get(1).unwrap(), "re-refined <*>");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gen_gap_quarantines_only_the_bad_shard() {
        let dir = temp_store_dir("gap");
        let (mut store, _) = TemplateStore::open(&dir, &config(2)).unwrap();
        store.append(&sample_deltas()).unwrap();
        store.compact(&expected_state()).unwrap();
        store.finish().unwrap();
        // Shard 0 loses its snapshot: its log chain starts at 1, not
        // 0, so recovery cannot rebuild it.
        fs::remove_file(dir.join("shard-0").join(snap_name(1))).unwrap();

        let scan = TemplateStore::recover(&dir).unwrap();
        assert!(scan.reports.first().unwrap().quarantined);
        assert!(!scan.reports.get(1).unwrap().quarantined);

        let (_store, recovery) = TemplateStore::open(&dir, &config(2)).unwrap();
        assert_eq!(recovery.quarantined_shards, 1);
        assert!(dir.join("quarantine").join("shard-0-0").is_dir());
        // Shard 1's slots survive (gids 1 in a 2-shard store).
        assert_eq!(
            recovery.state.templates.get(1).unwrap(),
            "disconnect <*> after <*>"
        );
        // Shard 0's slots are tombstoned, not served.
        assert!(!recovery
            .state
            .canonical_templates()
            .contains(&"connection from <*>".to_string()));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantined_shard_is_replaced_and_store_stays_usable() {
        let dir = temp_store_dir("requarantine");
        let (mut store, _) = TemplateStore::open(&dir, &config(2)).unwrap();
        store.append(&sample_deltas()).unwrap();
        store.compact(&expected_state()).unwrap();
        store.finish().unwrap();
        fs::remove_file(dir.join("shard-0").join(snap_name(1))).unwrap();
        let (mut store, _) = TemplateStore::open(&dir, &config(2)).unwrap();
        // The replacement shard accepts appends and revalidates.
        store
            .append(&[MergeDelta::Insert {
                gid: 2,
                key: "fresh after quarantine".into(),
            }])
            .unwrap();
        store.finish().unwrap();
        let (_store, recovery) = TemplateStore::open(&dir, &config(2)).unwrap();
        assert_eq!(
            recovery.quarantined_shards, 0,
            "replacement shard is healthy"
        );
        assert_eq!(
            recovery.state.templates.get(2).unwrap(),
            "fresh after quarantine"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn blobs_round_trip_and_detect_corruption() {
        let dir = temp_store_dir("blob");
        let (store, _) = TemplateStore::open(&dir, &config(1)).unwrap();
        assert_eq!(
            TemplateStore::read_blob(&dir, "meta").unwrap(),
            BlobRead::Missing
        );
        store.put_blob("meta", b"{\"lines\":42}").unwrap();
        assert_eq!(
            TemplateStore::read_blob(&dir, "meta").unwrap(),
            BlobRead::Ok(b"{\"lines\":42}".to_vec())
        );
        let mut bytes = fs::read(dir.join("meta.blob")).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(dir.join("meta.blob"), &bytes).unwrap();
        assert_eq!(
            TemplateStore::read_blob(&dir, "meta").unwrap(),
            BlobRead::Corrupt
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_errors_on_a_non_store_directory() {
        let dir = temp_store_dir("nonstore");
        fs::create_dir_all(&dir).unwrap();
        assert!(TemplateStore::recover(&dir).is_err());
        assert!(!TemplateStore::is_store(&dir));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn should_compact_tracks_log_growth() {
        let dir = temp_store_dir("threshold");
        let (mut store, _) = TemplateStore::open(
            &dir,
            &StoreConfig {
                shards: 1,
                compact_log_bytes: 256,
            },
        )
        .unwrap();
        assert!(!store.should_compact());
        let mut state = MapState::new();
        for gid in 0..32 {
            let delta = MergeDelta::Insert {
                gid,
                key: format!("template number <{gid}> with padding <*>"),
            };
            state.apply(&delta);
            store.append(std::slice::from_ref(&delta)).unwrap();
        }
        assert!(store.should_compact());
        store.compact(&state).unwrap();
        assert!(!store.should_compact(), "fresh log is small again");
        store.finish().unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }
}
