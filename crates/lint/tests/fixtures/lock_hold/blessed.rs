// The violation from `violation.rs`, blessed by a pragma on the
// acquisition line — the sanctioned idiom for locks whose purpose is
// serializing the consumer.

use std::sync::{mpsc::Sender, Mutex};

pub fn drain(state: &Mutex<Vec<String>>, tx: &Sender<String>) {
    // lint:allow(lock-channel-hold): single-consumer fixture — nothing that wants this lock can be on the other end of the channel
    let guard = state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    for line in guard.iter() {
        let _ = tx.send(line.clone());
    }
}
