// Compliant twin of `violation.rs`: the guard's scope closes before
// anything can block on the channel.

use std::sync::{mpsc::Sender, Mutex};

pub fn drain(state: &Mutex<Vec<String>>, tx: &Sender<String>) {
    let lines: Vec<String> = {
        let guard = state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.clone()
    };
    for line in lines {
        let _ = tx.send(line);
    }
}
