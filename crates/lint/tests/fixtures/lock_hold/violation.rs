// Seeded lock-channel-hold violation: a channel send while a mutex
// guard from an enclosing scope is still live.

use std::sync::{mpsc::Sender, Mutex};

pub fn drain(state: &Mutex<Vec<String>>, tx: &Sender<String>) {
    let guard = state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    for line in guard.iter() {
        let _ = tx.send(line.clone());
    }
}
