// Blessed twin: the publish is deliberately flush-tier and says so.
// lint:allow(durability-discipline): scratch artifacts are flush-tier by contract — rebuilt from the journal after power loss (docs/DURABILITY.md)
pub fn publish(p: &Path) -> io::Result<()> {
    let tmp = p.with_extension("tmp");
    let mut f = File::create(&tmp)?;
    f.write_all(b"payload")?;
    fs::rename(&tmp, p)
}
