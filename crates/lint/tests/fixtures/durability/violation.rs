// Seeded rule-A violation: publishes by rename but never syncs the
// file's bytes or the directory entry — SIGKILL-safe, not
// power-loss-safe.
pub fn publish(p: &Path) -> io::Result<()> {
    let tmp = p.with_extension("tmp");
    let mut f = File::create(&tmp)?;
    f.write_all(b"payload")?;
    fs::rename(&tmp, p)
}
