// Compliant twin: dir creation is pinned and the publish path syncs
// both the file bytes and the directory entry before/after the rename.
pub fn run(dir: &Path) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    sync_dir(dir)?;
    seal(&dir.join("out.bin"), b"payload")
}

pub fn seal(p: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = p.with_extension("tmp");
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    fs::rename(&tmp, p)?;
    if let Some(parent) = p.parent() {
        sync_dir(parent)?;
    }
    Ok(())
}
