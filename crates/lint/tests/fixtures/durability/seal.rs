// Compliant publisher used as the rename target of the rule-B caller
// fixture: file bytes synced, rename, then the parent entry synced.
pub fn seal(p: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = p.with_extension("tmp");
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    fs::rename(&tmp, p)?;
    if let Some(parent) = p.parent() {
        sync_dir(parent)?;
    }
    Ok(())
}
