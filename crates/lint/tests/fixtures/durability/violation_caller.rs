// Seeded rule-B violation: creates directories on a durable publish
// path (it reaches `fs::rename` through `seal` in the twin fixture)
// without ever pinning the created entries with `sync_dir`.
pub fn run(dir: &Path) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    seal(&dir.join("out.bin"), b"payload")
}
