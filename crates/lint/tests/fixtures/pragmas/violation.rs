// Seeded bad-pragma violations: an unknown lint name and a missing
// reason. Neither can be suppressed — the mechanism polices itself.

// lint:allow(made-up-lint): this lint does not exist
pub fn a() {}

// lint:allow(timing-discipline)
pub fn b() {}
