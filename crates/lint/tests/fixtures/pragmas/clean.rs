// Compliant twin of `violation.rs`: a known lint and a recorded reason.

// lint:allow(timing-discipline): demonstration pragma with a reason
pub fn a() {}
