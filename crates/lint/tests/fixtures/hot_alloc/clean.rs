// Compliant twin of `violation.rs`: the loop collects integers; any
// string rendering happens once, after the loop.

pub fn render(rows: &[Vec<u32>]) -> String {
    let mut total = 0u64;
    for row in rows {
        for id in row {
            total += u64::from(*id);
        }
    }
    format!("{total}")
}
