// A loop allocation that documents itself: suppressed by a pragma on
// the line above, as `worker.rs`'s batch path would.

pub fn labels(ids: &[u32]) -> Vec<String> {
    let mut out = Vec::new();
    for id in ids {
        // lint:allow(hot-path-string-alloc): runs once per checkpoint, not per line
        out.push(id.to_string());
    }
    out
}
