// Seeded hot-path-string-alloc violation: a per-iteration allocation
// in a parser-style loop — exactly the cost interning removed.

pub fn render(rows: &[Vec<u32>]) -> Vec<String> {
    let mut out = Vec::new();
    for row in rows {
        for id in row {
            out.push(id.to_string());
        }
    }
    out
}
