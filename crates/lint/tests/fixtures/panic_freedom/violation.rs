// Seeded panic-freedom violations: an `unwrap()` (error) and a literal
// slice index (warning), both reachable from hot-path library code.

pub fn head_plus_first(v: &[u32]) -> u32 {
    let head = v.first().copied().unwrap();
    head + v[0]
}
