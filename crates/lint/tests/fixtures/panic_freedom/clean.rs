// Compliant twin of `violation.rs`: fallible access stays an Option,
// and no literal index can go out of bounds.

pub fn head_plus_first(v: &[u32]) -> Option<u32> {
    let head = v.first().copied()?;
    Some(head + v.iter().sum::<u32>())
}
