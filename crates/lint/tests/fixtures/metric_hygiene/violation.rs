// Seeded obs-metric-hygiene violations, one per sub-check: an
// undocumented family, a duplicate registration, and a non-literal
// family name. The paired `design.md` also documents a ghost family
// that no code registers.

pub fn register(r: &Registry, dynamic: &str) {
    r.counter("fixture_rogue_total", "not in the design table", &[]);
    r.counter("fixture_lines_total", "documented and owned here", &[]);
    r.counter("fixture_lines_total", "second owner — duplicate", &[]);
    r.counter(dynamic, "name only exists at runtime", &[]);
}
