// Compliant twin of `violation.rs`: every family in `design.md` is
// registered exactly once, by literal name.

pub fn register(r: &Registry) {
    r.counter("fixture_lines_total", "documented and owned here", &[]);
    r.gauge("fixture_ghost_total", "documented and owned here too", &[]);
}
