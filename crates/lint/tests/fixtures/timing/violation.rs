// Seeded timing-discipline violation: an ad-hoc Instant pair in
// library code — measured, but recorded nowhere.

use std::time::Instant;

pub fn measure<F: FnOnce()>(work: F) -> f64 {
    let start = Instant::now();
    work();
    start.elapsed().as_secs_f64()
}
