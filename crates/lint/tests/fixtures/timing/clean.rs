// Compliant twin of `violation.rs`: timing flows through the obs span
// layer, so the measurement lands in a histogram.

pub fn measure<F: FnOnce()>(work: F) -> f64 {
    let span = logparse_obs::global().span("fixture_work", &[]);
    work();
    span.finish().as_secs_f64()
}
