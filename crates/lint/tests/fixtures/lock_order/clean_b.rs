// Compliant twin: same REG-then-JOURNAL order as the other file.
pub fn take_journal() {
    let j = JOURNAL.lock().unwrap_or_else(|e| e.into_inner());
    drop(j);
}

pub fn backward() {
    let g = REG.lock().unwrap_or_else(|e| e.into_inner());
    let j = JOURNAL.lock().unwrap_or_else(|e| e.into_inner());
    use_both(&j, &g);
}
