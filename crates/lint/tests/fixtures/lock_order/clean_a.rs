// Compliant twin: both files take `REG` before `JOURNAL`, so the
// lock-order graph has edges in one direction only — no cycle.
pub fn forward() {
    let g = REG.lock().unwrap_or_else(|e| e.into_inner());
    take_journal();
    drop(g);
}
