// Second half of the seeded cycle: `backward` holds `JOURNAL` while
// acquiring `REG` — the opposite order from `forward` in the twin file.
pub fn take_journal() {
    let j = JOURNAL.lock().unwrap_or_else(|e| e.into_inner());
    drop(j);
}

pub fn backward() {
    let j = JOURNAL.lock().unwrap_or_else(|e| e.into_inner());
    let g = REG.lock().unwrap_or_else(|e| e.into_inner());
    use_both(&j, &g);
}
