// Blessed twin of the violation pair — the cycle is real but the
// conflicting hold site in the other file carries a reasoned pragma.
pub fn forward() {
    let g = REG.lock().unwrap_or_else(|e| e.into_inner());
    take_journal();
    drop(g);
}
