// Seeded half of a cross-file lock-order cycle: `forward` holds the
// workspace-global `REG` static while calling into the other file,
// which acquires `JOURNAL`. The twin file takes them the other way.
pub fn forward() {
    let g = REG.lock().unwrap_or_else(|e| e.into_inner());
    take_journal();
    drop(g);
}
