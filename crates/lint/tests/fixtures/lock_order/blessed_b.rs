// Blessed twin: the inconsistent hold site is blessed with a reasoned
// pragma on the acquisition the finding anchors to.
pub fn take_journal() {
    let j = JOURNAL.lock().unwrap_or_else(|e| e.into_inner());
    drop(j);
}

pub fn backward() {
    // lint:allow(lock-order-cycle): backward runs only at startup before forward's thread exists
    let j = JOURNAL.lock().unwrap_or_else(|e| e.into_inner());
    let g = REG.lock().unwrap_or_else(|e| e.into_inner());
    use_both(&j, &g);
}
