// Compliant twin: in-function join, the escape-into-owner pattern with
// a joining `stop()`, a scoped spawn, and a child process — all clean.
pub fn join_inline() {
    let handle = std::thread::spawn(background_work);
    let _ = handle.join();
}

pub fn start() -> io::Result<Server> {
    let h = std::thread::Builder::new()
        .name("worker".into())
        .spawn(background_work)?;
    Ok(Server { handle: Some(h) })
}

impl Server {
    pub fn stop(&mut self) {
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

pub fn scoped() {
    std::thread::scope(|scope| {
        scope.spawn(|| background_work());
    });
}

pub fn child_process() -> io::Result<Child> {
    std::process::Command::new("true").spawn()
}
