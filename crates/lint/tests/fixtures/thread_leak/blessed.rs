// Blessed twin: a deliberate detach with the reason recorded.
// lint:allow(thread-leak): telemetry flusher is detach-by-design — it exits with the process and owns no state anyone waits on
pub fn fire_and_forget() {
    std::thread::spawn(|| background_work());
}
