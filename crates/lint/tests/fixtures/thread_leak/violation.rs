// Seeded thread-leak violations: one handle discarded on the floor,
// one bound but never joined and never escaping.
pub fn fire_and_forget() {
    std::thread::spawn(|| background_work());
}

pub fn bind_and_drop() {
    let handle = std::thread::spawn(background_work);
    other_work();
}
