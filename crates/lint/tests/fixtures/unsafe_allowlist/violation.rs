// Seeded unsafe-allowlist violation: an `unsafe` block in a file that
// is not the sanctioned FFI surface.

pub fn peek(p: *const u8) -> u8 {
    unsafe { *p }
}
