//! A crate root without `#![forbid(unsafe_code)]` — the allowlist
//! check requires every root to carry it.

pub fn noop() {}
