// Sanctioned unsafe: the block carries its soundness argument in a
// SAFETY comment directly above, as the allowlist requires.

pub fn peek(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` points to a live, initialized
    // byte for the duration of this call.
    unsafe { *p }
}
