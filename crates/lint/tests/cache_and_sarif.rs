//! End-to-end regressions for the incremental cache and the SARIF
//! emitter: a warm second run over a mini on-disk workspace is served
//! entirely from cache with identical findings, an edit invalidates
//! exactly the edited file, and the SARIF document has the 2.1.0
//! shape CI-side viewers expect.

use std::path::{Path, PathBuf};

use logparse_lint::report::sarif;
use logparse_lint::run_workspace_stats;

fn temp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lint-cache-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Builds a tiny two-crate workspace on disk: one clean file, one with
/// a seeded finding.
fn mini_workspace(root: &Path) {
    let demo = root.join("crates/demo/src");
    let eval = root.join("crates/eval/src");
    std::fs::create_dir_all(&demo).unwrap();
    std::fs::create_dir_all(&eval).unwrap();
    std::fs::write(
        demo.join("lib.rs"),
        "#![forbid(unsafe_code)]\npub fn add(a: u32, b: u32) -> u32 { a + b }\n",
    )
    .unwrap();
    std::fs::write(
        eval.join("lib.rs"),
        "#![forbid(unsafe_code)]\npub fn slow() {\n    let t = std::time::Instant::now();\n    \
         let _ = t.elapsed();\n}\n",
    )
    .unwrap();
}

#[test]
fn warm_run_hits_cache_and_edit_invalidates_one_file() {
    let root = temp("warm");
    mini_workspace(&root);
    let cache = root.join("lint-cache");

    let (cold_findings, cold) = run_workspace_stats(&root, Some(&cache)).unwrap();
    assert_eq!(cold.files, 2);
    assert_eq!(cold.cache_hits, 0, "{cold:?}");
    assert_eq!(cold.cache_misses, 2, "{cold:?}");
    assert_eq!(cold_findings.len(), 1, "{cold_findings:?}");
    assert_eq!(cold_findings[0].lint, "timing-discipline");

    let (warm_findings, warm) = run_workspace_stats(&root, Some(&cache)).unwrap();
    assert_eq!(warm.cache_hits, 2, "{warm:?}");
    assert_eq!(warm.cache_misses, 0, "{warm:?}");
    assert_eq!(
        warm_findings, cold_findings,
        "cached analysis must reproduce the cold findings exactly"
    );

    // Edit one file: exactly one entry goes stale.
    std::fs::write(
        root.join("crates/demo/src/lib.rs"),
        "#![forbid(unsafe_code)]\npub fn add(a: u32, b: u32) -> u32 { a.wrapping_add(b) }\n",
    )
    .unwrap();
    let (_, edited) = run_workspace_stats(&root, Some(&cache)).unwrap();
    assert_eq!(edited.cache_hits, 1, "{edited:?}");
    assert_eq!(edited.cache_misses, 1, "{edited:?}");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn sarif_document_has_the_2_1_0_shape() {
    let root = temp("sarif");
    mini_workspace(&root);
    let (findings, _) = run_workspace_stats(&root, None).unwrap();
    assert!(!findings.is_empty());
    let doc = sarif(&findings, true);

    // Shape probes against the fixed serialization — a hand-rolled
    // walker would re-implement the emitter; substring probes on the
    // canonical key order are enough to catch structural regressions.
    assert!(
        doc.starts_with("{\"version\":\"2.1.0\",\"$schema\":"),
        "{doc}"
    );
    assert!(
        doc.contains("sarif-2.1.0.json"),
        "must reference the 2.1.0 schema: {doc}"
    );
    assert!(doc.contains("\"version\":\"2.1.0\""), "{doc}");
    assert!(doc.contains("\"runs\":[{"), "{doc}");
    assert!(
        doc.contains("\"driver\":{\"name\":\"logparse-lint\""),
        "{doc}"
    );
    assert!(doc.contains("\"rules\":["), "{doc}");
    assert!(
        doc.contains("\"id\":\"timing-discipline\""),
        "every catalog lint appears as a rule: {doc}"
    );
    assert!(doc.contains("\"ruleId\":\"timing-discipline\""), "{doc}");
    assert!(
        doc.contains("\"level\":\"error\""),
        "--deny warnings promotes the warning: {doc}"
    );
    assert!(doc.contains("\"physicalLocation\""), "{doc}");
    assert!(doc.contains("\"uri\":\"crates/eval/src/lib.rs\""), "{doc}");
    assert!(doc.contains("\"startLine\":3"), "{doc}");

    // Without deny, the warning keeps its own level.
    let relaxed = sarif(&findings, false);
    assert!(relaxed.contains("\"level\":\"warning\""), "{relaxed}");

    let _ = std::fs::remove_dir_all(&root);
}
