//! Fixture-driven demonstrations: every lint in the catalog fires on
//! its seeded violation and stays silent on the compliant twin.
//!
//! Fixture sources live under `tests/fixtures/` — a directory the
//! workspace walker skips, so the seeded violations never reach the
//! real `--workspace` run these same lints keep clean. Each fixture is
//! linted here under a synthetic workspace-relative path, because the
//! path decides scope (hot-path crates, the unsafe allowlist, roles).

use logparse_lint::lints::{Finding, Severity};
use logparse_lint::run_files;
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Lints one fixture as if it lived at `rel` inside the workspace.
fn lint_as(rel: &str, fixture_name: &str) -> Vec<Finding> {
    run_files(&[(rel.to_string(), fixture(fixture_name))], None)
}

/// Lints several fixtures together — the multi-file shape the
/// call-graph lints need.
fn lint_many(files: &[(&str, &str)]) -> Vec<Finding> {
    let loaded: Vec<(String, String)> = files
        .iter()
        .map(|(rel, name)| (rel.to_string(), fixture(name)))
        .collect();
    run_files(&loaded, None)
}

fn lint_names(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.lint).collect()
}

#[test]
fn panic_freedom_fires_in_hot_path_and_not_elsewhere() {
    let hot = lint_as(
        "crates/parsers/src/fixture.rs",
        "panic_freedom/violation.rs",
    );
    assert_eq!(
        lint_names(&hot),
        vec!["panic-freedom", "panic-freedom"],
        "{hot:?}"
    );
    assert_eq!(hot[0].severity, Severity::Error, "unwrap is an error");
    assert_eq!(
        hot[1].severity,
        Severity::Warn,
        "literal index is a warning"
    );

    let cold = lint_as("crates/eval/src/fixture.rs", "panic_freedom/violation.rs");
    assert!(cold.is_empty(), "eval is not hot-path: {cold:?}");
    let clean = lint_as("crates/parsers/src/fixture.rs", "panic_freedom/clean.rs");
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn panic_freedom_is_exempt_inside_test_regions() {
    let body = fixture("panic_freedom/violation.rs");
    let wrapped = format!("#[cfg(test)]\nmod tests {{\n{body}\n}}\n");
    let out = run_files(
        &[("crates/parsers/src/fixture.rs".to_string(), wrapped)],
        None,
    );
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn unsafe_allowlist_fires_outside_the_sanctioned_file() {
    let out = lint_as(
        "crates/core/src/fixture.rs",
        "unsafe_allowlist/violation.rs",
    );
    assert_eq!(lint_names(&out), vec!["unsafe-allowlist"], "{out:?}");
    assert_eq!(out[0].severity, Severity::Error);

    // In an allowlisted file the bare block is still flagged — for the
    // missing SAFETY comment, not for being unsafe.
    for sanctioned_file in ["crates/ingest/src/signal.rs", "crates/core/src/mmap.rs"] {
        let bare = lint_as(sanctioned_file, "unsafe_allowlist/violation.rs");
        assert_eq!(lint_names(&bare), vec!["unsafe-allowlist"], "{bare:?}");
        assert!(bare[0].message.contains("SAFETY"), "{bare:?}");
        let commented = lint_as(sanctioned_file, "unsafe_allowlist/safety_commented.rs");
        assert!(commented.is_empty(), "{commented:?}");
    }
}

#[test]
fn crate_roots_must_forbid_unsafe_code() {
    let missing = lint_as(
        "crates/demo/src/lib.rs",
        "unsafe_allowlist/root_violation.rs",
    );
    assert_eq!(
        lint_names(&missing),
        vec!["unsafe-allowlist"],
        "{missing:?}"
    );
    assert!(missing[0].message.contains("forbid"), "{missing:?}");

    let ok = lint_as("crates/demo/src/lib.rs", "unsafe_allowlist/root_clean.rs");
    assert!(ok.is_empty(), "{ok:?}");
    // The same file is not a crate root elsewhere, so nothing fires.
    let not_root = lint_as(
        "crates/demo/src/extra.rs",
        "unsafe_allowlist/root_violation.rs",
    );
    assert!(not_root.is_empty(), "{not_root:?}");
}

#[test]
fn lock_hold_fires_on_send_under_guard_and_respects_scope_and_pragma() {
    let out = lint_as("crates/ingest/src/fixture.rs", "lock_hold/violation.rs");
    assert_eq!(lint_names(&out), vec!["lock-channel-hold"], "{out:?}");
    assert!(out[0].message.contains("channel send"), "{out:?}");
    assert!(
        !out[0].also_allow_at.is_empty(),
        "carries its acquisition anchor"
    );

    let scoped = lint_as("crates/ingest/src/fixture.rs", "lock_hold/clean.rs");
    assert!(
        scoped.is_empty(),
        "guard scope closed before send: {scoped:?}"
    );
    let blessed = lint_as("crates/ingest/src/fixture.rs", "lock_hold/blessed.rs");
    assert!(
        blessed.is_empty(),
        "acquisition-line pragma blesses the scope: {blessed:?}"
    );
}

#[test]
fn metric_hygiene_cross_checks_code_against_design() {
    let design = fixture("metric_hygiene/design.md");
    let files = vec![(
        "crates/obs/src/fixture.rs".to_string(),
        fixture("metric_hygiene/violation.rs"),
    )];
    let out = run_files(&files, Some(("DESIGN.md", &design)));
    let msgs: Vec<&str> = out.iter().map(|f| f.message.as_str()).collect();
    assert_eq!(out.len(), 4, "{msgs:?}");
    assert!(
        out.iter().all(|f| f.lint == "obs-metric-hygiene"),
        "{out:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("fixture_rogue_total")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("already registered")),
        "{msgs:?}"
    );
    assert!(msgs.iter().any(|m| m.contains("non-literal")), "{msgs:?}");
    assert!(
        msgs.iter()
            .any(|m| m.contains("fixture_ghost_total") && m.contains("never registered")),
        "{msgs:?}"
    );

    let clean = vec![(
        "crates/obs/src/fixture.rs".to_string(),
        fixture("metric_hygiene/clean.rs"),
    )];
    let out = run_files(&clean, Some(("DESIGN.md", &design)));
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn timing_discipline_fires_in_lib_code_only() {
    let out = lint_as("crates/eval/src/fixture.rs", "timing/violation.rs");
    assert_eq!(lint_names(&out), vec!["timing-discipline"], "{out:?}");
    assert_eq!(out[0].severity, Severity::Warn);

    for exempt_rel in [
        "crates/bench/src/bin/fixture.rs", // binaries may time freely
        "crates/obs/src/fixture.rs",       // the instrumentation substrate itself
        "crates/eval/benches/fixture.rs",  // benches
    ] {
        let out = lint_as(exempt_rel, "timing/violation.rs");
        assert!(out.is_empty(), "{exempt_rel}: {out:?}");
    }
    let clean = lint_as("crates/eval/src/fixture.rs", "timing/clean.rs");
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn hot_path_string_alloc_fires_in_parser_loops_only() {
    let hot = lint_as("crates/parsers/src/fixture.rs", "hot_alloc/violation.rs");
    assert_eq!(lint_names(&hot), vec!["hot-path-string-alloc"], "{hot:?}");
    assert_eq!(hot[0].severity, Severity::Warn);

    let driver = lint_as("crates/core/src/parallel.rs", "hot_alloc/violation.rs");
    assert_eq!(
        lint_names(&driver),
        vec!["hot-path-string-alloc"],
        "{driver:?}"
    );

    for exempt_rel in [
        "crates/eval/src/fixture.rs",        // not a hot-path scope
        "crates/core/src/record.rs",         // core outside the driver
        "crates/parsers/benches/fixture.rs", // benches allocate freely
    ] {
        let out = lint_as(exempt_rel, "hot_alloc/violation.rs");
        assert!(out.is_empty(), "{exempt_rel}: {out:?}");
    }

    let clean = lint_as("crates/parsers/src/fixture.rs", "hot_alloc/clean.rs");
    assert!(clean.is_empty(), "post-loop rendering is fine: {clean:?}");
    let blessed = lint_as("crates/parsers/src/fixture.rs", "hot_alloc/blessed.rs");
    assert!(blessed.is_empty(), "pragma suppresses: {blessed:?}");
}

#[test]
fn lock_order_cycle_fires_across_files_with_witness() {
    let out = lint_many(&[
        ("crates/obs/src/fixture.rs", "lock_order/violation_a.rs"),
        ("crates/store/src/fixture.rs", "lock_order/violation_b.rs"),
    ]);
    assert_eq!(lint_names(&out), vec!["lock-order-cycle"], "{out:?}");
    assert_eq!(out[0].severity, Severity::Warn);
    let m = &out[0].message;
    assert!(m.contains("lock-order cycle"), "{m}");
    assert!(m.contains("`REG`") && m.contains("`JOURNAL`"), "{m}");
    // The witness path must cross files: the forward edge calls into
    // the other fixture and names both acquisition sites.
    assert!(
        m.contains("calls `take_journal` (crates/obs/src/fixture.rs:"),
        "{m}"
    );
    assert!(m.contains("crates/store/src/fixture.rs:"), "{m}");
}

#[test]
fn lock_order_consistent_twin_and_blessed_twin_are_clean() {
    let clean = lint_many(&[
        ("crates/obs/src/fixture.rs", "lock_order/clean_a.rs"),
        ("crates/store/src/fixture.rs", "lock_order/clean_b.rs"),
    ]);
    assert!(clean.is_empty(), "consistent order: {clean:?}");

    let blessed = lint_many(&[
        ("crates/obs/src/fixture.rs", "lock_order/blessed_a.rs"),
        ("crates/store/src/fixture.rs", "lock_order/blessed_b.rs"),
    ]);
    assert!(blessed.is_empty(), "pragma on the hold site: {blessed:?}");
}

#[test]
fn durability_discipline_fires_on_unsynced_rename() {
    let out = lint_as("crates/store/src/fixture.rs", "durability/violation.rs");
    assert_eq!(lint_names(&out), vec!["durability-discipline"], "{out:?}");
    assert_eq!(out[0].severity, Severity::Error);
    assert!(out[0].message.contains("sync_all"), "{}", out[0].message);
    assert!(out[0].message.contains("sync_dir"), "{}", out[0].message);
    assert!(
        out[0].message.contains("docs/DURABILITY.md"),
        "{}",
        out[0].message
    );

    // Same bytes outside the persistence crates: out of scope.
    let cold = lint_as("crates/parsers/src/fixture.rs", "durability/violation.rs");
    assert!(cold.is_empty(), "{cold:?}");
}

#[test]
fn durability_discipline_proves_the_cross_file_path_to_rename() {
    let out = lint_many(&[
        (
            "crates/jobs/src/fixture.rs",
            "durability/violation_caller.rs",
        ),
        ("crates/store/src/seal.rs", "durability/seal.rs"),
    ]);
    assert_eq!(lint_names(&out), vec!["durability-discipline"], "{out:?}");
    let m = &out[0].message;
    assert_eq!(out[0].rel, "crates/jobs/src/fixture.rs");
    assert!(m.contains("creates directories"), "{m}");
    assert!(
        m.contains("`seal` (crates/jobs/src/fixture.rs:"),
        "witness must show the call hop: {m}"
    );
    assert!(
        m.contains("crates/store/src/seal.rs:"),
        "witness must name the rename site: {m}"
    );
}

#[test]
fn durability_clean_and_blessed_twins_are_silent() {
    let clean = lint_as("crates/store/src/fixture.rs", "durability/clean.rs");
    assert!(clean.is_empty(), "{clean:?}");
    let blessed = lint_as("crates/store/src/fixture.rs", "durability/blessed.rs");
    assert!(blessed.is_empty(), "flush-tier pragma: {blessed:?}");
}

#[test]
fn thread_leak_fires_on_dropped_handles_and_respects_pragma() {
    let out = lint_as("crates/obs/src/fixture.rs", "thread_leak/violation.rs");
    assert_eq!(
        lint_names(&out),
        vec!["thread-leak", "thread-leak"],
        "{out:?}"
    );
    assert!(out[0].message.contains("discarded"), "{}", out[0].message);
    assert!(out[1].message.contains("`handle`"), "{}", out[1].message);

    let clean = lint_as("crates/obs/src/fixture.rs", "thread_leak/clean.rs");
    assert!(clean.is_empty(), "{clean:?}");
    let blessed = lint_as("crates/obs/src/fixture.rs", "thread_leak/blessed.rs");
    assert!(blessed.is_empty(), "detach pragma: {blessed:?}");

    // Binaries manage their own lifetimes; the lint is library-scoped.
    let bin = lint_as("crates/cli/src/bin/fixture.rs", "thread_leak/violation.rs");
    assert!(bin.is_empty(), "{bin:?}");
}

#[test]
fn bad_pragmas_are_reported_and_never_suppressible() {
    let out = lint_as("crates/eval/src/fixture.rs", "pragmas/violation.rs");
    assert_eq!(
        lint_names(&out),
        vec!["bad-pragma", "bad-pragma"],
        "{out:?}"
    );
    assert!(out.iter().all(|f| f.severity == Severity::Error));

    let clean = lint_as("crates/eval/src/fixture.rs", "pragmas/clean.rs");
    assert!(clean.is_empty(), "{clean:?}");
}
