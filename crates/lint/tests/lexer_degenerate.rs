//! Degenerate-token-stream regressions for the surface lexer.
//!
//! The lexer's contract is structural, not semantic: for **any** input
//! — truncated raw strings, absurd hash counts, unbalanced nested
//! block comments — it must terminate, and the masked view must keep
//! the exact byte length and newline positions of the input (every
//! downstream line/offset computation depends on that alignment).
//! The corpus below is fuzz-ish by construction: each entry is a
//! minimal degenerate stream that once hung, or plausibly could hang,
//! a byte-oriented scanner.

use logparse_lint::lexer::lex;

/// The invariants every input must satisfy, however broken.
fn check_invariants(input: &str) {
    let lexed = lex(input);
    assert_eq!(
        lexed.masked.len(),
        input.len(),
        "masked view must keep byte length: {input:?}"
    );
    let in_newlines: Vec<usize> = input
        .bytes()
        .enumerate()
        .filter(|(_, b)| *b == b'\n')
        .map(|(i, _)| i)
        .collect();
    let out_newlines: Vec<usize> = lexed
        .masked
        .bytes()
        .enumerate()
        .filter(|(_, b)| *b == b'\n')
        .map(|(i, _)| i)
        .collect();
    assert_eq!(
        in_newlines, out_newlines,
        "newline offsets must survive masking: {input:?}"
    );
}

#[test]
fn degenerate_streams_terminate_with_invariants_intact() {
    let corpus = [
        // Raw-string openers cut off at every interesting point.
        "r#\"",
        "r#\"unterminated to EOF",
        "r#\"almost closed\"",
        "r###\"needs three\"##",
        "br##\"byte raw, short close\"#",
        "r\"",
        "br\"",
        // Hash runs with no string at all.
        "r#####",
        "let x = r###;",
        // Plain/byte strings and chars cut at EOF.
        "\"unterminated",
        "b\"",
        "\"ends in backslash\\",
        "'",
        "b'",
        "'\\",
        // Block comments: unterminated, nested-unterminated, trailing
        // close with no open.
        "/*",
        "/* /* nested, never closed",
        "/* */ */",
        "/* \n * multi\n * line\n",
        // Pathological but terminating mixtures.
        "r#\"a\"# r#\"b\"# r#\"",
        "fn f() { let s = \"x\"; } /* tail",
        "// line comment with r#\" inside",
        "b db rb r b\"\" r\"\"",
    ];
    for input in corpus {
        check_invariants(input);
    }
    // The same streams embedded mid-file, with code on both sides, so
    // truncation interacts with earlier state.
    for input in corpus {
        let embedded = format!("fn before() {{}}\nstatic S: u8 = 0;\n{input}");
        check_invariants(&embedded);
    }
}

#[test]
fn deeply_nested_block_comments_terminate() {
    let mut input = String::new();
    for _ in 0..200 {
        input.push_str("/* ");
    }
    input.push_str("core");
    for _ in 0..199 {
        // One close short: still unbalanced at EOF.
        input.push_str(" */");
    }
    check_invariants(&input);
    let lexed = lex(&input);
    assert!(
        !lexed.masked.contains("core"),
        "unbalanced comment interior must stay masked"
    );
}

#[test]
fn raw_string_hash_counts_bind_exactly() {
    // An inner `"#` must not close an `r##` string.
    let lexed = lex("let s = r##\"has \"# inside\"##;");
    assert_eq!(lexed.strings.len(), 1);
    assert_eq!(lexed.strings[0].content, "has \"# inside");

    // Extra hashes after the real close are ordinary code bytes.
    let lexed = lex("let s = r#\"x\"##;");
    assert_eq!(lexed.strings.len(), 1);
    assert_eq!(lexed.strings[0].content, "x");
    assert!(
        lexed.masked.ends_with("#;"),
        "trailing hash stays code: {:?}",
        lexed.masked
    );

    // 100 hashes on both sides round-trip.
    let hashes = "#".repeat(100);
    let input = format!("r{hashes}\"payload\"{hashes}");
    check_invariants(&input);
    let lexed = lex(&input);
    assert_eq!(lexed.strings.len(), 1);
    assert_eq!(lexed.strings[0].content, "payload");
}

#[test]
fn raw_strings_hide_comment_markers_and_vice_versa() {
    let lexed = lex("let s = r\"// not a comment /* either\";");
    assert!(lexed.comments.is_empty(), "{:?}", lexed.comments);
    assert_eq!(lexed.strings.len(), 1);

    let lexed = lex("// r#\" opener inside a comment\nlet x = 1;");
    assert!(lexed.strings.is_empty(), "{:?}", lexed.strings);
    assert_eq!(lexed.comments.len(), 1);

    // `writer"..."`: the identifier's trailing `r` must not open a raw
    // string; the quote opens a plain one.
    let lexed = lex("writer\"s\"");
    assert_eq!(lexed.strings.len(), 1);
    assert!(lexed.masked.starts_with("writer\""), "{:?}", lexed.masked);
}

#[test]
fn unterminated_raw_string_still_records_the_literal() {
    // Regression: an unterminated raw string once re-lexed its opener
    // forever; it must consume to EOF and still emit the side-table
    // entry so pragma/first-argument analyses see the literal.
    let lexed = lex("let s = r#\"tail with\nnewline");
    assert_eq!(lexed.strings.len(), 1);
    assert_eq!(lexed.strings[0].content, "tail with\nnewline");
    assert_eq!(lexed.strings[0].line, 1);
}
