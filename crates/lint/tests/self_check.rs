//! The committed tree is the linter's largest fixture: the whole
//! workspace must stay clean under the strictest policy the check gate
//! applies (`--deny warnings`), so `cargo test` alone catches a
//! regression even when `scripts/check.sh` is skipped.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = logparse_lint::run_workspace(&root).expect("walk workspace");
    assert!(
        !logparse_lint::is_fatal(&findings, true),
        "workspace must stay lint-clean \
         (reproduce with `cargo run -p logparse-lint -- --workspace --deny warnings`):\n{}",
        logparse_lint::report::human(&findings, true),
    );
}
