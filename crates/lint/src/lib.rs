//! `logparse-lint` — a zero-dependency static analyzer for this
//! workspace's project invariants.
//!
//! `cargo clippy` checks Rust; this crate checks *this repository*: the
//! contracts the streaming pipeline, the parallel driver and the obs
//! layer rely on but no compiler knows about. It is built — like the
//! workspace's vendored `rand`/`proptest`/`criterion` shims — entirely
//! on `std`: a hand-rolled surface lexer ([`lexer`]) produces a masked
//! code view per file, line-oriented lints walk it, and a flow layer
//! ([`flow`] → [`callgraph`]) lifts it to a workspace call graph for
//! the inter-procedural lints.
//!
//! # Lint catalog
//!
//! | lint | severity | invariant |
//! |------|----------|-----------|
//! | `panic-freedom` | error (index sub-check: warn) | no `unwrap`/`expect`/`panic!`/literal index in hot-path crates |
//! | `unsafe-allowlist` | error | `unsafe` only in `ingest/src/signal.rs`; crate roots forbid `unsafe_code` |
//! | `lock-channel-hold` | warning | no blocking send/recv/I-O while a lock guard is live |
//! | `obs-metric-hygiene` | error | metric families: literal names, one owner site, documented in DESIGN.md |
//! | `timing-discipline` | warning | `Instant::now()` only inside the obs/criterion substrates |
//! | `hot-path-string-alloc` | warning | no `to_string`/`String::from`/`format!` in loop bodies of `parsers`/the parallel driver |
//! | `lock-order-cycle` | warning | no lock-order cycles across the workspace call graph (potential deadlock) |
//! | `durability-discipline` | error | create/write→rename publish paths fsync file *and* directory, or name their flush tier |
//! | `thread-leak` | warning | every spawned thread's handle is joined or carries a reasoned detach pragma |
//! | `bad-pragma` | error | suppressions must name a known lint and carry a reason |
//!
//! # Suppression
//!
//! A finding is suppressed by a comment pragma on the same line, the
//! line above, or (for lock findings) the guard's acquisition line:
//!
//! ```text
//! // lint:allow(timing-discipline): feeds ingest_parse_duration_seconds directly
//! let parse_started = Instant::now();
//! ```
//!
//! `lint:allow-file(<name>): <reason>` covers a whole file. The reason
//! is mandatory; `bad-pragma` polices the pragmas themselves.
//!
//! # Usage
//!
//! ```text
//! cargo run -p logparse-lint -- --workspace --deny warnings
//! ```
//!
//! Exit code 0 when clean, 1 on findings at error level (warnings are
//! promoted under `--deny warnings`), 2 on usage or I/O errors. This is
//! a stage of `scripts/check.sh`; the committed tree stays clean.
//! `--stats` prints phase timings and cache effectiveness (per-file
//! analyses are cached under `target/lint-cache`, keyed by content
//! hash); `--sarif <path>` additionally writes a SARIF 2.1.0 report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod cache;
pub mod callgraph;
pub mod flow;
pub mod lexer;
pub mod lints;
pub mod report;
pub mod source;
pub mod workspace;

use analysis::FileAnalysis;
use lints::{Finding, Severity};
use std::path::Path;

/// Phase timings and cache counters reported by `--stats`.
#[derive(Debug, Default, Clone)]
pub struct Stats {
    /// Source files analyzed.
    pub files: usize,
    /// Files served from the incremental cache.
    pub cache_hits: usize,
    /// Files analyzed from scratch (and written back to the cache).
    pub cache_misses: usize,
    /// Functions in the workspace symbol table.
    pub functions: usize,
    /// Call sites resolved to a workspace function.
    pub resolved_calls: usize,
    /// Call sites in the explicit unresolved bucket.
    pub unresolved_calls: usize,
    /// Milliseconds spent lexing + line-local linting (or cache reads).
    pub analyze_ms: u128,
    /// Milliseconds spent on graph construction + workspace passes.
    pub graph_ms: u128,
    /// End-to-end milliseconds.
    pub total_ms: u128,
}

/// Monotonic clock for `--stats` phase timing.
fn phase_clock() -> std::time::Instant {
    // lint:allow(timing-discipline): times the analyzer's own phases for --stats, not pipeline code
    std::time::Instant::now()
}

/// Lints already-loaded sources. `files` are `(relative_path, text)`
/// pairs; `design` is DESIGN.md's `(relative_path, text)` when present.
/// Returns pragma-filtered findings sorted by path, line, lint.
pub fn run_files(files: &[(String, String)], design: Option<(&str, &str)>) -> Vec<Finding> {
    let analyses: Vec<FileAnalysis> = files
        .iter()
        .map(|(rel, text)| analysis::analyze(rel, text))
        .collect();
    let graph = callgraph::build(&analyses);
    finish(&analyses, &graph, design)
}

/// The workspace passes over per-file analyses: crate-root checks, the
/// metric cross-check, the call-graph lints, pragma suppression and
/// ordering.
pub fn finish(
    analyses: &[FileAnalysis],
    graph: &callgraph::Graph,
    design: Option<(&str, &str)>,
) -> Vec<Finding> {
    let rels: Vec<String> = analyses.iter().map(|a| a.rel.clone()).collect();
    let roots = workspace::crate_roots(&rels);

    let mut findings = Vec::new();
    for a in analyses {
        findings.extend(a.findings.iter().cloned());
        if roots.contains(&a.rel) {
            findings.extend(a.root_findings.iter().cloned());
        }
    }
    let sites: Vec<(&str, &[lints::metric_hygiene::MetricSite])> = analyses
        .iter()
        .map(|a| (a.rel.as_str(), a.metric_sites.as_slice()))
        .collect();
    findings.extend(lints::metric_hygiene::cross_check_all(&sites, design));
    findings.extend(lints::lock_order::check(analyses, graph));
    findings.extend(lints::durability::check(analyses, graph));

    // Pragma suppression: a finding survives unless the file that
    // contains it carries a matching allow. `bad-pragma` findings are
    // never suppressible — the mechanism cannot excuse itself.
    findings.retain(|f| {
        if f.lint == "bad-pragma" {
            return true;
        }
        match analyses.iter().find(|a| a.rel == f.rel) {
            Some(a) => !a.suppressed(f.lint, f.line, &f.also_allow_at),
            None => true,
        }
    });
    findings
        .sort_by(|a, b| (a.rel.as_str(), a.line, a.lint).cmp(&(b.rel.as_str(), b.line, b.lint)));
    findings
}

/// Walks the workspace at `root` and lints every source file.
pub fn run_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    run_workspace_stats(root, None).map(|(f, _)| f)
}

/// [`run_workspace`], with per-file results served from (and written
/// back to) the incremental cache at `cache_dir` when given, plus phase
/// timings.
pub fn run_workspace_stats(
    root: &Path,
    cache_dir: Option<&Path>,
) -> std::io::Result<(Vec<Finding>, Stats)> {
    let t_total = phase_clock();
    let files = workspace::collect(root)?;
    let design_text = std::fs::read_to_string(root.join("DESIGN.md")).ok();
    let design = design_text.as_deref().map(|t| ("DESIGN.md", t));

    let t_analyze = phase_clock();
    let mut stats = Stats {
        files: files.len(),
        ..Stats::default()
    };
    let mut analyses = Vec::with_capacity(files.len());
    for (rel, text) in &files {
        match cache_dir.and_then(|d| cache::load(d, rel, text)) {
            Some(a) => {
                stats.cache_hits += 1;
                analyses.push(a);
            }
            None => {
                let a = analysis::analyze(rel, text);
                if let Some(d) = cache_dir {
                    cache::save(d, rel, text, &a);
                }
                stats.cache_misses += 1;
                analyses.push(a);
            }
        }
    }
    stats.analyze_ms = t_analyze.elapsed().as_millis();

    let t_graph = phase_clock();
    let graph = callgraph::build(&analyses);
    stats.functions = analyses.iter().map(|a| a.flow.len()).sum();
    stats.resolved_calls = graph.resolved;
    stats.unresolved_calls = graph.unresolved;
    let findings = finish(&analyses, &graph, design);
    stats.graph_ms = t_graph.elapsed().as_millis();
    stats.total_ms = t_total.elapsed().as_millis();
    Ok((findings, stats))
}

/// True when `findings` requires a non-zero exit under the given
/// severity policy.
pub fn is_fatal(findings: &[Finding], deny_warnings: bool) -> bool {
    findings
        .iter()
        .any(|f| f.severity == Severity::Error || deny_warnings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pragma_suppresses_and_bad_pragma_survives() {
        let files = vec![(
            "crates/ingest/src/x.rs".to_string(),
            "// lint:allow(panic-freedom): invariant documented here\n\
             fn f(v: &[u32]) -> u32 { v.first().copied().unwrap() }\n\
             // lint:allow(panic-freedom)\n\
             fn g() {}\n"
                .to_string(),
        )];
        let out = run_files(&files, None);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].lint, "bad-pragma");
    }

    #[test]
    fn fatality_policy() {
        let warn = vec![Finding {
            lint: "timing-discipline",
            severity: Severity::Warn,
            rel: "x".into(),
            line: 1,
            message: String::new(),
            also_allow_at: Vec::new(),
        }];
        assert!(!is_fatal(&warn, false));
        assert!(is_fatal(&warn, true));
        assert!(!is_fatal(&[], true));
    }

    #[test]
    fn graph_lints_run_through_run_files() {
        let files = vec![(
            "crates/store/src/x.rs".to_string(),
            "pub fn publish(p: &Path) -> io::Result<()> {\n    \
             let mut f = File::create(&tmp)?;\n    f.write_all(b\"x\")?;\n    \
             fs::rename(&tmp, p)\n}\n"
                .to_string(),
        )];
        let out = run_files(&files, None);
        assert!(
            out.iter().any(|f| f.lint == "durability-discipline"),
            "{out:?}"
        );
    }
}
