//! `logparse-lint` — a zero-dependency static analyzer for this
//! workspace's project invariants.
//!
//! `cargo clippy` checks Rust; this crate checks *this repository*: the
//! contracts the streaming pipeline, the parallel driver and the obs
//! layer rely on but no compiler knows about. It is built — like the
//! workspace's vendored `rand`/`proptest`/`criterion` shims — entirely
//! on `std`: a hand-rolled surface lexer ([`lexer`]) produces a masked
//! code view per file, and line-oriented lints walk it.
//!
//! # Lint catalog
//!
//! | lint | severity | invariant |
//! |------|----------|-----------|
//! | `panic-freedom` | error (index sub-check: warn) | no `unwrap`/`expect`/`panic!`/literal index in hot-path crates |
//! | `unsafe-allowlist` | error | `unsafe` only in `ingest/src/signal.rs`; crate roots forbid `unsafe_code` |
//! | `lock-channel-hold` | warning | no blocking send/recv/I-O while a lock guard is live |
//! | `obs-metric-hygiene` | error | metric families: literal names, one owner site, documented in DESIGN.md |
//! | `timing-discipline` | warning | `Instant::now()` only inside the obs/criterion substrates |
//! | `hot-path-string-alloc` | warning | no `to_string`/`String::from`/`format!` in loop bodies of `parsers`/the parallel driver |
//! | `bad-pragma` | error | suppressions must name a known lint and carry a reason |
//!
//! # Suppression
//!
//! A finding is suppressed by a comment pragma on the same line, the
//! line above, or (for lock findings) the guard's acquisition line:
//!
//! ```text
//! // lint:allow(timing-discipline): feeds ingest_parse_duration_seconds directly
//! let parse_started = Instant::now();
//! ```
//!
//! `lint:allow-file(<name>): <reason>` covers a whole file. The reason
//! is mandatory; `bad-pragma` polices the pragmas themselves.
//!
//! # Usage
//!
//! ```text
//! cargo run -p logparse-lint -- --workspace --deny warnings
//! ```
//!
//! Exit code 0 when clean, 1 on findings at error level (warnings are
//! promoted under `--deny warnings`), 2 on usage or I/O errors. This is
//! a stage of `scripts/check.sh`; the committed tree stays clean.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod lints;
pub mod report;
pub mod source;
pub mod workspace;

use lints::{Finding, Severity};
use source::SourceFile;
use std::path::Path;

/// Lints already-loaded sources. `files` are `(relative_path, text)`
/// pairs; `design` is DESIGN.md's `(relative_path, text)` when present.
/// Returns pragma-filtered findings sorted by path, line, lint.
pub fn run_files(files: &[(String, String)], design: Option<(&str, &str)>) -> Vec<Finding> {
    let sources: Vec<SourceFile> = files
        .iter()
        .map(|(rel, text)| SourceFile::new(rel, text))
        .collect();
    let rels: Vec<String> = sources.iter().map(|s| s.rel.clone()).collect();
    let roots = workspace::crate_roots(&rels);

    let mut findings = Vec::new();
    for file in &sources {
        findings.extend(lints::panic_freedom::check(file));
        findings.extend(lints::unsafe_allowlist::check(file));
        findings.extend(lints::lock_hold::check(file));
        findings.extend(lints::timing::check(file));
        findings.extend(lints::hot_alloc::check(file));
        findings.extend(lints::pragmas::check(file));
        if roots.contains(&file.rel) {
            findings.extend(lints::unsafe_allowlist::check_crate_root(file));
        }
    }
    findings.extend(lints::metric_hygiene::check(&sources, design));

    // Pragma suppression: a finding survives unless the file that
    // contains it carries a matching allow. `bad-pragma` findings are
    // never suppressible — the mechanism cannot excuse itself.
    findings.retain(|f| {
        if f.lint == "bad-pragma" {
            return true;
        }
        match sources.iter().find(|s| s.rel == f.rel) {
            Some(file) => !file.suppressed(f.lint, f.line, &f.also_allow_at),
            None => true,
        }
    });
    findings
        .sort_by(|a, b| (a.rel.as_str(), a.line, a.lint).cmp(&(b.rel.as_str(), b.line, b.lint)));
    findings
}

/// Walks the workspace at `root` and lints every source file.
pub fn run_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let files = workspace::collect(root)?;
    let design_text = std::fs::read_to_string(root.join("DESIGN.md")).ok();
    Ok(run_files(
        &files,
        design_text.as_deref().map(|t| ("DESIGN.md", t)),
    ))
}

/// True when `findings` requires a non-zero exit under the given
/// severity policy.
pub fn is_fatal(findings: &[Finding], deny_warnings: bool) -> bool {
    findings
        .iter()
        .any(|f| f.severity == Severity::Error || deny_warnings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pragma_suppresses_and_bad_pragma_survives() {
        let files = vec![(
            "crates/ingest/src/x.rs".to_string(),
            "// lint:allow(panic-freedom): invariant documented here\n\
             fn f(v: &[u32]) -> u32 { v.first().copied().unwrap() }\n\
             // lint:allow(panic-freedom)\n\
             fn g() {}\n"
                .to_string(),
        )];
        let out = run_files(&files, None);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].lint, "bad-pragma");
    }

    #[test]
    fn fatality_policy() {
        let warn = vec![Finding {
            lint: "timing-discipline",
            severity: Severity::Warn,
            rel: "x".into(),
            line: 1,
            message: String::new(),
            also_allow_at: Vec::new(),
        }];
        assert!(!is_fatal(&warn, false));
        assert!(is_fatal(&warn, true));
        assert!(!is_fatal(&[], true));
    }
}
