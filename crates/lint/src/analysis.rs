//! Per-file analysis results: everything the workspace passes need from
//! one file, detached from its text.
//!
//! [`analyze`] lexes a file once and runs every *line-local* lint plus
//! the flow extraction ([`crate::flow`]). The resulting
//! [`FileAnalysis`] is self-contained — findings, metric sites, pragma
//! coverage, and function summaries, but no source text — which is what
//! makes the incremental cache ([`crate::cache`]) possible: a warm run
//! deserializes `FileAnalysis` values and goes straight to the
//! workspace passes (call graph, lock graph, durability, metric
//! cross-check, suppression).

use crate::flow::{self, FnFlow};
use crate::lints::{self, metric_hygiene::MetricSite, Finding};
use crate::source::{Role, SourceFile};

/// One suppression pragma, reduced to what the finish pass needs.
#[derive(Debug, Clone)]
pub struct PragmaInfo {
    /// Lint name the pragma allows.
    pub lint: String,
    /// Whether this is the `allow-file` form.
    pub file_scoped: bool,
    /// Whether the pragma carries a non-empty reason (only valid
    /// pragmas suppress).
    pub valid: bool,
    /// The lines a line-scoped pragma covers: its own line and the next
    /// code line.
    pub covered: Vec<u32>,
}

/// The cacheable analysis of one source file.
#[derive(Debug)]
pub struct FileAnalysis {
    /// Workspace-relative path, forward slashes.
    pub rel: String,
    /// Owning crate name.
    pub crate_name: String,
    /// Target kind.
    pub role: Role,
    /// Raw (pre-suppression) findings of every line-local lint.
    pub findings: Vec<Finding>,
    /// Crate-root findings, applied only when this file turns out to be
    /// a crate root in the analyzed set.
    pub root_findings: Vec<Finding>,
    /// Literal-named metric/series call sites for the workspace
    /// cross-check.
    pub metric_sites: Vec<MetricSite>,
    /// Suppression pragmas with precomputed coverage.
    pub pragmas: Vec<PragmaInfo>,
    /// Flow summaries of every non-test function.
    pub flow: Vec<FnFlow>,
}

impl FileAnalysis {
    /// Whether a finding of `lint` at `line` is suppressed by one of
    /// this file's pragmas (mirrors
    /// [`SourceFile::suppressed`](crate::source::SourceFile::suppressed)).
    pub fn suppressed(&self, lint: &str, line: u32, extras: &[u32]) -> bool {
        self.pragmas.iter().any(|p| {
            p.lint == lint
                && p.valid
                && (p.file_scoped
                    || p.covered.contains(&line)
                    || extras.iter().any(|e| p.covered.contains(e)))
        })
    }
}

/// Analyzes one file: lex, classify, run the line-local lints, extract
/// flow summaries.
pub fn analyze(rel: &str, text: &str) -> FileAnalysis {
    let file = SourceFile::new(rel, text);
    let flow = flow::extract(&file);

    let mut findings = Vec::new();
    findings.extend(lints::panic_freedom::check(&file));
    findings.extend(lints::unsafe_allowlist::check(&file));
    findings.extend(lints::lock_hold::check(&file));
    findings.extend(lints::timing::check(&file));
    findings.extend(lints::hot_alloc::check(&file));
    findings.extend(lints::pragmas::check(&file));
    findings.extend(lints::thread_leak::check(&file, &flow));
    let (metric_sites, metric_findings) = lints::metric_hygiene::extract(&file);
    findings.extend(metric_findings);

    let root_findings = lints::unsafe_allowlist::check_crate_root(&file);

    let pragmas = file
        .pragmas
        .iter()
        .map(|p| {
            let mut covered = vec![p.line];
            if let Some(n) = (p.line + 1..=file.line_count() as u32)
                .find(|&m| !file.masked_line(m).trim().is_empty())
            {
                covered.push(n);
            }
            PragmaInfo {
                lint: p.lint.clone(),
                file_scoped: p.file_scoped,
                valid: !p.reason.trim().is_empty(),
                covered,
            }
        })
        .collect();

    FileAnalysis {
        rel: file.rel,
        crate_name: file.crate_name,
        role: file.role,
        findings,
        root_findings,
        metric_sites,
        pragmas,
        flow,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pragma_coverage_spans_own_and_next_code_line() {
        let a = analyze(
            "crates/ingest/src/x.rs",
            "// lint:allow(panic-freedom): documented invariant\n\n\
             fn f(v: &[u32]) -> u32 { v[0] }\n",
        );
        assert_eq!(a.pragmas.len(), 1);
        assert_eq!(a.pragmas[0].covered, vec![1, 3]);
        assert!(a.pragmas[0].valid);
        assert!(a.suppressed("panic-freedom", 3, &[]));
        assert!(!a.suppressed("panic-freedom", 4, &[]));
        assert!(a.suppressed("panic-freedom", 99, &[3]), "extras route");
    }

    #[test]
    fn line_local_lints_and_flow_both_land() {
        let a = analyze(
            "crates/store/src/x.rs",
            "pub fn f(v: &[u32]) -> u32 {\n    helper();\n    v.first().copied().unwrap()\n}\n",
        );
        assert!(
            a.findings.iter().any(|f| f.lint == "panic-freedom"),
            "{a:?}"
        );
        assert_eq!(a.flow.len(), 1);
        assert!(a.flow[0].calls.iter().any(|c| c.callee == "helper"));
        assert_eq!(a.crate_name, "store");
        assert_eq!(a.role, Role::Lib);
    }
}
