//! Workspace call-graph construction over [`crate::flow`] summaries.
//!
//! Resolution is by **name plus receiver heuristics**, never by types:
//!
//! * `Type::name(…)` resolves when exactly one workspace function named
//!   `name` is owned by an `impl Type`;
//! * `Self::name(…)` and `self.name(…)` prefer a function with the
//!   caller's own `impl` owner;
//! * `module::name(…)` (lowercase qualifier) and method calls resolve
//!   when the bare name is unique across the workspace;
//! * bare `name(…)` prefers a unique match in the same file, then a
//!   unique match workspace-wide.
//!
//! Anything else — std/vendored callees, ambiguous names — lands in the
//! **unresolved bucket**, which is counted and surfaced via `--stats`
//! so the graph lints stay sound-by-report: the analysis never guesses
//! an edge, and it tells you how much of the call surface it covered.

use crate::analysis::FileAnalysis;
use std::collections::HashMap;

/// Ubiquitous `std` method/function names. A workspace function may
/// share one of these names, but a call through the *unique-name
/// fallback* (`x.push(…)`, bare `drop(…)`) is overwhelmingly a `std`
/// call — resolving it would fabricate edges (e.g. `Vec::push` landing
/// on some unrelated `fn push`). Such calls only resolve through the
/// precise rules: `Type::name` owner match or `self.name` same-owner
/// match.
const STD_NAMES: &[&str] = &[
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "collect",
    "clone",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "new",
    "default",
    "from",
    "into",
    "parse",
    "write",
    "read",
    "flush",
    "drain",
    "extend",
    "take",
    "replace",
    "min",
    "max",
    "contains",
    "sort",
    "sort_by",
    "clear",
    "append",
    "join",
    "split",
    "find",
    "position",
    "map",
    "filter",
    "fold",
    "count",
    "last",
    "first",
    "entry",
    "or_insert",
    "unwrap_or",
    "to_string",
    "as_str",
    "as_ref",
    "send",
    "recv",
    "spawn",
    "lock",
    "drop",
    "retain",
    "rev",
    "trim",
    "starts_with",
    "ends_with",
];

/// A function's position: `(file index, fn index)` into the analyses.
pub type FnRef = (usize, usize);

/// The resolved workspace call graph.
pub struct Graph {
    /// For each file, for each fn: `(call index, resolved callee)`.
    pub edges: HashMap<FnRef, Vec<(usize, FnRef)>>,
    /// Call sites resolved to a workspace function.
    pub resolved: usize,
    /// Call sites left unresolved (external, macro-generated, or
    /// ambiguous names).
    pub unresolved: usize,
}

impl Graph {
    /// Resolved callees of `f` (with the originating call index).
    pub fn callees(&self, f: FnRef) -> &[(usize, FnRef)] {
        self.edges.get(&f).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Builds the call graph over every analyzed file.
pub fn build(analyses: &[FileAnalysis]) -> Graph {
    // name -> every (FnRef, owner) defining it.
    let mut index: HashMap<&str, Vec<(FnRef, &str)>> = HashMap::new();
    for (fi, a) in analyses.iter().enumerate() {
        for (fj, f) in a.flow.iter().enumerate() {
            index
                .entry(f.name.as_str())
                .or_default()
                .push(((fi, fj), f.owner.as_str()));
        }
    }

    let mut edges: HashMap<FnRef, Vec<(usize, FnRef)>> = HashMap::new();
    let mut resolved = 0usize;
    let mut unresolved = 0usize;
    for (fi, a) in analyses.iter().enumerate() {
        for (fj, f) in a.flow.iter().enumerate() {
            for (ci, call) in f.calls.iter().enumerate() {
                let target = resolve(&index, fi, f.owner.as_str(), call);
                match target {
                    Some(t) => {
                        resolved += 1;
                        edges.entry((fi, fj)).or_default().push((ci, t));
                    }
                    None => unresolved += 1,
                }
            }
        }
    }
    Graph {
        edges,
        resolved,
        unresolved,
    }
}

fn resolve(
    index: &HashMap<&str, Vec<(FnRef, &str)>>,
    file: usize,
    caller_owner: &str,
    call: &crate::flow::CallSite,
) -> Option<FnRef> {
    let candidates = index.get(call.callee.as_str())?;
    let std_name = STD_NAMES.contains(&call.callee.as_str());
    let unique = |cands: Vec<&(FnRef, &str)>| -> Option<FnRef> {
        match cands.as_slice() {
            [one] => Some(one.0),
            _ => None,
        }
    };
    let fallback = |cands: Vec<&(FnRef, &str)>| -> Option<FnRef> {
        if std_name {
            None
        } else {
            unique(cands)
        }
    };
    match call.qual.as_str() {
        // `Type::name` — by owner.
        q if !q.is_empty() && q != "." && q != "Self" && q.starts_with(char::is_uppercase) => {
            unique(candidates.iter().filter(|(_, o)| *o == q).collect())
        }
        // `Self::name` / `self.name` — prefer the caller's own impl.
        "Self" => unique(
            candidates
                .iter()
                .filter(|(r, o)| r.0 == file && *o == caller_owner)
                .collect(),
        ),
        "." if call.self_recv => unique(
            candidates
                .iter()
                .filter(|(r, o)| r.0 == file && *o == caller_owner)
                .collect(),
        )
        .or_else(|| fallback(candidates.iter().collect())),
        // Plain method call or `module::name` — unique name only.
        "." => fallback(candidates.iter().collect()),
        q if !q.is_empty() => fallback(candidates.iter().collect()),
        // Bare call — same file first, then workspace-unique.
        _ => fallback(candidates.iter().filter(|(r, _)| r.0 == file).collect())
            .or_else(|| fallback(candidates.iter().collect())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;

    fn graph(files: &[(&str, &str)]) -> (Vec<FileAnalysis>, Graph) {
        let analyses: Vec<FileAnalysis> =
            files.iter().map(|(rel, text)| analyze(rel, text)).collect();
        let g = build(&analyses);
        (analyses, g)
    }

    #[test]
    fn resolves_bare_method_and_type_qualified_calls() {
        let (a, g) = graph(&[
            (
                "crates/store/src/a.rs",
                "pub fn entry(s: &Store) {\n    helper();\n    s.step();\n    Store::open(s);\n    \
                 external_thing();\n}\nfn helper() {}\n",
            ),
            (
                "crates/store/src/b.rs",
                "impl Store {\n    pub fn open(_: &Store) {}\n    pub fn step(&self) {}\n}\n",
            ),
        ]);
        let entry = (0usize, 0usize);
        let callees: Vec<(usize, usize)> = g.callees(entry).iter().map(|&(_, t)| t).collect();
        // helper (same file), step (unique method), open (Type::).
        assert_eq!(callees.len(), 3, "{callees:?} in {:?}", a[0].flow[0].calls);
        assert!(callees.contains(&(0, 1)), "helper");
        assert!(callees.contains(&(1, 0)), "open");
        assert!(callees.contains(&(1, 1)), "step");
        assert_eq!(g.resolved, 3);
        assert!(g.unresolved >= 1, "external_thing stays unresolved");
    }

    #[test]
    fn ambiguous_names_stay_unresolved() {
        let (_, g) = graph(&[
            (
                "crates/store/src/a.rs",
                "pub fn go(x: &X) { x.write_it(); }\npub fn write_it() {}\n",
            ),
            ("crates/jobs/src/b.rs", "pub fn write_it() {}\n"),
        ]);
        // `x.write_it()` has two candidates — no edge.
        assert_eq!(
            g.callees((0, 0)).len(),
            0,
            "ambiguous method must not resolve"
        );
    }
}
