//! `timing-discipline`: all timing flows through instrumentation.
//!
//! The study's efficiency results (Fig. 2 / Table III) are produced by
//! `LogParser::timed_parse` and the obs span layer so every measured
//! duration lands in one histogram family. Ad-hoc `Instant::now()`
//! pairs in library code bypass that — they measure without recording,
//! and the next refactor silently changes what the published numbers
//! mean.
//!
//! `Instant::now()` is therefore flagged in library code everywhere
//! except the two instrumentation substrates themselves (`obs`, and the
//! vendored `criterion` bench shim). Binaries, benches, examples and
//! tests are exempt. Sites that *feed* an obs histogram directly (the
//! per-batch worker timer) document themselves with a pragma.

use super::{code_lines, find_all, Finding, Severity};
use crate::source::{Role, SourceFile};

const NAME: &str = "timing-discipline";

/// Crates that *are* the instrumentation layer.
const SUBSTRATE: &[&str] = &["obs", "criterion"];

/// Runs the lint over one file.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    if file.role != Role::Lib || SUBSTRATE.contains(&file.crate_name.as_str()) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (n, line) in code_lines(file) {
        for _ in find_all(line, "Instant::now()") {
            out.push(Finding::new(
                NAME,
                Severity::Warn,
                file,
                n,
                "ad-hoc `Instant::now()`; time through `timed_parse`/obs spans so the \
                 measurement is recorded, or document why with a pragma"
                    .to_string(),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_lib_code_outside_substrate() {
        let f = check(&SourceFile::new(
            "crates/eval/src/x.rs",
            "fn f() { let t = std::time::Instant::now(); let _ = t.elapsed(); }\n",
        ));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn substrate_tests_and_bins_are_exempt() {
        for rel in [
            "crates/obs/src/span.rs",
            "crates/criterion/src/lib.rs",
            "crates/bench/src/bin/table1.rs",
            "tests/end_to_end.rs",
        ] {
            let f = check(&SourceFile::new(rel, "fn f() { Instant::now(); }\n"));
            assert!(f.is_empty(), "{rel}");
        }
        let in_test = check(&SourceFile::new(
            "crates/eval/src/x.rs",
            "#[cfg(test)]\nmod tests {\n fn f() { Instant::now(); }\n}\n",
        ));
        assert!(in_test.is_empty());
    }
}
