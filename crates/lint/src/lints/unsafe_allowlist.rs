//! `unsafe-allowlist`: the workspace has exactly one sanctioned unsafe
//! surface — the `signal(2)` FFI in `crates/ingest/src/signal.rs`.
//!
//! Two checks:
//!
//! 1. the token `unsafe` anywhere outside the allowlist is an error
//!    (tests included: test code is still unsafe code);
//! 2. every crate root must carry `#![forbid(unsafe_code)]`. The
//!    `ingest` root is the one sanctioned exception: `forbid` cannot be
//!    overridden locally, so it carries `#![deny(unsafe_code)]` and
//!    `signal.rs` opts out with an explicit `#[allow(unsafe_code)]`.

use super::{find_all, Finding, Severity};
use crate::source::SourceFile;

const NAME: &str = "unsafe-allowlist";

/// Files in which the `unsafe` token is sanctioned.
const UNSAFE_OK: &[&str] = &["crates/ingest/src/signal.rs"];

/// Crate roots allowed to downgrade `forbid` to `deny`, with why.
const DENY_OK: &[&str] = &["crates/ingest/src/lib.rs"];

/// Runs the token check over one file.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    if !UNSAFE_OK.contains(&file.rel.as_str()) {
        for n in 1..=file.line_count() as u32 {
            let line = file.masked_line(n);
            for off in find_all(line, "unsafe") {
                let bytes = line.as_bytes();
                let before_ok = off == 0 || !is_ident(bytes[off - 1]);
                let after = off + "unsafe".len();
                let after_ok = after >= bytes.len() || !is_ident(bytes[after]);
                if before_ok && after_ok {
                    out.push(Finding::new(
                        NAME,
                        Severity::Error,
                        file,
                        n,
                        format!(
                            "`unsafe` outside the allowlist ({}); move the FFI there or \
                             extend the allowlist deliberately",
                            UNSAFE_OK.join(", ")
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// Runs the crate-root attribute check. `file` must be a crate root
/// (`src/lib.rs` or the sole `src/main.rs` of a binary crate).
pub fn check_crate_root(file: &SourceFile) -> Vec<Finding> {
    let has =
        |needle: &str| (1..=file.line_count() as u32).any(|n| file.masked_line(n).contains(needle));
    let forbid = has("#![forbid(unsafe_code)]");
    let deny = has("#![deny(unsafe_code)]");
    if forbid || (deny && DENY_OK.contains(&file.rel.as_str())) {
        return Vec::new();
    }
    let wanted = if DENY_OK.contains(&file.rel.as_str()) {
        "#![deny(unsafe_code)]"
    } else {
        "#![forbid(unsafe_code)]"
    };
    vec![Finding::new(
        NAME,
        Severity::Error,
        file,
        1,
        format!("crate root is missing `{wanted}`"),
    )]
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_unsafe_outside_allowlist_even_in_tests() {
        let f = check(&SourceFile::new(
            "crates/core/src/x.rs",
            "#[cfg(test)]\nmod tests {\n fn f() { unsafe { std::hint::unreachable_unchecked() } }\n}\n",
        ));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn allowlisted_file_and_string_mentions_are_fine() {
        assert!(check(&SourceFile::new(
            "crates/ingest/src/signal.rs",
            "fn f() { unsafe { ffi() } }\n",
        ))
        .is_empty());
        assert!(check(&SourceFile::new(
            "crates/core/src/x.rs",
            "const DOC: &str = \"unsafe\"; // unsafe in comments is fine\nfn unsafer() {}\n",
        ))
        .is_empty());
    }

    #[test]
    fn crate_roots_need_forbid() {
        let missing = check_crate_root(&SourceFile::new("crates/rand/src/lib.rs", "fn f() {}\n"));
        assert_eq!(missing.len(), 1);
        assert!(missing[0].message.contains("forbid"));
        let ok = check_crate_root(&SourceFile::new(
            "crates/rand/src/lib.rs",
            "#![forbid(unsafe_code)]\n",
        ));
        assert!(ok.is_empty());
        // ingest may deny instead of forbid; others may not.
        assert!(check_crate_root(&SourceFile::new(
            "crates/ingest/src/lib.rs",
            "#![deny(unsafe_code)]\n",
        ))
        .is_empty());
        assert_eq!(
            check_crate_root(&SourceFile::new(
                "crates/core/src/lib.rs",
                "#![deny(unsafe_code)]\n",
            ))
            .len(),
            1
        );
    }
}
