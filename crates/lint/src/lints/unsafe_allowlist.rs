//! `unsafe-allowlist`: the workspace has exactly two sanctioned unsafe
//! surfaces — the `signal(2)` FFI in `crates/ingest/src/signal.rs` and
//! the `mmap(2)` FFI (plus the ASCII `&str` reinterpretation) in
//! `crates/core/src/mmap.rs`.
//!
//! Three checks:
//!
//! 1. the token `unsafe` anywhere outside the allowlist is an error
//!    (tests included: test code is still unsafe code);
//! 2. inside an allowlisted file, every line using `unsafe` must sit
//!    directly under a `// SAFETY:` comment (the comment block
//!    immediately above, blank lines allowed) or carry one on the line
//!    itself — an unsafe block whose soundness argument is not written
//!    down is treated the same as unsafe outside the allowlist;
//! 3. every crate root must carry `#![forbid(unsafe_code)]`. The
//!    `ingest` and `core` roots are the sanctioned exceptions: `forbid`
//!    cannot be overridden locally, so they carry
//!    `#![deny(unsafe_code)]` and the allowlisted module opts back in
//!    with an explicit `allow(unsafe_code)`.

use super::{find_all, Finding, Severity};
use crate::source::SourceFile;

const NAME: &str = "unsafe-allowlist";

/// Files in which the `unsafe` token is sanctioned (SAFETY comments
/// still required, per check 2).
const UNSAFE_OK: &[&str] = &["crates/ingest/src/signal.rs", "crates/core/src/mmap.rs"];

/// Crate roots allowed to downgrade `forbid` to `deny` — exactly the
/// crates owning an allowlisted file.
const DENY_OK: &[&str] = &["crates/ingest/src/lib.rs", "crates/core/src/lib.rs"];

/// Runs the token check over one file.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    let allowlisted = UNSAFE_OK.contains(&file.rel.as_str());
    for n in 1..=file.line_count() as u32 {
        let line = file.masked_line(n);
        for off in find_all(line, "unsafe") {
            let bytes = line.as_bytes();
            let before_ok = off == 0 || !is_ident(bytes[off - 1]);
            let after = off + "unsafe".len();
            let after_ok = after >= bytes.len() || !is_ident(bytes[after]);
            if !(before_ok && after_ok) {
                continue;
            }
            if !allowlisted {
                out.push(Finding::new(
                    NAME,
                    Severity::Error,
                    file,
                    n,
                    format!(
                        "`unsafe` outside the allowlist ({}); move the FFI there or \
                         extend the allowlist deliberately",
                        UNSAFE_OK.join(", ")
                    ),
                ));
            } else if !has_safety_comment(file, n) {
                out.push(Finding::new(
                    NAME,
                    Severity::Error,
                    file,
                    n,
                    "allowlisted `unsafe` without a `SAFETY:` comment directly above; \
                     write down why this is sound"
                        .to_string(),
                ));
            }
            // One finding per line is enough either way.
            break;
        }
    }
    out
}

/// Is there a `SAFETY:` comment on line `n` or in the comment block
/// immediately above it? The walk climbs over comment-only and blank
/// lines (the masked view blanks comments), so multi-line soundness
/// arguments qualify however long they run; the first *code* line ends
/// the search.
fn has_safety_comment(file: &SourceFile, n: u32) -> bool {
    let safety_on = |m: u32| {
        file.lexed
            .comments
            .iter()
            .any(|c| c.line == m && c.text.contains("SAFETY:"))
    };
    if safety_on(n) {
        return true;
    }
    let mut m = n.saturating_sub(1);
    while m >= 1 && file.masked_line(m).trim().is_empty() {
        if safety_on(m) {
            return true;
        }
        m -= 1;
    }
    false
}

/// Runs the crate-root attribute check. `file` must be a crate root
/// (`src/lib.rs` or the sole `src/main.rs` of a binary crate).
pub fn check_crate_root(file: &SourceFile) -> Vec<Finding> {
    let has =
        |needle: &str| (1..=file.line_count() as u32).any(|n| file.masked_line(n).contains(needle));
    let forbid = has("#![forbid(unsafe_code)]");
    let deny = has("#![deny(unsafe_code)]");
    if forbid || (deny && DENY_OK.contains(&file.rel.as_str())) {
        return Vec::new();
    }
    let wanted = if DENY_OK.contains(&file.rel.as_str()) {
        "#![deny(unsafe_code)]"
    } else {
        "#![forbid(unsafe_code)]"
    };
    vec![Finding::new(
        NAME,
        Severity::Error,
        file,
        1,
        format!("crate root is missing `{wanted}`"),
    )]
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_unsafe_outside_allowlist_even_in_tests() {
        let f = check(&SourceFile::new(
            "crates/core/src/x.rs",
            "#[cfg(test)]\nmod tests {\n fn f() { unsafe { std::hint::unreachable_unchecked() } }\n}\n",
        ));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("outside the allowlist"));
    }

    #[test]
    fn allowlisted_file_and_string_mentions_are_fine() {
        assert!(check(&SourceFile::new(
            "crates/ingest/src/signal.rs",
            "fn f() {\n    // SAFETY: handler is async-signal-safe.\n    unsafe { ffi() }\n}\n",
        ))
        .is_empty());
        assert!(check(&SourceFile::new(
            "crates/core/src/x.rs",
            "const DOC: &str = \"unsafe\"; // unsafe in comments is fine\nfn unsafer() {}\n",
        ))
        .is_empty());
    }

    #[test]
    fn allowlisted_unsafe_needs_an_adjacent_safety_comment() {
        // No SAFETY comment at all: one finding per unsafe line.
        let bare = check(&SourceFile::new(
            "crates/core/src/mmap.rs",
            "fn f() {\n    unsafe { ffi() }\n}\n",
        ));
        assert_eq!(bare.len(), 1);
        assert!(bare[0].message.contains("SAFETY"));
        // A SAFETY block ending in a code line before the unsafe does
        // not cover it.
        let detached = check(&SourceFile::new(
            "crates/core/src/mmap.rs",
            "// SAFETY: stale argument.\nfn f() {}\nfn g() {\n    unsafe { ffi() }\n}\n",
        ));
        assert_eq!(detached.len(), 1);
        // Multi-line SAFETY comment immediately above: covered, even
        // when only the first line carries the keyword.
        assert!(check(&SourceFile::new(
            "crates/core/src/mmap.rs",
            "// SAFETY: the pages are mapped read-only and stay alive\n// until Drop, which runs once.\nunsafe impl Send for M {}\n",
        ))
        .is_empty());
        // Same-line SAFETY also qualifies.
        assert!(check(&SourceFile::new(
            "crates/core/src/mmap.rs",
            "fn f() { unsafe { ffi() } } // SAFETY: fd outlives the call.\n",
        ))
        .is_empty());
    }

    #[test]
    fn crate_roots_need_forbid() {
        let missing = check_crate_root(&SourceFile::new("crates/rand/src/lib.rs", "fn f() {}\n"));
        assert_eq!(missing.len(), 1);
        assert!(missing[0].message.contains("forbid"));
        let ok = check_crate_root(&SourceFile::new(
            "crates/rand/src/lib.rs",
            "#![forbid(unsafe_code)]\n",
        ));
        assert!(ok.is_empty());
        // ingest and core may deny instead of forbid; others may not.
        for root in ["crates/ingest/src/lib.rs", "crates/core/src/lib.rs"] {
            assert!(check_crate_root(&SourceFile::new(root, "#![deny(unsafe_code)]\n")).is_empty());
        }
        assert_eq!(
            check_crate_root(&SourceFile::new(
                "crates/parsers/src/lib.rs",
                "#![deny(unsafe_code)]\n",
            ))
            .len(),
            1
        );
    }
}
