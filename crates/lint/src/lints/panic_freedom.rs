//! `panic-freedom`: hot-path library code must not contain reachable
//! panic sites.
//!
//! Flagged in hot-path crates (see [`super::is_hot_path`]), outside
//! test regions:
//!
//! * `.unwrap()` / `.expect(` — convert to `Result`/`Option`
//!   propagation, `unwrap_or_else(PoisonError::into_inner)` for lock
//!   guards, or `total_cmp` for float sorts;
//! * `panic!(` / `unreachable!(` / `todo!(` / `unimplemented!(`;
//! * slice indexing with an **integer literal** (`parts[0]`) — the
//!   classic out-of-bounds panic after a split; prefer `.first()`,
//!   slice patterns, or `.get(n)`. Variable indices are not flagged
//!   (they are pervasively bounds-derived), so this sub-check is a
//!   warning while the panic-macro sub-check is an error.

use super::{code_lines, find_all, is_hot_path, Finding, Severity};
use crate::source::SourceFile;

const NAME: &str = "panic-freedom";

const CALLS: &[(&str, &str)] = &[
    (".unwrap()", "`unwrap()` can panic"),
    (".expect(", "`expect()` can panic"),
    ("panic!(", "explicit `panic!`"),
    ("unreachable!(", "`unreachable!` can panic"),
    ("todo!(", "`todo!` panics"),
    ("unimplemented!(", "`unimplemented!` panics"),
];

/// Runs the lint over one file.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    if !is_hot_path(file) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (n, line) in code_lines(file) {
        for (pat, what) in CALLS {
            for _ in find_all(line, pat) {
                out.push(Finding::new(
                    NAME,
                    Severity::Error,
                    file,
                    n,
                    format!(
                        "{what} in hot-path crate `{}`; propagate an error or add a \
                         reasoned lint:allow",
                        file.crate_name
                    ),
                ));
            }
        }
        for idx in literal_indices(line) {
            out.push(Finding::new(
                NAME,
                Severity::Warn,
                file,
                n,
                format!(
                    "literal slice index `[{idx}]` can panic; use `.first()`/`.get({idx})` \
                     or a slice pattern"
                ),
            ));
        }
    }
    out
}

/// Integer literals used as index expressions: `x[0]`, `call()[1]`,
/// `a.b[2]` — but not attributes (`#[...]`), array types/literals
/// (`[0; 4]`), or `vec![…]`.
fn literal_indices(line: &str) -> Vec<&str> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1];
        let indexes_value =
            prev.is_ascii_alphanumeric() || prev == b'_' || prev == b')' || prev == b']';
        if !indexes_value {
            continue;
        }
        let rest = &line[i + 1..];
        let Some(close) = rest.find(']') else {
            continue;
        };
        let inner = rest[..close].trim();
        if !inner.is_empty() && inner.bytes().all(|c| c.is_ascii_digit() || c == b'_') {
            out.push(&rest[..close]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot(src: &str) -> Vec<Finding> {
        check(&SourceFile::new("crates/ingest/src/x.rs", src))
    }

    #[test]
    fn flags_unwrap_and_literal_index_in_hot_path() {
        let f = hot("fn f(v: &[u32]) -> u32 { v.first().unwrap() + v[0] }\n");
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|x| x.message.contains("unwrap")));
        assert!(f.iter().any(|x| x.message.contains("slice index")));
    }

    #[test]
    fn silent_outside_hot_path_and_in_tests() {
        let cold = check(&SourceFile::new(
            "crates/eval/src/x.rs",
            "fn f() { None::<u32>.unwrap(); }\n",
        ));
        assert!(cold.is_empty());
        let test_code = hot("#[cfg(test)]\nmod tests {\n fn f() { None::<u32>.unwrap(); }\n}\n");
        assert!(test_code.is_empty());
    }

    #[test]
    fn does_not_flag_unwrap_or_variants_or_variable_indices() {
        let f = hot("fn f(v: &[u32], i: usize) -> u32 { v.get(i).copied().unwrap_or(0) + v[i] }\n");
        assert!(f.is_empty(), "{f:?}");
        // Attribute brackets, array literals and vec! are not indexing.
        let g = hot("#[derive(Clone)]\nstruct S;\nfn g() -> [u8; 2] { [0; 2] }\n");
        assert!(g.is_empty(), "{g:?}");
    }
}
