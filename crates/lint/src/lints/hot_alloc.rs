//! `hot-path-string-alloc`: no per-token string allocation in parser
//! inner loops.
//!
//! The interning refactor moved every parser's hot path onto dense
//! `Symbol` ids precisely so the per-line/per-token loops stop hashing
//! and allocating strings. A `to_string()` / `String::from` /
//! `format!` inside a loop body of the parsers crate or the parallel
//! driver quietly reintroduces that cost — one allocation per
//! iteration, invisible in review, visible in the throughput tables.
//!
//! The lint brace-tracks loop bodies (`for`/`while`/`loop`) over the
//! masked code view and warns on allocation calls found inside one.
//! Output-time rendering (template resolution after the loop) is the
//! sanctioned pattern; a loop that genuinely must allocate documents
//! itself with a pragma.

use super::{code_lines, Finding, Severity};
use crate::source::{Role, SourceFile};

const NAME: &str = "hot-path-string-alloc";

/// Allocation calls that have no place in a per-token loop.
const PATTERNS: &[&str] = &[".to_string()", "String::from(", "format!("];

/// Scope: the parsers crate, the parallel driver, and the zero-copy
/// corpus loader path (scanner, interner, loader) — the loops the
/// throughput benches measure.
const CORE_HOT_FILES: &[&str] = &[
    "crates/core/src/parallel.rs",
    "crates/core/src/loader.rs",
    "crates/core/src/simd.rs",
    "crates/core/src/intern.rs",
];

fn in_scope(file: &SourceFile) -> bool {
    file.role == Role::Lib
        && (file.crate_name == "parsers" || CORE_HOT_FILES.contains(&file.rel.as_str()))
}

/// Is the byte at `pos` the start of a standalone keyword `kw`?
fn keyword_at(line: &str, pos: usize, kw: &str) -> bool {
    if !line[pos..].starts_with(kw) {
        return false;
    }
    let before_ok = pos == 0
        || !line[..pos]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let after_ok = !line[pos + kw.len()..]
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    before_ok && after_ok
}

/// Runs the lint over one file.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    if !in_scope(file) {
        return Vec::new();
    }
    let mut out = Vec::new();
    // Brace depth, the depths at which loop bodies opened, and whether
    // a loop header is waiting for its `{`. State carries across lines
    // so multi-line headers and bodies track correctly. A `for` only
    // becomes a loop once its `in` appears — `impl Trait for Type` and
    // `for<'a>` bounds never do.
    let mut depth = 0usize;
    let mut loop_depths: Vec<usize> = Vec::new();
    let mut pending_loop = false;
    let mut pending_for = false;
    for (n, line) in code_lines(file) {
        let mut i = 0;
        while i < line.len() {
            if !line.is_char_boundary(i) {
                i += 1;
                continue;
            }
            if keyword_at(line, i, "while") || keyword_at(line, i, "loop") {
                pending_loop = true;
            } else if keyword_at(line, i, "for") {
                pending_for = true;
            } else if pending_for && keyword_at(line, i, "in") {
                pending_for = false;
                pending_loop = true;
            }
            if !loop_depths.is_empty() {
                if let Some(pat) = PATTERNS.iter().find(|p| line[i..].starts_with(**p)) {
                    out.push(Finding::new(
                        NAME,
                        Severity::Warn,
                        file,
                        n,
                        format!(
                            "`{}` inside a loop body allocates per iteration; keep hot \
                             loops on interned `Symbol`s and resolve to strings after \
                             the loop, or document why with a pragma",
                            pat.trim_end_matches('(')
                        ),
                    ));
                    i += pat.len();
                    continue;
                }
            }
            match line.as_bytes()[i] {
                b'{' => {
                    depth += 1;
                    if pending_loop {
                        loop_depths.push(depth);
                        pending_loop = false;
                    }
                    // An `impl … for Type {` reaches its `{` with no
                    // `in`: not a loop.
                    pending_for = false;
                }
                b'}' => {
                    if loop_depths.last() == Some(&depth) {
                        loop_depths.pop();
                    }
                    depth = depth.saturating_sub(1);
                }
                // A `;` between a loop keyword and `{` means the keyword
                // belonged to a statement that ended; clear the flags so
                // an unrelated later block is not misread as a loop body.
                b';' => {
                    pending_loop = false;
                    pending_for = false;
                }
                _ => {}
            }
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, body: &str) -> Vec<Finding> {
        check(&SourceFile::new(rel, body))
    }

    #[test]
    fn flags_allocation_inside_loop_in_parsers() {
        let out = run(
            "crates/parsers/src/x.rs",
            "fn f(v: &[u32]) -> Vec<String> {\n\
             let mut o = Vec::new();\n\
             for x in v {\n    o.push(x.to_string());\n}\no\n}\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].lint, NAME);
        assert_eq!(out[0].severity, Severity::Warn);
        assert_eq!(out[0].line, 4);
    }

    #[test]
    fn allocation_outside_loops_is_fine() {
        let out = run(
            "crates/parsers/src/x.rs",
            "fn f() -> String {\n    let s = format!(\"{}\", 1);\n    s.to_string()\n}\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn while_and_nested_blocks_are_tracked() {
        let out = run(
            "crates/core/src/parallel.rs",
            "fn f(mut n: u32) {\n\
             while n > 0 {\n    if n % 2 == 0 {\n        let _ = String::from(\"x\");\n    }\n    n -= 1;\n}\n}\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 4);
    }

    #[test]
    fn out_of_scope_crates_and_tests_are_exempt() {
        let body = "fn f(v: &[u32]) { for x in v { let _ = x.to_string(); } }\n";
        assert!(run("crates/eval/src/x.rs", body).is_empty());
        assert!(run("crates/core/src/record.rs", body).is_empty());
        assert!(run("crates/parsers/benches/x.rs", body).is_empty());
        let in_test = format!("#[cfg(test)]\nmod tests {{\n{body}}}\n");
        assert!(run("crates/parsers/src/x.rs", &in_test).is_empty());
    }

    #[test]
    fn loader_path_files_are_in_scope() {
        let body = "fn f(v: &[u32]) { for x in v { let _ = x.to_string(); } }\n";
        for rel in [
            "crates/core/src/loader.rs",
            "crates/core/src/simd.rs",
            "crates/core/src/intern.rs",
        ] {
            assert_eq!(run(rel, body).len(), 1, "{rel} should be linted");
        }
    }

    #[test]
    fn impl_for_blocks_are_not_loops() {
        let out = run(
            "crates/parsers/src/x.rs",
            "impl std::fmt::Display for X {\n\
             fn fmt(&self, f: &mut std::fmt::Formatter) -> std::fmt::Result {\n\
             write!(f, \"{}\", self.0.to_string())\n}\n}\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn for_each_and_identifiers_do_not_open_loops() {
        let out = run(
            "crates/parsers/src/x.rs",
            "fn f(v: &[u32]) {\n\
             v.iter().for_each(|x| drop(x));\n\
             let looped = 1;\n\
             let _ = (looped, format!(\"{}\", 2));\n}\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }
}
