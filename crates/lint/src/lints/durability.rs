//! `durability-discipline`: create/write→rename persistence paths must
//! reach fsync — file **and** parent directory — or carry a reasoned
//! pragma naming the flush tier.
//!
//! The store publishes snapshots, the jobs coordinator publishes shard
//! results and DLQ records, and ingest publishes per-worker outputs —
//! all via the create→write→rename idiom. A rename alone is atomic
//! against *crashes of the process* (SIGKILL-safe), but not against
//! power loss: the file's bytes need `sync_all()` and the directory
//! entry needs `sync_dir()` before the rename is durable. See
//! `docs/DURABILITY.md` for the tier definitions.
//!
//! Two sub-checks, both scoped to `store`/`jobs`/`ingest`/`obs` library
//! code:
//!
//! * **local rename** — a function that itself calls `fs::rename` must
//!   also locally call `sync_dir(` (and `sync_all`/`sync_data` when it
//!   writes file bytes);
//! * **durable-path dir creation** — a function that creates
//!   directories *and* reaches an `fs::rename` through the call graph
//!   must `sync_dir` the created entries; the finding carries the full
//!   call chain down to the rename site as a witness.

use super::{Finding, Severity};
use crate::analysis::FileAnalysis;
use crate::callgraph::{FnRef, Graph};
use crate::source::Role;
use std::collections::HashMap;

const NAME: &str = "durability-discipline";

/// How a function reaches `fs::rename`: the chain of callee names and
/// the final rename site.
#[derive(Clone)]
struct RenameWitness {
    /// Call steps from the function down to the renamer, rendered as
    /// `name (file:line)` per hop (empty for a local rename).
    chain: Vec<String>,
    rel: String,
    line: u32,
}

fn in_scope(a: &FileAnalysis) -> bool {
    a.role == Role::Lib && matches!(a.crate_name.as_str(), "store" | "jobs" | "ingest" | "obs")
}

/// Runs the lint over the analyzed workspace.
pub fn check(analyses: &[FileAnalysis], graph: &Graph) -> Vec<Finding> {
    let reach = rename_reachability(analyses, graph);
    let mut out = Vec::new();
    for (fi, a) in analyses.iter().enumerate() {
        if !in_scope(a) {
            continue;
        }
        for (fj, f) in a.flow.iter().enumerate() {
            // Sub-check A: local rename.
            if let Some(&first_rename) = f.renames.first() {
                let missing_dir = f.dir_syncs.is_empty();
                let missing_file = !f.file_writes.is_empty() && f.file_syncs.is_empty();
                if missing_dir || missing_file {
                    let mut what = Vec::new();
                    if missing_file {
                        what.push("the file's bytes are never synced (`sync_all`)");
                    }
                    if missing_dir {
                        what.push("the directory entry is never synced (`sync_dir`)");
                    }
                    let mut fnd = Finding {
                        lint: NAME,
                        severity: Severity::Error,
                        rel: a.rel.clone(),
                        line: first_rename,
                        message: format!(
                            "`{}` publishes by rename (line {first_rename}) but {}; a rename is \
                             only power-loss durable once file bytes and directory entry are both \
                             fsynced — sync them, or bless the flush tier with a reasoned \
                             `lint:allow({NAME})` pragma (see docs/DURABILITY.md)",
                            f.name,
                            what.join(" and "),
                        ),
                        also_allow_at: vec![f.start_line],
                    };
                    fnd.also_allow_at.dedup();
                    out.push(fnd);
                }
                continue; // A local rename subsumes sub-check B.
            }
            // Sub-check B: creates directories on a durable path.
            if f.create_dirs.is_empty() || !f.dir_syncs.is_empty() {
                continue;
            }
            if let Some(w) = reach.get(&(fi, fj)) {
                let chain = if w.chain.is_empty() {
                    String::new()
                } else {
                    format!(" via {}", w.chain.join(" -> "))
                };
                out.push(Finding {
                    lint: NAME,
                    severity: Severity::Error,
                    rel: a.rel.clone(),
                    line: f.create_dirs[0],
                    message: format!(
                        "`{}` creates directories (line {}) on a durable publish path — it \
                         reaches `fs::rename` at {}:{}{chain} — but never calls `sync_dir` on \
                         the created entries; after a power loss the rename can survive while \
                         the directory itself is gone — sync the created/parent directories, or \
                         bless the flush tier with a reasoned `lint:allow({NAME})` pragma (see \
                         docs/DURABILITY.md)",
                        f.name, f.create_dirs[0], w.rel, w.line,
                    ),
                    also_allow_at: vec![f.start_line],
                });
            }
        }
    }
    out
}

/// Fixpoint: for every function, whether (and how) it reaches an
/// `fs::rename` through resolved call edges. Chains are capped at six
/// hops; iteration order is index order so witnesses are deterministic.
fn rename_reachability(analyses: &[FileAnalysis], graph: &Graph) -> HashMap<FnRef, RenameWitness> {
    let mut reach: HashMap<FnRef, RenameWitness> = HashMap::new();
    for (fi, a) in analyses.iter().enumerate() {
        for (fj, f) in a.flow.iter().enumerate() {
            if let Some(&line) = f.renames.first() {
                reach.insert(
                    (fi, fj),
                    RenameWitness {
                        chain: Vec::new(),
                        rel: a.rel.clone(),
                        line,
                    },
                );
            }
        }
    }
    loop {
        let mut changed = false;
        for (fi, a) in analyses.iter().enumerate() {
            for (fj, f) in a.flow.iter().enumerate() {
                if reach.contains_key(&(fi, fj)) {
                    continue;
                }
                let found = graph.callees((fi, fj)).iter().find_map(|&(ci, callee)| {
                    let w = reach.get(&callee)?;
                    if w.chain.len() >= 6 {
                        return None;
                    }
                    let call = &f.calls[ci];
                    let target = &analyses[callee.0].flow[callee.1];
                    let mut chain = vec![format!("`{}` ({}:{})", target.name, a.rel, call.line)];
                    chain.extend(w.chain.iter().cloned());
                    Some(RenameWitness {
                        chain,
                        rel: w.rel.clone(),
                        line: w.line,
                    })
                });
                if let Some(w) = found {
                    reach.insert((fi, fj), w);
                    changed = true;
                }
            }
        }
        if !changed {
            return reach;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::callgraph;

    fn lint(files: &[(&str, &str)]) -> Vec<Finding> {
        let analyses: Vec<FileAnalysis> =
            files.iter().map(|(rel, text)| analyze(rel, text)).collect();
        let graph = callgraph::build(&analyses);
        check(&analyses, &graph)
    }

    const CLEAN_SEAL: &str = "pub fn seal(p: &Path, b: &[u8]) -> io::Result<()> {\n    \
        let mut f = File::create(&tmp)?;\n    f.write_all(b)?;\n    f.sync_all()?;\n    \
        fs::rename(&tmp, p)?;\n    sync_dir(p.parent().unwrap())\n}\n";

    #[test]
    fn fully_synced_rename_is_clean() {
        let f = lint(&[("crates/store/src/x.rs", CLEAN_SEAL)]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn rename_without_syncs_is_flagged() {
        let f = lint(&[(
            "crates/store/src/x.rs",
            "pub fn publish(p: &Path) -> io::Result<()> {\n    \
             let mut f = File::create(&tmp)?;\n    f.write_all(b\"x\")?;\n    \
             fs::rename(&tmp, p)\n}\n",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("sync_all"), "{}", f[0].message);
        assert!(f[0].message.contains("sync_dir"), "{}", f[0].message);
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn dir_creation_reaching_rename_needs_sync_with_witness() {
        let f = lint(&[
            (
                "crates/jobs/src/a.rs",
                "pub fn run(dir: &Path) -> io::Result<()> {\n    \
                 fs::create_dir_all(dir)?;\n    seal(&dir.join(\"out\"), b\"x\")\n}\n",
            ),
            ("crates/store/src/b.rs", CLEAN_SEAL),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rel, "crates/jobs/src/a.rs");
        assert_eq!(f[0].line, 2);
        assert!(
            f[0].message.contains("crates/store/src/b.rs:5"),
            "witness must name the rename site: {}",
            f[0].message
        );
        assert!(
            f[0].message.contains("`seal` (crates/jobs/src/a.rs:3)"),
            "witness must show the call chain: {}",
            f[0].message
        );
    }

    #[test]
    fn dir_creation_off_the_durable_path_is_clean() {
        let f = lint(&[(
            "crates/jobs/src/a.rs",
            "pub fn scratch(dir: &Path) -> io::Result<()> {\n    fs::create_dir_all(dir)\n}\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn out_of_scope_crates_are_ignored() {
        let f = lint(&[(
            "crates/parsers/src/x.rs",
            "pub fn publish(p: &Path) { fs::rename(&tmp, p).unwrap(); }\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }
}
