//! `obs-metric-hygiene`: the metric namespace is a contract.
//!
//! Every metric family the workspace registers (`registry.counter(…)`,
//! `.gauge(…)`, `.histogram(…)`) must
//!
//! 1. pass its family name as a **string literal** — hygiene cannot
//!    verify a name that only exists at runtime;
//! 2. be registered at **exactly one** library call site — one place
//!    owns the name, the help text and the label schema (shared series
//!    are cloned from the owning handle, or the duplicate site carries
//!    a reasoned pragma);
//! 3. appear in the **Observability table of DESIGN.md** — and every
//!    family the table documents must exist in code. The docs and the
//!    scrape can never drift apart silently.
//!
//! The same three rules cover the history ring's series vocabulary:
//! instrumentation-side sampling calls (`.record_sample(…)`,
//! `.track_counter(…)`, `.track_gauge(…)`, `.track_quantile(…)`) name
//! the series they feed, so those names are literal, single-owner, and
//! cross-checked against the section's table whose header cell is
//! `series` (families live in the table headed `family`).
//! [`History::replay`] is deliberately exempt — it is the *import*
//! surface for runtime names (fixture replay, `logmine alerts check`).
//!
//! Scope: library code outside test regions. Binaries, benches,
//! examples and tests consume metrics, they do not define them.

use super::{Finding, Severity};
use crate::source::{Role, SourceFile};
use std::collections::BTreeMap;

const NAME: &str = "obs-metric-hygiene";

const REGISTRATION: &[&str] = &[".counter(", ".gauge(", ".histogram("];

const SAMPLING: &[&str] = &[
    ".record_sample(",
    ".track_counter(",
    ".track_gauge(",
    ".track_quantile(",
];

/// One registration call site.
#[derive(Debug)]
struct Site {
    rel: String,
    line: u32,
}

/// Which namespace a call site feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Registry family registration (`.counter(` / `.gauge(` / …).
    Family,
    /// History-series sampling (`.record_sample(` / `.track_*(`).
    Series,
}

/// One literal-named call site, extracted per file so the workspace
/// cross-check can run over cached per-file results.
#[derive(Debug, Clone)]
pub struct MetricSite {
    /// Namespace category.
    pub kind: MetricKind,
    /// The literal name passed at the call.
    pub name: String,
    /// 1-based line of the call.
    pub line: u32,
}

/// The vocabulary of one namespace category: how its names enter code
/// and how the lint talks about them.
struct Category {
    patterns: &'static [&'static str],
    /// "metric family" / "history series".
    what: &'static str,
    /// "registered" / "recorded".
    verb: &'static str,
    /// Which DESIGN.md table documents it.
    table: &'static str,
}

const FAMILIES: Category = Category {
    patterns: REGISTRATION,
    what: "metric family",
    verb: "registered",
    table: "Observability table",
};

const SERIES: Category = Category {
    patterns: SAMPLING,
    what: "history series",
    verb: "recorded",
    table: "Observability history-series table",
};

/// Runs the workspace-level hygiene check. `design` is the
/// workspace-relative path and content of DESIGN.md, when present.
pub fn check(files: &[SourceFile], design: Option<(&str, &str)>) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut per_file: Vec<(String, Vec<MetricSite>)> = Vec::new();
    for file in files {
        let (sites, findings) = extract(file);
        out.extend(findings);
        per_file.push((file.rel.clone(), sites));
    }
    let borrowed: Vec<(&str, &[MetricSite])> = per_file
        .iter()
        .map(|(rel, s)| (rel.as_str(), s.as_slice()))
        .collect();
    out.extend(cross_check_all(&borrowed, design));
    out
}

/// Extracts one file's literal-named call sites, plus the findings for
/// non-literal names. Line-local, so results cache per file.
pub fn extract(file: &SourceFile) -> (Vec<MetricSite>, Vec<Finding>) {
    let mut sites = Vec::new();
    let mut out = Vec::new();
    if file.role != Role::Lib {
        return (sites, out);
    }
    for (category, kind) in [
        (&FAMILIES, MetricKind::Family),
        (&SERIES, MetricKind::Series),
    ] {
        for pat in category.patterns {
            for off in super::find_all(&file.lexed.masked, pat) {
                let line = file.line_of_offset(off);
                if file.is_test_line(line) {
                    continue;
                }
                let open = off + pat.len();
                match first_arg_literal(file, open) {
                    Some(name) => sites.push(MetricSite { kind, name, line }),
                    None => out.push(Finding::new(
                        NAME,
                        Severity::Error,
                        file,
                        line,
                        format!(
                            "{} {} through a non-literal name; hygiene cannot \
                             check it — pass the name as a string literal",
                            category.what, category.verb
                        ),
                    )),
                }
            }
        }
    }
    (sites, out)
}

/// The workspace-level single-owner and DESIGN.md cross-checks over
/// every file's extracted sites (in file order — the first site of a
/// name owns it).
pub fn cross_check_all(
    files: &[(&str, &[MetricSite])],
    design: Option<(&str, &str)>,
) -> Vec<Finding> {
    let mut family_sites: BTreeMap<String, Vec<Site>> = BTreeMap::new();
    let mut series_sites: BTreeMap<String, Vec<Site>> = BTreeMap::new();
    for (rel, sites) in files {
        for s in *sites {
            let map = match s.kind {
                MetricKind::Family => &mut family_sites,
                MetricKind::Series => &mut series_sites,
            };
            map.entry(s.name.clone()).or_default().push(Site {
                rel: (*rel).to_string(),
                line: s.line,
            });
        }
    }
    let (documented_families, documented_series) = match design {
        Some((_, text)) => design_tables(text),
        None => (BTreeMap::new(), BTreeMap::new()),
    };
    let mut out = Vec::new();
    cross_check(
        &FAMILIES,
        &family_sites,
        &documented_families,
        design.map(|(rel, _)| rel),
        &mut out,
    );
    cross_check(
        &SERIES,
        &series_sites,
        &documented_series,
        design.map(|(rel, _)| rel),
        &mut out,
    );
    out
}

/// The bidirectional code ↔ DESIGN.md check for one category.
fn cross_check(
    category: &Category,
    sites: &BTreeMap<String, Vec<Site>>,
    documented: &BTreeMap<String, u32>,
    design_rel: Option<&str>,
    out: &mut Vec<Finding>,
) {
    for (name, name_sites) in sites {
        if !documented.contains_key(name) {
            let s = &name_sites[0];
            out.push(Finding {
                lint: NAME,
                severity: Severity::Error,
                rel: s.rel.clone(),
                line: s.line,
                message: format!(
                    "{} `{name}` is not documented in DESIGN.md's {}",
                    category.what, category.table
                ),
                also_allow_at: Vec::new(),
            });
        }
        for dup in &name_sites[1..] {
            out.push(Finding {
                lint: NAME,
                severity: Severity::Error,
                rel: dup.rel.clone(),
                line: dup.line,
                message: format!(
                    "{} `{name}` is already {} at {}:{}; one site owns a name \
                     (clone the handle, or add a reasoned pragma)",
                    category.what, category.verb, name_sites[0].rel, name_sites[0].line
                ),
                also_allow_at: Vec::new(),
            });
        }
    }

    match design_rel {
        Some(design_rel) => {
            for (name, line) in documented {
                if !sites.contains_key(name) {
                    out.push(Finding {
                        lint: NAME,
                        severity: Severity::Error,
                        rel: design_rel.to_string(),
                        line: *line,
                        message: format!(
                            "documented {} `{name}` is never {} in workspace \
                             library code",
                            category.what, category.verb
                        ),
                        also_allow_at: Vec::new(),
                    });
                }
            }
        }
        None => {
            if let Some(s) = sites.values().next().and_then(|v| v.first()) {
                out.push(Finding {
                    lint: NAME,
                    severity: Severity::Error,
                    rel: s.rel.clone(),
                    line: s.line,
                    message: format!(
                        "workspace {}s {}s but has no DESIGN.md Observability \
                         table documenting them",
                        category.verb.trim_end_matches("ed"),
                        category.what
                    ),
                    also_allow_at: Vec::new(),
                });
            }
        }
    }
}

/// If the first argument of the call whose `(` content starts at
/// masked offset `open` is a string literal, returns its content.
fn first_arg_literal(file: &SourceFile, open: usize) -> Option<String> {
    let bytes = file.lexed.masked.as_bytes();
    let mut i = open;
    while i < bytes.len() && (bytes[i] as char).is_whitespace() {
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        return None;
    }
    file.lexed
        .strings
        .iter()
        .find(|s| s.offset == i)
        .map(|s| s.content.clone())
}

/// Which documented namespace a markdown table feeds, decided by its
/// header's first cell.
enum TableKind {
    Families,
    Series,
    Other,
}

/// Names (and their 1-based lines) from the markdown tables under
/// DESIGN.md's heading containing "Observability". Each table's header
/// first cell routes its rows: `family` → metric families, `series` →
/// history series; anything else is ignored. Cell values have
/// backticks stripped and any `{labels}` suffix removed.
fn design_tables(text: &str) -> (BTreeMap<String, u32>, BTreeMap<String, u32>) {
    let mut families = BTreeMap::new();
    let mut series = BTreeMap::new();
    let mut in_section = false;
    let mut table: Option<TableKind> = None;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with("## ") {
            in_section = line.contains("Observability");
            table = None;
            continue;
        }
        if !in_section {
            continue;
        }
        if !line.starts_with('|') {
            table = None;
            continue;
        }
        let cell = line
            .trim_matches('|')
            .split('|')
            .next()
            .unwrap_or("")
            .trim()
            .trim_matches('`');
        let Some(kind) = &table else {
            table = Some(match cell {
                "family" => TableKind::Families,
                "series" => TableKind::Series,
                _ => TableKind::Other,
            });
            continue;
        };
        let name = cell.split('{').next().unwrap_or("").trim();
        if name.is_empty()
            || name.bytes().all(|b| b == b'-' || b == b':')
            || !name
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
        {
            continue;
        }
        match kind {
            TableKind::Families => {
                families.entry(name.to_string()).or_insert(i as u32 + 1);
            }
            TableKind::Series => {
                series.entry(name.to_string()).or_insert(i as u32 + 1);
            }
            TableKind::Other => {}
        }
    }
    (families, series)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DESIGN: &str = "\
# Design

## Observability

| family | type | stage |
|--------|------|-------|
| `app_lines_total` | counter | router |
| `app_span_seconds{span}` | histogram | spans |
| `app_ghost_total` | counter | nowhere |

History series:

| series | source | meaning |
|--------|--------|---------|
| `app_churn` | aggregator | per-window churn |
| `app_ghost_series` | nowhere | documented only |
";

    fn files(src: &str) -> Vec<SourceFile> {
        vec![SourceFile::new("crates/obs/src/m.rs", src)]
    }

    #[test]
    fn clean_when_registered_once_and_documented() {
        let fs = files(
            "fn f(r: &Registry) {\n    r.counter(\"app_lines_total\", \"h\", &[]);\n    \
             r.histogram(\n        \"app_span_seconds\",\n        \"h\",\n        &[],\n    );\n    \
             h.record_sample(\"app_churn\", 0.5);\n}\n",
        );
        let out = check(&fs, Some(("DESIGN.md", DESIGN)));
        // Only the ghosts (documented, never in code) fire.
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out[0].message.contains("app_ghost_total"));
        assert!(out[1].message.contains("app_ghost_series"));
        assert!(out.iter().all(|f| f.rel == "DESIGN.md"));
    }

    #[test]
    fn flags_undocumented_duplicate_and_non_literal() {
        let fs = files(
            "fn f(r: &Registry, name: &str) {\n    r.counter(\"app_rogue_total\", \"h\", &[]);\n    \
             r.counter(\"app_lines_total\", \"h\", &[]);\n    \
             r.counter(\"app_lines_total\", \"h\", &[]);\n    r.counter(name, \"h\", &[]);\n}\n",
        );
        let out = check(&fs, Some(("DESIGN.md", DESIGN)));
        let msgs: Vec<&str> = out.iter().map(|f| f.message.as_str()).collect();
        assert!(
            msgs.iter().any(|m| m.contains("app_rogue_total")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("already registered")),
            "{msgs:?}"
        );
        assert!(msgs.iter().any(|m| m.contains("non-literal")), "{msgs:?}");
    }

    #[test]
    fn history_series_are_held_to_the_same_contract() {
        let fs = files(
            "fn f(h: &History, s: &mut Sampler, name: &str) {\n    \
             h.record_sample(\"app_rogue_series\", 1.0);\n    \
             s.track_counter(\"app_churn\", c);\n    \
             s.track_gauge(\"app_churn\", g);\n    \
             h.record_sample(name, 2.0);\n    \
             h.replay(name, 3.0);\n}\n",
        );
        let out = check(&fs, Some(("DESIGN.md", DESIGN)));
        let msgs: Vec<&str> = out.iter().map(|f| f.message.as_str()).collect();
        assert!(
            msgs.iter()
                .any(|m| m.contains("history series `app_rogue_series`")
                    && m.contains("history-series table")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("`app_churn` is already recorded")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("history series recorded through a non-literal")),
            "{msgs:?}"
        );
        // `.replay(` is the runtime import surface: never flagged.
        assert_eq!(
            msgs.iter().filter(|m| m.contains("non-literal")).count(),
            1,
            "{msgs:?}"
        );
    }

    #[test]
    fn series_and_family_tables_do_not_bleed_into_each_other() {
        // A series recorded in code but documented only as a *family*
        // (wrong table) must still be flagged, and vice versa.
        let fs = files(
            "fn f(r: &Registry, h: &History) {\n    \
             h.record_sample(\"app_lines_total\", 1.0);\n    \
             r.counter(\"app_churn\", \"h\", &[]);\n}\n",
        );
        let out = check(&fs, Some(("DESIGN.md", DESIGN)));
        let msgs: Vec<&str> = out.iter().map(|f| f.message.as_str()).collect();
        assert!(
            msgs.iter()
                .any(|m| m.contains("history series `app_lines_total`")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("metric family `app_churn`")),
            "{msgs:?}"
        );
    }

    #[test]
    fn test_regions_and_non_lib_roles_are_ignored() {
        let mut fs = files(
            "#[cfg(test)]\nmod tests {\n fn f(r: &R) { r.counter(\"x_total\", \"\", &[]); \
             h.record_sample(\"y\", 1.0); }\n}\n",
        );
        fs.push(SourceFile::new(
            "crates/bench/src/bin/b.rs",
            "fn main() { global().counter(\"y_total\", \"\", &[]); }\n",
        ));
        let out = check(&fs, Some(("DESIGN.md", "## Observability\n")));
        assert!(out.is_empty(), "{out:?}");
    }
}
