//! `obs-metric-hygiene`: the metric namespace is a contract.
//!
//! Every metric family the workspace registers (`registry.counter(…)`,
//! `.gauge(…)`, `.histogram(…)`) must
//!
//! 1. pass its family name as a **string literal** — hygiene cannot
//!    verify a name that only exists at runtime;
//! 2. be registered at **exactly one** library call site — one place
//!    owns the name, the help text and the label schema (shared series
//!    are cloned from the owning handle, or the duplicate site carries
//!    a reasoned pragma);
//! 3. appear in the **Observability table of DESIGN.md** — and every
//!    family the table documents must exist in code. The docs and the
//!    scrape can never drift apart silently.
//!
//! Scope: library code outside test regions. Binaries, benches,
//! examples and tests consume metrics, they do not define them.

use super::{Finding, Severity};
use crate::source::{Role, SourceFile};
use std::collections::BTreeMap;

const NAME: &str = "obs-metric-hygiene";

const REGISTRATION: &[&str] = &[".counter(", ".gauge(", ".histogram("];

/// One registration call site.
#[derive(Debug)]
struct Site {
    rel: String,
    line: u32,
}

/// Runs the workspace-level hygiene check. `design` is the
/// workspace-relative path and content of DESIGN.md, when present.
pub fn check(files: &[SourceFile], design: Option<(&str, &str)>) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut sites: BTreeMap<String, Vec<Site>> = BTreeMap::new();

    for file in files {
        if file.role != Role::Lib {
            continue;
        }
        for pat in REGISTRATION {
            for off in super::find_all(&file.lexed.masked, pat) {
                let line = file.line_of_offset(off);
                if file.is_test_line(line) {
                    continue;
                }
                let open = off + pat.len();
                match first_arg_literal(file, open) {
                    Some(name) => sites.entry(name).or_default().push(Site {
                        rel: file.rel.clone(),
                        line,
                    }),
                    None => out.push(Finding::new(
                        NAME,
                        Severity::Error,
                        file,
                        line,
                        "metric family registered through a non-literal name; hygiene \
                         cannot check it — pass the family name as a string literal"
                            .to_string(),
                    )),
                }
            }
        }
    }

    let documented: BTreeMap<String, u32> = match design {
        Some((_, text)) => design_families(text),
        None => BTreeMap::new(),
    };

    for (name, family_sites) in &sites {
        if !documented.contains_key(name) {
            let s = &family_sites[0];
            out.push(Finding {
                lint: NAME,
                severity: Severity::Error,
                rel: s.rel.clone(),
                line: s.line,
                message: format!(
                    "metric family `{name}` is not documented in DESIGN.md's \
                     Observability table"
                ),
                also_allow_at: Vec::new(),
            });
        }
        for dup in &family_sites[1..] {
            out.push(Finding {
                lint: NAME,
                severity: Severity::Error,
                rel: dup.rel.clone(),
                line: dup.line,
                message: format!(
                    "metric family `{name}` is already registered at {}:{}; one site \
                     owns a family (clone the handle, or add a reasoned pragma)",
                    family_sites[0].rel, family_sites[0].line
                ),
                also_allow_at: Vec::new(),
            });
        }
    }

    if let Some((design_rel, _)) = design {
        for (name, line) in &documented {
            if !sites.contains_key(name) {
                out.push(Finding {
                    lint: NAME,
                    severity: Severity::Error,
                    rel: design_rel.to_string(),
                    line: *line,
                    message: format!(
                        "documented metric family `{name}` is never registered in \
                         workspace library code"
                    ),
                    also_allow_at: Vec::new(),
                });
            }
        }
    } else if !sites.is_empty() {
        if let Some(s) = sites.values().next().and_then(|v| v.first()) {
            out.push(Finding {
                lint: NAME,
                severity: Severity::Error,
                rel: s.rel.clone(),
                line: s.line,
                message: "workspace registers metric families but has no DESIGN.md \
                          Observability table documenting them"
                    .to_string(),
                also_allow_at: Vec::new(),
            });
        }
    }
    out
}

/// If the first argument of the call whose `(` content starts at
/// masked offset `open` is a string literal, returns its content.
fn first_arg_literal(file: &SourceFile, open: usize) -> Option<String> {
    let bytes = file.lexed.masked.as_bytes();
    let mut i = open;
    while i < bytes.len() && (bytes[i] as char).is_whitespace() {
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        return None;
    }
    file.lexed
        .strings
        .iter()
        .find(|s| s.offset == i)
        .map(|s| s.content.clone())
}

/// Family names (and their 1-based lines) from DESIGN.md's
/// Observability table: rows of the first markdown table under a
/// heading containing "Observability", first cell, backticks stripped,
/// any `{labels}` suffix removed.
fn design_families(text: &str) -> BTreeMap<String, u32> {
    let mut out = BTreeMap::new();
    let mut in_section = false;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with("## ") {
            in_section = line.contains("Observability");
            continue;
        }
        if !in_section || !line.starts_with('|') {
            continue;
        }
        let cell = line
            .trim_matches('|')
            .split('|')
            .next()
            .unwrap_or("")
            .trim();
        let cell = cell.trim_matches('`');
        let name = cell.split('{').next().unwrap_or("").trim();
        if name.is_empty()
            || name == "family"
            || name.bytes().all(|b| b == b'-' || b == b':')
            || !name
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
        {
            continue;
        }
        out.entry(name.to_string()).or_insert(i as u32 + 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const DESIGN: &str = "\
# Design

## Observability

| family | type | stage |
|--------|------|-------|
| `app_lines_total` | counter | router |
| `app_span_seconds{span}` | histogram | spans |
| `app_ghost_total` | counter | nowhere |
";

    fn files(src: &str) -> Vec<SourceFile> {
        vec![SourceFile::new("crates/obs/src/m.rs", src)]
    }

    #[test]
    fn clean_when_registered_once_and_documented() {
        let fs = files(
            "fn f(r: &Registry) {\n    r.counter(\"app_lines_total\", \"h\", &[]);\n    \
             r.histogram(\n        \"app_span_seconds\",\n        \"h\",\n        &[],\n    );\n}\n",
        );
        let out = check(&fs, Some(("DESIGN.md", DESIGN)));
        // Only the ghost family (documented, never registered) fires.
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("app_ghost_total"));
        assert_eq!(out[0].rel, "DESIGN.md");
    }

    #[test]
    fn flags_undocumented_duplicate_and_non_literal() {
        let fs = files(
            "fn f(r: &Registry, name: &str) {\n    r.counter(\"app_rogue_total\", \"h\", &[]);\n    \
             r.counter(\"app_lines_total\", \"h\", &[]);\n    \
             r.counter(\"app_lines_total\", \"h\", &[]);\n    r.counter(name, \"h\", &[]);\n}\n",
        );
        let out = check(&fs, Some(("DESIGN.md", DESIGN)));
        let msgs: Vec<&str> = out.iter().map(|f| f.message.as_str()).collect();
        assert!(
            msgs.iter().any(|m| m.contains("app_rogue_total")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("already registered")),
            "{msgs:?}"
        );
        assert!(msgs.iter().any(|m| m.contains("non-literal")), "{msgs:?}");
    }

    #[test]
    fn test_regions_and_non_lib_roles_are_ignored() {
        let mut fs = files(
            "#[cfg(test)]\nmod tests {\n fn f(r: &R) { r.counter(\"x_total\", \"\", &[]); }\n}\n",
        );
        fs.push(SourceFile::new(
            "crates/bench/src/bin/b.rs",
            "fn main() { global().counter(\"y_total\", \"\", &[]); }\n",
        ));
        let out = check(&fs, Some(("DESIGN.md", "## Observability\n")));
        assert!(out.is_empty(), "{out:?}");
    }
}
