//! `lock-channel-hold`: a heuristic ordering check for the pipeline's
//! concurrency layers.
//!
//! The obs registry and the ingest aggregator both hand out
//! `Mutex`/`RwLock` guards; blocking on a channel or doing file/socket
//! I/O while one is live is how the pipeline deadlocks (a worker
//! blocked in `send` while holding the lock its peer needs to drain).
//!
//! Heuristic, line-oriented scope tracking over the masked view:
//!
//! * a **guard** is born at `let g = ….lock()` / `….read()` /
//!   `….write()` (no-argument forms — the `RwLock` API; `io::Read`
//!   and `io::Write` methods all take arguments);
//! * it dies when the surrounding brace depth drops below the depth at
//!   the binding, or at an explicit `drop(g)`;
//! * while at least one guard is live, any blocking operation
//!   (`.send(`, `.recv()`, `.recv_timeout(`, `.accept()`,
//!   `.write_all(`, `.flush()`, `.read_line(`, `.read_exact(`,
//!   `.read_to_end(`, `File::open`, `File::create`) is flagged.
//!
//! A pragma on the **acquisition line** blesses the whole guard scope —
//! the idiom for locks whose very purpose is serializing a writer
//! (the obs journal's sink lock).

use super::{code_lines, is_hot_path, Finding, Severity};
use crate::source::SourceFile;

const NAME: &str = "lock-channel-hold";

const ACQUIRE: &[&str] = &[".lock()", ".read()", ".write()"];

const BLOCKING: &[(&str, &str)] = &[
    (".send(", "channel send"),
    (".recv()", "channel recv"),
    (".recv_timeout(", "channel recv"),
    (".accept()", "socket accept"),
    (".write_all(", "write I/O"),
    (".flush()", "flush I/O"),
    (".read_line(", "read I/O"),
    (".read_exact(", "read I/O"),
    (".read_to_end(", "read I/O"),
    ("File::open", "file open"),
    ("File::create", "file create"),
];

struct Guard {
    ident: String,
    line: u32,
    depth: i32,
}

/// Runs the lint over one file.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    if !is_hot_path(file) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut depth: i32 = 0;
    let mut guards: Vec<Guard> = Vec::new();
    for (n, line) in code_lines(file) {
        let opens = line.bytes().filter(|&b| b == b'{').count() as i32;
        let closes = line.bytes().filter(|&b| b == b'}').count() as i32;
        let depth_after = depth + opens - closes;

        // Retire guards whose scope closed (or that are dropped here).
        guards.retain(|g| depth_after >= g.depth && !line.contains(&format!("drop({})", g.ident)));

        // Blocking ops while any guard is live. The acquisition line
        // itself is exempt (`.lock()` chained into a single statement
        // releases the temporary at the semicolon).
        let acquired_here = ACQUIRE.iter().any(|p| line.contains(p));
        if !guards.is_empty() && !acquired_here {
            for (pat, what) in BLOCKING {
                if line.contains(pat) {
                    let g = &guards[guards.len() - 1];
                    let mut f = Finding::new(
                        NAME,
                        Severity::Warn,
                        file,
                        n,
                        format!(
                            "blocking {what} while guard `{}` (acquired line {}) is held; \
                             drop the guard first or bless the acquisition with a pragma",
                            g.ident, g.line
                        ),
                    );
                    f.also_allow_at = guards.iter().map(|g| g.line).collect();
                    out.push(f);
                }
            }
        }

        // New guard: a `let` binding whose initializer acquires.
        if acquired_here {
            if let Some(ident) = let_ident(line) {
                guards.push(Guard {
                    ident,
                    line: n,
                    depth: depth_after,
                });
            }
        }
        depth = depth_after;
    }
    out
}

/// The bound identifier of a `let` statement on `line`, if any.
fn let_ident(line: &str) -> Option<String> {
    let after = line.split("let ").nth(1)?;
    let after = after
        .trim_start()
        .strip_prefix("mut ")
        .unwrap_or(after.trim_start());
    let ident: String = after
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if ident.is_empty() {
        None
    } else {
        Some(ident)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot(src: &str) -> Vec<Finding> {
        check(&SourceFile::new("crates/obs/src/x.rs", src))
    }

    #[test]
    fn flags_send_under_live_guard() {
        let f = hot("fn f() {\n    let g = state.lock().unwrap();\n    tx.send(g.item).ok();\n}\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("`g`"));
        assert_eq!(f[0].also_allow_at, vec![2]);
    }

    #[test]
    fn guard_scope_end_and_drop_release() {
        let scoped = hot(
            "fn f() {\n    {\n        let g = state.lock().unwrap();\n    }\n    tx.send(1).ok();\n}\n",
        );
        assert!(scoped.is_empty(), "{scoped:?}");
        let dropped = hot(
            "fn f() {\n    let g = state.lock().unwrap();\n    drop(g);\n    tx.send(1).ok();\n}\n",
        );
        assert!(dropped.is_empty(), "{dropped:?}");
    }

    #[test]
    fn single_statement_chains_and_try_send_are_fine() {
        let f = hot("fn f() {\n    state.lock().unwrap().push(1);\n    tx.try_send(1).ok();\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }
}
