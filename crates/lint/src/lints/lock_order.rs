//! `lock-order-cycle`: potential deadlocks from inconsistent lock
//! acquisition order, detected across the whole workspace.
//!
//! Per-function acquisition sequences come from [`crate::flow`] (guard
//! scope tracking shared with `lock-channel-hold`); this lint
//! propagates *"calling `f` may acquire lock L"* over the call graph,
//! builds the lock-order graph — an edge `A → B` means some thread can
//! hold `A` while acquiring `B` — and reports every cycle with the full
//! witness path: which functions, in which files, acquire the locks in
//! conflicting order.
//!
//! Lock identity is the normalized receiver text. An uppercase-headed
//! receiver (`REGISTRY`, `JOURNAL.inner`) names a static — one lock
//! workspace-wide, so acquisitions from different crates connect into
//! one graph node. A lowercase receiver (`self.inner`, `shards[i]`) is
//! scoped to its file (`crates/obs/src/registry.rs::inner`), so two
//! different structs whose fields are both called `inner` are never
//! conflated.

use super::{Finding, Severity};
use crate::analysis::FileAnalysis;
use crate::callgraph::{FnRef, Graph};
use std::collections::{BTreeMap, BTreeSet, HashMap};

const NAME: &str = "lock-order-cycle";

/// A workspace-scoped lock identity: `file::receiver`.
type LockId = String;

/// How calling a function can end up acquiring a lock.
#[derive(Clone)]
struct AcqPath {
    /// Call hops, rendered `name (file:line)` each.
    chain: Vec<String>,
    /// Acquisition site.
    rel: String,
    line: u32,
}

/// One lock-order edge `A → B` with its witness.
struct Edge {
    to: LockId,
    /// Function whose body holds `A` while reaching `B`.
    via_fn: String,
    hold_rel: String,
    hold_line: u32,
    /// Call hops from the holder down to the acquisition of `B`.
    steps: Vec<String>,
    acq_rel: String,
    acq_line: u32,
}

fn lock_id(rel: &str, local: &str) -> LockId {
    // Uppercase head → a static, one lock workspace-wide; anything
    // else (fields, locals, index expressions) is file-scoped.
    if local.as_bytes().first().is_some_and(u8::is_ascii_uppercase) {
        local.to_string()
    } else {
        format!("{rel}::{local}")
    }
}

/// Runs the lint over the analyzed workspace.
pub fn check(analyses: &[FileAnalysis], graph: &Graph) -> Vec<Finding> {
    let locksets = lockset_fixpoint(analyses, graph);

    // Build the lock-order graph. First edge per (A, B) wins, which is
    // deterministic because files and functions are walked in order.
    let mut edges: BTreeMap<(LockId, LockId), Edge> = BTreeMap::new();
    let mut add = |from: LockId, e: Edge| {
        edges.entry((from, e.to.clone())).or_insert(e);
    };
    for (fi, a) in analyses.iter().enumerate() {
        for (fj, f) in a.flow.iter().enumerate() {
            // Local pairs: guard A still live at acquire B.
            for &(ai, bi) in &f.lock_pairs {
                let (aa, bb) = (&f.acquires[ai as usize], &f.acquires[bi as usize]);
                add(
                    lock_id(&a.rel, &aa.id),
                    Edge {
                        to: lock_id(&a.rel, &bb.id),
                        via_fn: f.name.clone(),
                        hold_rel: a.rel.clone(),
                        hold_line: aa.line,
                        steps: Vec::new(),
                        acq_rel: a.rel.clone(),
                        acq_line: bb.line,
                    },
                );
            }
            // Calls under a live guard: everything the callee may
            // acquire is acquired while holding the guard.
            for (ci, callee) in graph.callees((fi, fj)) {
                let call = &f.calls[*ci];
                if call.locks_held.is_empty() {
                    continue;
                }
                let Some(set) = locksets.get(callee) else {
                    continue;
                };
                let target = &analyses[callee.0].flow[callee.1];
                for (lock, path) in set {
                    for &held in &call.locks_held {
                        let held_acq = &f.acquires[held as usize];
                        let mut steps =
                            vec![format!("calls `{}` ({}:{})", target.name, a.rel, call.line)];
                        steps.extend(path.chain.iter().cloned());
                        add(
                            lock_id(&a.rel, &held_acq.id),
                            Edge {
                                to: lock.clone(),
                                via_fn: f.name.clone(),
                                hold_rel: a.rel.clone(),
                                hold_line: held_acq.line,
                                steps,
                                acq_rel: path.rel.clone(),
                                acq_line: path.line,
                            },
                        );
                    }
                }
            }
        }
    }

    // Cycle detection: DFS from every node in sorted order; canonical
    // rotation dedupes each cycle.
    let mut adj: BTreeMap<&LockId, Vec<&(LockId, LockId)>> = BTreeMap::new();
    for key in edges.keys() {
        adj.entry(&key.0).or_default().push(key);
    }
    let mut seen_cycles: BTreeSet<Vec<LockId>> = BTreeSet::new();
    let mut out = Vec::new();
    let nodes: Vec<&LockId> = adj.keys().copied().collect();
    for &start in &nodes {
        let mut stack: Vec<&LockId> = vec![start];
        let mut on_stack: BTreeSet<&LockId> = [start].into();
        dfs(
            start,
            &adj,
            &mut stack,
            &mut on_stack,
            &mut seen_cycles,
            &edges,
            &mut out,
        );
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn dfs<'a>(
    node: &'a LockId,
    adj: &BTreeMap<&'a LockId, Vec<&'a (LockId, LockId)>>,
    stack: &mut Vec<&'a LockId>,
    on_stack: &mut BTreeSet<&'a LockId>,
    seen: &mut BTreeSet<Vec<LockId>>,
    edges: &BTreeMap<(LockId, LockId), Edge>,
    out: &mut Vec<Finding>,
) {
    for key in adj.get(node).map(Vec::as_slice).unwrap_or(&[]) {
        let next = &key.1;
        if on_stack.contains(next) {
            // Cycle: the stack slice from `next` to the top.
            let pos = stack.iter().position(|n| *n == next).unwrap_or(0);
            let cycle: Vec<LockId> = stack[pos..].iter().map(|s| (*s).clone()).collect();
            if seen.insert(canonical(&cycle)) {
                out.push(report(&cycle, edges));
            }
            continue;
        }
        if adj.contains_key(next) {
            stack.push(next);
            on_stack.insert(next);
            dfs(next, adj, stack, on_stack, seen, edges, out);
            stack.pop();
            on_stack.remove(next);
        }
    }
}

/// Rotates a cycle so its lexicographically smallest node leads.
fn canonical(cycle: &[LockId]) -> Vec<LockId> {
    let min = cycle
        .iter()
        .enumerate()
        .min_by_key(|(_, s)| s.as_str())
        .map(|(i, _)| i)
        .unwrap_or(0);
    cycle[min..].iter().chain(&cycle[..min]).cloned().collect()
}

/// Renders one cycle as a finding anchored at the first edge's hold
/// site, with every edge's witness path in the message.
fn report(cycle: &[LockId], edges: &BTreeMap<(LockId, LockId), Edge>) -> Finding {
    let cycle = canonical(cycle);
    let ring: Vec<String> = cycle
        .iter()
        .chain(cycle.first())
        .map(|l| format!("`{l}`"))
        .collect();
    let mut witnesses = Vec::new();
    let mut anchor: Option<&Edge> = None;
    let mut extra_anchors = Vec::new();
    for (i, from) in cycle.iter().enumerate() {
        let to = &cycle[(i + 1) % cycle.len()];
        let Some(e) = edges.get(&(from.clone(), to.clone())) else {
            continue;
        };
        let steps = if e.steps.is_empty() {
            String::from("then")
        } else {
            format!("then {} which", e.steps.join(" which "))
        };
        witnesses.push(format!(
            "`{}` holds `{from}` (acquired {}:{}) {steps} acquires `{to}` ({}:{})",
            e.via_fn, e.hold_rel, e.hold_line, e.acq_rel, e.acq_line,
        ));
        match anchor {
            None => anchor = Some(e),
            Some(a) if e.hold_rel == a.hold_rel => extra_anchors.push(e.hold_line),
            _ => {}
        }
    }
    let (rel, line) = anchor
        .map(|e| (e.hold_rel.clone(), e.hold_line))
        .unwrap_or_default();
    let mut also = extra_anchors;
    also.sort_unstable();
    also.dedup();
    Finding {
        lint: NAME,
        severity: Severity::Warn,
        rel,
        line,
        message: format!(
            "potential deadlock: lock-order cycle {}; {}",
            ring.join(" -> "),
            witnesses.join("; "),
        ),
        also_allow_at: also,
    }
}

/// Fixpoint over the call graph: for each function, which locks can be
/// acquired by calling it, and through which call chain. Chains cap at
/// five hops; `BTreeMap` keys keep iteration deterministic.
fn lockset_fixpoint(
    analyses: &[FileAnalysis],
    graph: &Graph,
) -> HashMap<FnRef, BTreeMap<LockId, AcqPath>> {
    let mut sets: HashMap<FnRef, BTreeMap<LockId, AcqPath>> = HashMap::new();
    for (fi, a) in analyses.iter().enumerate() {
        for (fj, f) in a.flow.iter().enumerate() {
            let mut set = BTreeMap::new();
            for acq in &f.acquires {
                set.entry(lock_id(&a.rel, &acq.id)).or_insert(AcqPath {
                    chain: Vec::new(),
                    rel: a.rel.clone(),
                    line: acq.line,
                });
            }
            sets.insert((fi, fj), set);
        }
    }
    loop {
        let mut changed = false;
        for (fi, a) in analyses.iter().enumerate() {
            for (fj, f) in a.flow.iter().enumerate() {
                let mut additions: Vec<(LockId, AcqPath)> = Vec::new();
                for (ci, callee) in graph.callees((fi, fj)) {
                    let Some(set) = sets.get(callee) else {
                        continue;
                    };
                    let own = &sets[&(fi, fj)];
                    let call = &f.calls[*ci];
                    let target = &analyses[callee.0].flow[callee.1];
                    for (lock, path) in set {
                        if own.contains_key(lock)
                            || additions.iter().any(|(l, _)| l == lock)
                            || path.chain.len() >= 5
                        {
                            continue;
                        }
                        let mut chain =
                            vec![format!("calls `{}` ({}:{})", target.name, a.rel, call.line)];
                        chain.extend(path.chain.iter().cloned());
                        additions.push((
                            lock.clone(),
                            AcqPath {
                                chain,
                                rel: path.rel.clone(),
                                line: path.line,
                            },
                        ));
                    }
                }
                if !additions.is_empty() {
                    let own = sets.get_mut(&(fi, fj)).expect("initialized above");
                    for (lock, path) in additions {
                        own.entry(lock).or_insert(path);
                    }
                    changed = true;
                }
            }
        }
        if !changed {
            return sets;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::callgraph;

    fn lint(files: &[(&str, &str)]) -> Vec<Finding> {
        let analyses: Vec<FileAnalysis> =
            files.iter().map(|(rel, text)| analyze(rel, text)).collect();
        let graph = callgraph::build(&analyses);
        check(&analyses, &graph)
    }

    #[test]
    fn cross_file_cycle_is_reported_with_witness() {
        let f = lint(&[
            (
                "crates/obs/src/a.rs",
                "pub fn forward() {\n    let g = REG.lock().unwrap();\n    take_journal();\n    \
                 drop(g);\n}\n",
            ),
            (
                "crates/store/src/b.rs",
                "pub fn take_journal() {\n    let j = JOURNAL.lock().unwrap();\n    drop(j);\n}\n\
                 pub fn backward() {\n    let j = JOURNAL.lock().unwrap();\n    \
                 let g = REG.lock().unwrap();\n    use_both(&j, &g);\n}\n",
            ),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        let m = &f[0].message;
        assert!(m.contains("lock-order cycle"), "{m}");
        assert!(m.contains("`REG`") && m.contains("`JOURNAL`"), "{m}");
        assert!(
            m.contains("calls `take_journal` (crates/obs/src/a.rs:3)"),
            "{m}"
        );
        assert!(m.contains("(crates/store/src/b.rs:2)"), "{m}");
        assert!(m.contains("`backward` holds"), "{m}");
    }

    #[test]
    fn consistent_order_is_clean() {
        let f = lint(&[(
            "crates/obs/src/a.rs",
            "pub fn one() {\n    let a = A.lock().unwrap();\n    let b = B.lock().unwrap();\n    \
             use_both(&a, &b);\n}\npub fn two() {\n    let a = A.lock().unwrap();\n    \
             let b = B.lock().unwrap();\n    use_both(&a, &b);\n}\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn same_receiver_name_in_different_files_is_not_conflated() {
        // Both files guard a field called `inner`; opposite local order
        // would look like a cycle if identities were merged.
        let f = lint(&[
            (
                "crates/obs/src/a.rs",
                "pub fn x(&self) {\n    let a = self.inner.lock().unwrap();\n    \
                 let b = self.other.lock().unwrap();\n    go(&a, &b);\n}\n",
            ),
            (
                "crates/store/src/b.rs",
                "pub fn y(&self) {\n    let b = self.other.lock().unwrap();\n    \
                 let a = self.inner.lock().unwrap();\n    go2(&b, &a);\n}\n",
            ),
        ]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn recursive_self_acquisition_is_reported() {
        let f = lint(&[(
            "crates/store/src/a.rs",
            "pub fn twice() {\n    let a = STATE.lock().unwrap();\n    \
             let b = STATE.lock().unwrap();\n    go(&a, &b);\n}\n",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("STATE"), "{}", f[0].message);
    }
}
