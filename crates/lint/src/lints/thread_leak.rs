//! `thread-leak`: every spawned thread has a joining owner.
//!
//! The store's compactor, the obs metrics server and the ingest shard
//! workers are all long-lived `thread::spawn` / `thread::Builder`
//! threads — and each is joined on shutdown, which is exactly what
//! keeps SIGTERM clean and test runs deterministic. This lint makes
//! that a checked contract: a spawn's `JoinHandle` must either
//!
//! * be **joined inside the spawning function**,
//! * **escape** (returned, stored in a struct, pushed to a vec) into a
//!   file that demonstrably joins handles somewhere (`.join(` on a
//!   non-test line — the `Drop`/`stop()` owner pattern), or
//! * carry a reasoned `lint:allow(thread-leak)` pragma documenting an
//!   intentional detach.
//!
//! Scoped threads (`thread::scope`'s `scope.spawn`) join themselves and
//! are exempt, as are `Command::spawn` child processes (the jobs
//! coordinator reaps those through its scheduler).

use super::{find_all, Finding, Severity};
use crate::flow::FnFlow;
use crate::source::{Role, SourceFile};

const NAME: &str = "thread-leak";

/// Runs the lint over one file's flow summaries.
pub fn check(file: &SourceFile, flows: &[FnFlow]) -> Vec<Finding> {
    if file.role != Role::Lib {
        return Vec::new();
    }
    let masked = &file.lexed.masked;
    let file_has_join = (1..=file.line_count() as u32)
        .any(|n| !file.is_test_line(n) && file.masked_line(n).contains(".join("));

    let mut out = Vec::new();
    for flow in flows {
        let (start, end) = flow.body_span;
        if end <= start || end > masked.len() {
            continue;
        }
        let body = &masked[start..end];
        let mut sites: Vec<usize> = find_all(body, "thread::spawn(")
            .into_iter()
            .map(|o| start + o + "thread::spawn".len())
            .collect();
        for o in find_all(body, ".spawn(") {
            let abs = start + o;
            let stmt = statement_before(masked, abs);
            if stmt.contains("Command") {
                continue; // child process, reaped elsewhere
            }
            if !stmt.contains("thread::Builder") && !stmt.contains("thread::spawn") {
                continue; // scoped spawn or unrelated `.spawn(` method
            }
            sites.push(abs + ".spawn".len());
        }
        sites.sort_unstable();
        sites.dedup();
        for open in sites {
            if let Some(f) = judge_site(file, flow, open, file_has_join) {
                out.push(f);
            }
        }
    }
    out
}

/// Examines one spawn call (its `(` at `open`) and returns a finding
/// when the handle provably leaks.
fn judge_site(
    file: &SourceFile,
    flow: &FnFlow,
    open: usize,
    file_has_join: bool,
) -> Option<Finding> {
    let masked = &file.lexed.masked;
    let line = file.line_of_offset(open);
    if file.is_test_line(line) {
        return None;
    }
    let stmt = statement_before(masked, open);
    let finding = |msg: String| {
        let mut f = Finding::new(NAME, Severity::Warn, file, line, msg);
        f.also_allow_at = vec![flow.start_line];
        Some(f)
    };

    // `handles.push(thread::Builder…spawn(…))` — the handle escapes
    // into a collection; require a join somewhere in this file.
    if stmt.contains(".push(") {
        if file_has_join {
            return None;
        }
        return finding(format!(
            "thread handle spawned in `{}` escapes into a collection, but nothing in \
             this file ever joins (`.join(`); join the handles on shutdown or bless an \
             intentional detach with a pragma",
            flow.name
        ));
    }

    // `let handle = …spawn(…)` — track the binding through the rest of
    // the function body.
    if let Some(ident) = let_binding(&stmt) {
        let rest = &masked[open..flow.body_span.1.min(masked.len())];
        let mut seen = false;
        for occ in ident_sites(rest, &ident) {
            seen = true;
            if rest[occ + ident.len()..].trim_start().starts_with(".join(") {
                return None; // joined in-function
            }
        }
        if seen {
            // Escapes (returned, stored in a struct, moved elsewhere).
            if file_has_join {
                return None;
            }
            return finding(format!(
                "thread handle `{ident}` escapes `{}`, but nothing in this file ever \
                 joins (`.join(`); give the handle a joining owner or bless an \
                 intentional detach with a pragma",
                flow.name
            ));
        }
        return finding(format!(
            "thread handle `{ident}` is never joined and never escapes `{}`; the \
             thread detaches when the handle drops — join it or bless an intentional \
             detach with a pragma",
            flow.name
        ));
    }

    // Neither a binding nor a push: follow the call chain forward. A
    // `;` terminator drops the handle on the floor; anything else
    // (tail expression, struct field, argument) escapes.
    match chain_terminator(masked, open) {
        Some(b';') => finding(format!(
            "spawned thread's JoinHandle is discarded in `{}`; the thread detaches \
             immediately — bind and join it, or bless an intentional detach with a \
             pragma",
            flow.name
        )),
        _ => {
            if file_has_join {
                None
            } else {
                finding(format!(
                    "thread handle escapes `{}` as an expression, but nothing in this \
                     file ever joins (`.join(`); give it a joining owner or bless an \
                     intentional detach with a pragma",
                    flow.name
                ))
            }
        }
    }
}

/// The statement text strictly before `off` (back to the nearest `;`,
/// `{` or `}`).
fn statement_before(masked: &str, off: usize) -> String {
    let bytes = masked.as_bytes();
    let mut i = off;
    while i > 0 && !matches!(bytes[i - 1], b';' | b'{' | b'}') {
        i -= 1;
    }
    masked[i..off].to_string()
}

/// The `let` identifier opening `stmt`, if the statement is a binding.
fn let_binding(stmt: &str) -> Option<String> {
    let t = stmt.trim_start();
    let after = t.strip_prefix("let ")?;
    let after = after.trim_start();
    let after = after.strip_prefix("mut ").unwrap_or(after);
    let ident: String = after
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if ident.is_empty() {
        None
    } else {
        Some(ident)
    }
}

/// Word-boundary occurrences of `ident` in `hay`.
fn ident_sites(hay: &str, ident: &str) -> Vec<usize> {
    let bytes = hay.as_bytes();
    find_all(hay, ident)
        .into_iter()
        .filter(|&o| {
            let before = o == 0 || !(bytes[o - 1].is_ascii_alphanumeric() || bytes[o - 1] == b'_');
            let after = o + ident.len();
            let after_ok = after >= bytes.len()
                || !(bytes[after].is_ascii_alphanumeric() || bytes[after] == b'_');
            before && after_ok
        })
        .collect()
}

/// Follows the method chain after the call whose `(` sits at `open`
/// (`.name(…)`, `?`) and returns the terminating byte.
fn chain_terminator(masked: &str, open: usize) -> Option<u8> {
    let bytes = masked.as_bytes();
    let mut j = close_paren(bytes, open) + 1;
    loop {
        while j < bytes.len() && (bytes[j] as char).is_whitespace() {
            j += 1;
        }
        match bytes.get(j) {
            Some(b'?') => j += 1,
            Some(b'.') => {
                j += 1;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                if bytes.get(j) == Some(&b'(') {
                    j = close_paren(bytes, j) + 1;
                }
            }
            other => return other.copied(),
        }
    }
}

fn close_paren(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < bytes.len() {
        match bytes[j] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    bytes.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow;

    fn lint(src: &str) -> Vec<Finding> {
        let file = SourceFile::new("crates/obs/src/x.rs", src);
        let flows = flow::extract(&file);
        check(&file, &flows)
    }

    #[test]
    fn discarded_handle_is_flagged() {
        let f = lint("fn f() {\n    std::thread::spawn(|| work());\n}\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("discarded"), "{}", f[0].message);
        assert_eq!(f[0].also_allow_at, vec![1]);
    }

    #[test]
    fn joined_and_escaping_handles_are_clean() {
        let joined =
            lint("fn f() {\n    let h = std::thread::spawn(work);\n    h.join().ok();\n}\n");
        assert!(joined.is_empty(), "{joined:?}");
        let escaping = lint(
            "fn f() -> Server {\n    let h = std::thread::Builder::new().spawn(work).unwrap();\n    \
             Server { h: Some(h) }\n}\nimpl Server {\n    fn stop(&mut self) {\n        \
             if let Some(h) = self.h.take() { let _ = h.join(); }\n    }\n}\n",
        );
        assert!(escaping.is_empty(), "{escaping:?}");
    }

    #[test]
    fn bound_but_never_joined_is_flagged() {
        let f = lint("fn f() {\n    let h = std::thread::spawn(work);\n    other();\n}\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`h`"), "{}", f[0].message);
    }

    #[test]
    fn scoped_and_process_spawns_are_exempt() {
        let f = lint(
            "fn f() {\n    std::thread::scope(|scope| {\n        scope.spawn(|| work());\n    });\n    \
             let child = std::process::Command::new(\"x\").spawn().unwrap();\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn tail_expression_handle_escapes_cleanly_when_file_joins() {
        let f = lint(
            "fn start() -> JoinHandle<()> {\n    let t = {\n        let cfg = 1;\n        \
             std::thread::Builder::new().spawn(move || run(cfg)).unwrap()\n    };\n    t\n}\n\
             fn stop(h: JoinHandle<()>) { let _ = h.join(); }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
