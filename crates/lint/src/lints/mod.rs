//! The lint catalog.
//!
//! Each lint is a function from source files to [`Finding`]s; the
//! runner in [`crate::run_files`] applies pragma suppression and
//! ordering. Scope conventions shared by several lints:
//!
//! * **hot-path crates** — `parsers`, `ingest`, `obs`, `store`, `jobs`,
//!   plus `crates/core/src/parallel.rs` (the parallel driver): the code
//!   the streaming pipeline and the parallel driver execute per
//!   line/batch (the store sits on the per-batch durability path; the
//!   jobs coordinator supervises long-running work and must never
//!   panic mid-job).
//! * Only [`Role::Lib`](crate::source::Role::Lib) code outside
//!   `#[cfg(test)]` regions is checked unless a lint says otherwise —
//!   tests, benches, examples and binaries may panic and time freely.

pub mod durability;
pub mod hot_alloc;
pub mod lock_hold;
pub mod lock_order;
pub mod metric_hygiene;
pub mod panic_freedom;
pub mod pragmas;
pub mod thread_leak;
pub mod timing;
pub mod unsafe_allowlist;

use crate::source::{Role, SourceFile};

/// How a finding counts toward the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Reported; fatal only under `--deny warnings`.
    Warn,
    /// Always fatal.
    Error,
}

impl Severity {
    /// Lowercase label used in both output formats.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warn => "warning",
            Severity::Error => "error",
        }
    }
}

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Lint name (kebab-case, as accepted by `lint:allow`).
    pub lint: &'static str,
    /// Severity before any `--deny` promotion.
    pub severity: Severity,
    /// Workspace-relative path.
    pub rel: String,
    /// 1-based line.
    pub line: u32,
    /// Human explanation.
    pub message: String,
    /// Extra anchor lines whose pragmas also suppress this finding
    /// (e.g. a lock guard's acquisition line).
    pub also_allow_at: Vec<u32>,
}

impl Finding {
    pub(crate) fn new(
        lint: &'static str,
        severity: Severity,
        file: &SourceFile,
        line: u32,
        message: String,
    ) -> Finding {
        Finding {
            lint,
            severity,
            rel: file.rel.clone(),
            line,
            message,
            also_allow_at: Vec::new(),
        }
    }
}

/// Every lint name `lint:allow` accepts, with its default severity and
/// one-line description — the catalog `--list` prints.
pub const CATALOG: &[(&str, Severity, &str)] = &[
    (
        "panic-freedom",
        Severity::Error,
        "no unwrap/expect/panic!/literal slice index in hot-path crates",
    ),
    (
        "unsafe-allowlist",
        Severity::Error,
        "unsafe only in ingest/src/signal.rs; crate roots must forbid unsafe_code",
    ),
    (
        "lock-channel-hold",
        Severity::Warn,
        "no blocking send/recv or I/O while a Mutex/RwLock guard is live",
    ),
    (
        "obs-metric-hygiene",
        Severity::Error,
        "metric families: literal names, one registration site, documented in DESIGN.md",
    ),
    (
        "timing-discipline",
        Severity::Warn,
        "Instant::now() only inside the obs/criterion instrumentation layers",
    ),
    (
        "hot-path-string-alloc",
        Severity::Warn,
        "no to_string/String::from/format! in loop bodies of parsers or the parallel driver",
    ),
    (
        "lock-order-cycle",
        Severity::Warn,
        "no lock-order cycles across the workspace call graph (potential deadlock)",
    ),
    (
        "durability-discipline",
        Severity::Error,
        "create/write->rename publish paths fsync file and directory, or name their flush tier",
    ),
    (
        "thread-leak",
        Severity::Warn,
        "every thread::spawn/Builder::spawn handle is joined or carries a reasoned detach pragma",
    ),
    (
        "bad-pragma",
        Severity::Error,
        "lint:allow pragmas must name a known lint and carry a reason",
    ),
];

/// True when `name` is a lint `lint:allow` may reference.
pub fn known_lint(name: &str) -> bool {
    CATALOG.iter().any(|(n, _, _)| *n == name)
}

/// The catalog's `&'static str` for `name`, used when rehydrating
/// findings from the analysis cache.
pub fn static_name(name: &str) -> Option<&'static str> {
    CATALOG
        .iter()
        .find(|(n, _, _)| *n == name)
        .map(|(n, _, _)| *n)
}

/// Hot-path scope shared by panic-freedom and lock-channel-hold.
pub fn is_hot_path(file: &SourceFile) -> bool {
    if file.role != Role::Lib {
        return false;
    }
    matches!(
        file.crate_name.as_str(),
        "parsers" | "ingest" | "obs" | "store" | "jobs"
    ) || file.rel == "crates/core/src/parallel.rs"
}

/// Yields `(line_no, masked_line)` for every non-test line of `file`.
pub fn code_lines(file: &SourceFile) -> impl Iterator<Item = (u32, &str)> + '_ {
    (1..=file.line_count() as u32)
        .filter(|&n| !file.is_test_line(n))
        .map(|n| (n, file.masked_line(n)))
}

/// Byte positions of every occurrence of `pat` in `hay`.
pub fn find_all(hay: &str, pat: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = hay[from..].find(pat) {
        out.push(from + p);
        from += p + pat.len();
    }
    out
}
