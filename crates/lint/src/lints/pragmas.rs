//! `bad-pragma`: the suppression mechanism polices itself.
//!
//! A `lint:allow` that names an unknown lint, or carries no reason, is
//! an error — otherwise the baseline silently rots into a pile of
//! unexplained exemptions.

use super::{known_lint, Finding, Severity};
use crate::source::SourceFile;

const NAME: &str = "bad-pragma";

/// Validates every pragma in `file`.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for p in &file.pragmas {
        if !known_lint(&p.lint) {
            out.push(Finding::new(
                NAME,
                Severity::Error,
                file,
                p.line,
                format!(
                    "pragma names unknown lint `{}`; run `logparse-lint --list` for \
                     the catalog",
                    p.lint
                ),
            ));
        } else if p.reason.trim().is_empty() {
            out.push(Finding::new(
                NAME,
                Severity::Error,
                file,
                p.line,
                format!(
                    "pragma for `{}` has no reason; write \
                     `lint:allow({}): <why this site is sound>`",
                    p.lint, p.lint
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_lint_and_missing_reason_are_errors() {
        let f = check(&SourceFile::new(
            "crates/core/src/x.rs",
            "// lint:allow(no-such-lint): whatever\n// lint:allow(panic-freedom)\n\
             // lint:allow(panic-freedom): a real reason\n",
        ));
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f[0].message.contains("unknown lint"));
        assert!(f[1].message.contains("no reason"));
    }
}
