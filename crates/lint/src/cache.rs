//! Incremental analysis cache.
//!
//! Every [`FileAnalysis`] is a pure function of one file's path and
//! content, so it caches perfectly: entries live under
//! `target/lint-cache` as `<fnv(rel)>-<fnv(content)>.<version>`, one file per
//! source file. **Invalidation rule:** the content hash *is* the key —
//! an edited file simply misses (its stale sibling entries, same `rel`
//! hash with a different content hash, are pruned on write), and the
//! format version suffix retires every entry at once when the
//! serialization or the lint set changes shape.
//!
//! The workspace passes (call graph, lock graph, durability, metric
//! cross-check, suppression) always run — they are cross-file by
//! nature — but they are cheap next to lexing and line-local linting,
//! which is what a warm cache skips.
//!
//! The format is a line-oriented TSV; any parse anomaly (truncated
//! entry, unknown lint name, wrong field count) makes [`load`] return
//! `None` and the file is re-analyzed — a corrupt cache can cost time,
//! never correctness.

use crate::analysis::{FileAnalysis, PragmaInfo};
use crate::flow::{CallSite, FnFlow, LockAcquire};
use crate::lints::metric_hygiene::{MetricKind, MetricSite};
use crate::lints::{static_name, Finding, Severity};
use crate::source::Role;
use std::path::{Path, PathBuf};

/// Bump to retire every existing cache entry.
const VERSION: &str = "v2";

/// FNV-1a 64-bit, the key hash (stable across runs and platforms).
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn entry_path(dir: &Path, rel: &str, text: &str) -> PathBuf {
    dir.join(format!(
        "{:016x}-{:016x}.{VERSION}",
        fnv1a(rel.as_bytes()),
        fnv1a(text.as_bytes())
    ))
}

/// Loads the cached analysis for `(rel, text)`, or `None` on miss or
/// any deserialization anomaly.
pub fn load(dir: &Path, rel: &str, text: &str) -> Option<FileAnalysis> {
    let data = std::fs::read_to_string(entry_path(dir, rel, text)).ok()?;
    deserialize(rel, &data)
}

/// Writes the analysis back and prunes stale entries of the same file
/// (same `rel` hash, different content hash).
pub fn save(dir: &Path, rel: &str, text: &str, a: &FileAnalysis) {
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = entry_path(dir, rel, text);
    let prefix = format!("{:016x}-", fnv1a(rel.as_bytes()));
    if let Ok(rd) = std::fs::read_dir(dir) {
        for e in rd.flatten() {
            let name = e.file_name();
            let name = name.to_string_lossy();
            if name.starts_with(&prefix) && e.path() != path {
                let _ = std::fs::remove_file(e.path());
            }
        }
    }
    let _ = std::fs::write(&path, serialize(a));
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('\t', "\\t")
        .replace('\n', "\\n")
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

fn csv(v: &[u32]) -> String {
    v.iter().map(u32::to_string).collect::<Vec<_>>().join(",")
}

fn uncsv(s: &str) -> Option<Vec<u32>> {
    if s.is_empty() {
        return Some(Vec::new());
    }
    s.split(',').map(|p| p.parse().ok()).collect()
}

fn role_tag(role: Role) -> &'static str {
    match role {
        Role::Lib => "lib",
        Role::Bin => "bin",
        Role::Test => "test",
        Role::Bench => "bench",
        Role::Example => "example",
    }
}

fn role_of_tag(tag: &str) -> Option<Role> {
    Some(match tag {
        "lib" => Role::Lib,
        "bin" => Role::Bin,
        "test" => Role::Test,
        "bench" => Role::Bench,
        "example" => Role::Example,
        _ => return None,
    })
}

fn finding_record(kind: char, f: &Finding) -> String {
    format!(
        "{kind}\t{}\t{}\t{}\t{}\t{}",
        f.lint,
        match f.severity {
            Severity::Error => "E",
            Severity::Warn => "W",
        },
        f.line,
        csv(&f.also_allow_at),
        esc(&f.message),
    )
}

fn serialize(a: &FileAnalysis) -> String {
    let mut out = String::new();
    out.push_str(&format!("A\t{}\t{}\n", a.crate_name, role_tag(a.role)));
    for f in &a.findings {
        out.push_str(&finding_record('F', f));
        out.push('\n');
    }
    for f in &a.root_findings {
        out.push_str(&finding_record('R', f));
        out.push('\n');
    }
    for m in &a.metric_sites {
        let k = match m.kind {
            MetricKind::Family => "F",
            MetricKind::Series => "S",
        };
        out.push_str(&format!("M\t{k}\t{}\t{}\n", m.line, esc(&m.name)));
    }
    for p in &a.pragmas {
        out.push_str(&format!(
            "P\t{}\t{}\t{}\t{}\n",
            esc(&p.lint),
            p.file_scoped as u8,
            p.valid as u8,
            csv(&p.covered),
        ));
    }
    for f in &a.flow {
        out.push_str(&format!(
            "N\t{}\t{}\t{}\t{}\t{}\t{}\n",
            f.name, f.owner, f.start_line, f.end_line, f.body_span.0, f.body_span.1
        ));
        for l in &f.acquires {
            out.push_str(&format!("L\t{}\t{}\n", esc(&l.id), l.line));
        }
        for c in &f.calls {
            out.push_str(&format!(
                "C\t{}\t{}\t{}\t{}\t{}\n",
                c.callee,
                esc(&c.qual),
                c.self_recv as u8,
                c.line,
                csv(&c.locks_held),
            ));
        }
        let pairs: Vec<String> = f
            .lock_pairs
            .iter()
            .map(|(x, y)| format!("{x}:{y}"))
            .collect();
        out.push_str(&format!("O\t{}\n", pairs.join(",")));
        out.push_str(&format!(
            "U\t{}\t{}\t{}\t{}\t{}\n",
            csv(&f.renames),
            csv(&f.create_dirs),
            csv(&f.file_writes),
            csv(&f.file_syncs),
            csv(&f.dir_syncs),
        ));
    }
    out
}

fn parse_finding(fields: &[&str]) -> Option<Finding> {
    let [lint, sev, line, also, msg] = fields else {
        return None;
    };
    Some(Finding {
        lint: static_name(lint)?,
        severity: match *sev {
            "E" => Severity::Error,
            "W" => Severity::Warn,
            _ => return None,
        },
        rel: String::new(), // filled by the caller
        line: line.parse().ok()?,
        also_allow_at: uncsv(also)?,
        message: unesc(msg),
    })
}

fn deserialize(rel: &str, data: &str) -> Option<FileAnalysis> {
    let mut a = FileAnalysis {
        rel: rel.to_string(),
        crate_name: String::new(),
        role: Role::Lib,
        findings: Vec::new(),
        root_findings: Vec::new(),
        metric_sites: Vec::new(),
        pragmas: Vec::new(),
        flow: Vec::new(),
    };
    let mut saw_header = false;
    for line in data.lines() {
        let (tag, rest) = line.split_once('\t')?;
        let fields: Vec<&str> = rest.split('\t').collect();
        match tag {
            "A" => {
                let [crate_name, role] = fields.as_slice() else {
                    return None;
                };
                a.crate_name = (*crate_name).to_string();
                a.role = role_of_tag(role)?;
                saw_header = true;
            }
            "F" | "R" => {
                let mut f = parse_finding(&fields)?;
                f.rel = rel.to_string();
                if tag == "F" {
                    a.findings.push(f);
                } else {
                    a.root_findings.push(f);
                }
            }
            "M" => {
                let [kind, line_no, name] = fields.as_slice() else {
                    return None;
                };
                a.metric_sites.push(MetricSite {
                    kind: match *kind {
                        "F" => MetricKind::Family,
                        "S" => MetricKind::Series,
                        _ => return None,
                    },
                    line: line_no.parse().ok()?,
                    name: unesc(name),
                });
            }
            "P" => {
                let [lint, fs, valid, covered] = fields.as_slice() else {
                    return None;
                };
                a.pragmas.push(PragmaInfo {
                    lint: unesc(lint),
                    file_scoped: *fs == "1",
                    valid: *valid == "1",
                    covered: uncsv(covered)?,
                });
            }
            "N" => {
                let [name, owner, start, end, s0, s1] = fields.as_slice() else {
                    return None;
                };
                a.flow.push(FnFlow {
                    name: (*name).to_string(),
                    owner: (*owner).to_string(),
                    start_line: start.parse().ok()?,
                    end_line: end.parse().ok()?,
                    body_span: (s0.parse().ok()?, s1.parse().ok()?),
                    ..FnFlow::default()
                });
            }
            "L" => {
                let [id, line_no] = fields.as_slice() else {
                    return None;
                };
                a.flow.last_mut()?.acquires.push(LockAcquire {
                    id: unesc(id),
                    line: line_no.parse().ok()?,
                });
            }
            "C" => {
                let [callee, qual, recv, line_no, locks] = fields.as_slice() else {
                    return None;
                };
                a.flow.last_mut()?.calls.push(CallSite {
                    callee: (*callee).to_string(),
                    qual: unesc(qual),
                    self_recv: *recv == "1",
                    line: line_no.parse().ok()?,
                    locks_held: uncsv(locks)?,
                });
            }
            "O" => {
                let [pairs] = fields.as_slice() else {
                    return None;
                };
                let f = a.flow.last_mut()?;
                if !pairs.is_empty() {
                    for p in pairs.split(',') {
                        let (x, y) = p.split_once(':')?;
                        f.lock_pairs.push((x.parse().ok()?, y.parse().ok()?));
                    }
                }
            }
            "U" => {
                let [ren, cre, wri, fsy, dsy] = fields.as_slice() else {
                    return None;
                };
                let f = a.flow.last_mut()?;
                f.renames = uncsv(ren)?;
                f.create_dirs = uncsv(cre)?;
                f.file_writes = uncsv(wri)?;
                f.file_syncs = uncsv(fsy)?;
                f.dir_syncs = uncsv(dsy)?;
            }
            _ => return None,
        }
    }
    if saw_header {
        Some(a)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;

    const SRC: &str = "// lint:allow(panic-freedom): first element checked by caller\n\
        pub fn f(&self, v: &[u32]) -> u32 {\n    let g = self.state.lock().unwrap();\n    \
        let h = OTHER.lock().unwrap();\n    r.counter(\"x_total\", \"h\", &[]);\n    \
        fs::rename(a, b).unwrap();\n    helper(&g, &h);\n    v[0]\n}\n";

    #[test]
    fn round_trips_through_disk() {
        let a = analyze("crates/store/src/x.rs", SRC);
        let dir = std::env::temp_dir().join(format!(
            "lint-cache-test-{:016x}",
            fnv1a(SRC.as_bytes()) ^ std::process::id() as u64
        ));
        save(&dir, "crates/store/src/x.rs", SRC, &a);
        let b = load(&dir, "crates/store/src/x.rs", SRC).expect("hit");
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        // Different content misses; stale entries were pruned on save.
        assert!(load(&dir, "crates/store/src/x.rs", "fn other() {}\n").is_none());
        let other = analyze("crates/store/src/x.rs", "fn other() {}\n");
        save(&dir, "crates/store/src/x.rs", "fn other() {}\n", &other);
        assert!(
            load(&dir, "crates/store/src/x.rs", SRC).is_none(),
            "old entry pruned by the new save"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_recompute() {
        assert!(deserialize("x.rs", "garbage with no tabs").is_none());
        assert!(deserialize("x.rs", "F\tno-such-lint\tE\t1\t\tmsg").is_none());
        assert!(deserialize("x.rs", "").is_none());
        assert!(deserialize("x.rs", "L\tid\t3").is_none(), "L before any N");
    }

    #[test]
    fn fnv_is_stable() {
        // Reference vectors for FNV-1a 64.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
