//! Per-file analysis model: role classification, test-region tracking,
//! and suppression pragmas.

use crate::lexer::{lex, Lexed};

/// What kind of target a file belongs to. Several lints only apply to
/// library code — test, bench, example and binary targets are expected
/// to index, unwrap and time freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// `src/**` of a library crate.
    Lib,
    /// `src/main.rs`, `src/bin/**` — binary targets.
    Bin,
    /// `tests/**` integration tests.
    Test,
    /// `benches/**`.
    Bench,
    /// `examples/**`.
    Example,
}

/// A `lint:allow` suppression comment.
///
/// Grammar (comment must start with the keyword after trimming):
///
/// ```text
/// // lint:allow(<lint-name>): <non-empty reason>
/// // lint:allow-file(<lint-name>): <non-empty reason>
/// ```
///
/// A line-scoped pragma suppresses findings of that lint on its own
/// line and on the next code line; the file-scoped form covers the
/// whole file. The reason is mandatory — an allow without a recorded
/// why is itself reported (`bad-pragma`).
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Lint name inside the parentheses.
    pub lint: String,
    /// 1-based line the pragma comment sits on.
    pub line: u32,
    /// Whether this is the `allow-file` form.
    pub file_scoped: bool,
    /// The reason text after the colon (may be empty — then invalid).
    pub reason: String,
}

/// One workspace source file, lexed and classified.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub rel: String,
    /// Owning crate name (`crates/<name>/…`), or the root package name.
    pub crate_name: String,
    /// Target kind, derived from the path.
    pub role: Role,
    /// Lexer output (masked view + string/comment tables).
    pub lexed: Lexed,
    /// Byte range of each 1-based line within the masked view.
    line_spans: Vec<(usize, usize)>,
    /// `true` for every line inside a `#[cfg(test)]` / `#[test]` item.
    test_lines: Vec<bool>,
    /// Parsed suppression pragmas.
    pub pragmas: Vec<Pragma>,
}

impl SourceFile {
    /// Lexes and classifies `text` as the workspace file `rel`.
    pub fn new(rel: &str, text: &str) -> SourceFile {
        let rel = rel.replace('\\', "/");
        let lexed = lex(text);
        let line_spans = line_spans(&lexed.masked);
        let test_lines = test_regions(&lexed.masked, &line_spans);
        let pragmas = parse_pragmas(&lexed);
        SourceFile {
            crate_name: crate_of(&rel),
            role: role_of(&rel),
            rel,
            lexed,
            line_spans,
            test_lines,
            pragmas,
        }
    }

    /// Number of lines in the file.
    pub fn line_count(&self) -> usize {
        self.line_spans.len()
    }

    /// The masked (code-only) text of 1-based line `n`.
    pub fn masked_line(&self, n: u32) -> &str {
        match self.line_spans.get(n as usize - 1) {
            Some(&(a, b)) => &self.lexed.masked[a..b],
            None => "",
        }
    }

    /// 1-based line number containing masked byte `offset`.
    pub fn line_of_offset(&self, offset: usize) -> u32 {
        match self.line_spans.partition_point(|&(a, _)| a <= offset) {
            0 => 1,
            n => n as u32,
        }
    }

    /// Whether 1-based line `n` sits inside a test item.
    pub fn is_test_line(&self, n: u32) -> bool {
        self.test_lines
            .get(n as usize - 1)
            .copied()
            .unwrap_or(false)
    }

    /// Whether a finding of `lint` at line `n` is suppressed by a
    /// pragma. A pragma covers its own line and the next *code* line
    /// (comment-only and blank lines in between are skipped, so a
    /// multi-line reason still reaches its target). `extra_lines` lets
    /// a lint bless a whole region from one anchor (lock guards accept
    /// a pragma on the acquisition line).
    pub fn suppressed(&self, lint: &str, n: u32, extra_lines: &[u32]) -> bool {
        self.pragmas.iter().any(|p| {
            p.lint == lint
                && !p.reason.trim().is_empty()
                && (p.file_scoped
                    || self.covers(p.line, n)
                    || extra_lines.iter().any(|&e| self.covers(p.line, e)))
        })
    }

    /// True when a pragma on `pragma_line` covers line `n`.
    fn covers(&self, pragma_line: u32, n: u32) -> bool {
        if pragma_line == n {
            return true;
        }
        let next_code = (pragma_line + 1..=self.line_count() as u32)
            .find(|&m| !self.masked_line(m).trim().is_empty());
        next_code == Some(n)
    }
}

fn line_spans(masked: &str) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut start = 0usize;
    for (i, b) in masked.bytes().enumerate() {
        if b == b'\n' {
            spans.push((start, i));
            start = i + 1;
        }
    }
    if start < masked.len() {
        spans.push((start, masked.len()));
    }
    spans
}

/// Marks every line belonging to an item annotated `#[cfg(test)]` or
/// `#[test]`: from the attribute, the region runs to the close of the
/// first brace block that follows.
fn test_regions(masked: &str, spans: &[(usize, usize)]) -> Vec<bool> {
    let mut test = vec![false; spans.len()];
    let bytes = masked.as_bytes();
    for (idx, &(a, b)) in spans.iter().enumerate() {
        let line = &masked[a..b];
        if !(line.contains("#[cfg(test)]") || line.contains("#[test]")) {
            continue;
        }
        // Find the first `{` at or after the attribute, then match it.
        let Some(open_rel) = masked[a..].find('{') else {
            continue;
        };
        let mut depth = 0usize;
        let mut end = masked.len();
        for (i, &c) in bytes.iter().enumerate().skip(a + open_rel) {
            match c {
                b'{' => depth += 1,
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end = i;
                        break;
                    }
                }
                _ => {}
            }
        }
        for (j, t) in test.iter_mut().enumerate().skip(idx) {
            if spans[j].0 <= end {
                *t = true;
            }
        }
    }
    test
}

fn parse_pragmas(lexed: &Lexed) -> Vec<Pragma> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        let t = c.text.trim();
        let (file_scoped, rest) = if let Some(r) = t.strip_prefix("lint:allow-file(") {
            (true, r)
        } else if let Some(r) = t.strip_prefix("lint:allow(") {
            (false, r)
        } else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            out.push(Pragma {
                lint: String::new(),
                line: c.line,
                file_scoped,
                reason: String::new(),
            });
            continue;
        };
        let lint = rest[..close].trim().to_string();
        let after = rest[close + 1..].trim_start();
        let reason = after.strip_prefix(':').unwrap_or("").trim().to_string();
        out.push(Pragma {
            lint,
            line: c.line,
            file_scoped,
            reason,
        });
    }
    out
}

fn role_of(rel: &str) -> Role {
    let parts: Vec<&str> = rel.split('/').collect();
    let has = |seg: &str| parts.contains(&seg);
    if has("tests") {
        Role::Test
    } else if has("benches") {
        Role::Bench
    } else if has("examples") {
        Role::Example
    } else if has("bin") || parts.last() == Some(&"main.rs") {
        Role::Bin
    } else {
        Role::Lib
    }
}

fn crate_of(rel: &str) -> String {
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.as_slice() {
        ["crates", name, ..] => (*name).to_string(),
        _ => "logmine".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_and_crates() {
        let f = SourceFile::new("crates/ingest/src/worker.rs", "");
        assert_eq!(f.role, Role::Lib);
        assert_eq!(f.crate_name, "ingest");
        assert_eq!(
            SourceFile::new("crates/cli/src/main.rs", "").role,
            Role::Bin
        );
        assert_eq!(SourceFile::new("tests/end_to_end.rs", "").role, Role::Test);
        assert_eq!(
            SourceFile::new("crates/bench/src/bin/table1.rs", "").role,
            Role::Bin
        );
        assert_eq!(
            SourceFile::new("examples/quickstart.rs", "").role,
            Role::Example
        );
        assert_eq!(SourceFile::new("src/lib.rs", "").crate_name, "logmine");
    }

    #[test]
    fn test_region_covers_cfg_test_module() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let f = SourceFile::new("crates/core/src/x.rs", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn pragma_parsing() {
        let src = "// lint:allow(panic-freedom): poisoning is sticky\nlet x = 1;\n\
                   // lint:allow-file(timing-discipline): bench shim\n// lint:allow(x)\n";
        let f = SourceFile::new("crates/core/src/x.rs", src);
        assert_eq!(f.pragmas.len(), 3);
        assert!(!f.pragmas[0].file_scoped);
        assert_eq!(f.pragmas[0].lint, "panic-freedom");
        assert!(f.suppressed("panic-freedom", 2, &[]));
        assert!(f.pragmas[1].file_scoped);
        assert!(f.suppressed("timing-discipline", 99, &[]));
        // Reason missing: parsed but never suppresses.
        assert!(f.pragmas[2].reason.is_empty());
        assert!(!f.suppressed("x", 5, &[]));
    }
}
