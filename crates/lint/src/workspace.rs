//! Workspace file discovery.
//!
//! The walker mirrors the repository's fixed layout rather than parsing
//! `Cargo.toml`: `src/`, `tests/`, `examples/` at the root plus every
//! directory under `crates/`. `target/` output and the linter's own
//! violation fixtures (`crates/lint/tests/fixtures/`) are excluded.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories under the workspace root that may contain Rust sources.
const TOP_DIRS: &[&str] = &["src", "tests", "examples", "crates"];

/// Path segments that end a walk.
const SKIP_DIRS: &[&str] = &["target", "fixtures"];

/// Collects every workspace `.rs` file as `(relative_path, content)`,
/// sorted by path.
pub fn collect(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    for top in TOP_DIRS {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    let mut out = Vec::with_capacity(files.len());
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        out.push((rel, fs::read_to_string(&path)?));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) && !name.starts_with('.') {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Identifies crate-root files among collected relative paths: the
/// workspace root's `src/lib.rs`, and for each `crates/<name>`, its
/// `src/lib.rs` — or `src/main.rs` for binary-only crates.
pub fn crate_roots(rels: &[String]) -> Vec<String> {
    let mut roots = Vec::new();
    if rels.iter().any(|r| r == "src/lib.rs") {
        roots.push("src/lib.rs".to_string());
    }
    let mut names: Vec<&str> = rels
        .iter()
        .filter_map(|r| r.strip_prefix("crates/"))
        .filter_map(|r| r.split('/').next())
        .collect();
    names.sort_unstable();
    names.dedup();
    for name in names {
        let lib = format!("crates/{name}/src/lib.rs");
        let main = format!("crates/{name}/src/main.rs");
        if rels.contains(&lib) {
            roots.push(lib);
        } else if rels.contains(&main) {
            roots.push(main);
        }
    }
    roots
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_roots_prefer_lib_over_main() {
        let rels: Vec<String> = [
            "src/lib.rs",
            "crates/a/src/lib.rs",
            "crates/a/src/other.rs",
            "crates/b/src/main.rs",
            "crates/c/tests/t.rs",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let roots = crate_roots(&rels);
        assert_eq!(
            roots,
            vec!["src/lib.rs", "crates/a/src/lib.rs", "crates/b/src/main.rs"]
        );
    }
}
