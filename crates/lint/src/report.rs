//! Finding output: rustc-style human text and a JSON array.

use crate::lints::{Finding, Severity};
use std::fmt::Write;

/// Renders findings rustc-style, one block per finding, plus a summary
/// line. `deny_warnings` relabels warnings as denied.
pub fn human(findings: &[Finding], deny_warnings: bool) -> String {
    let mut out = String::new();
    for f in findings {
        let label = match (f.severity, deny_warnings) {
            (Severity::Warn, true) => "error[denied warning]",
            (Severity::Warn, false) => "warning",
            (Severity::Error, _) => "error",
        };
        let _ = writeln!(out, "{label}[{}]: {}", f.lint, f.message);
        let _ = writeln!(out, "  --> {}:{}", f.rel, f.line);
    }
    let errors = findings
        .iter()
        .filter(|f| f.severity == Severity::Error || deny_warnings)
        .count();
    let warnings = findings.len() - errors;
    let _ = writeln!(
        out,
        "lint: {} finding(s): {errors} error(s), {warnings} warning(s)",
        findings.len()
    );
    out
}

/// Renders findings as a JSON array (hand-rolled; the crate is
/// dependency-free by design).
pub fn json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"lint\":{},\"severity\":{},\"path\":{},\"line\":{},\"message\":{}}}",
            escape(f.lint),
            escape(f.severity.label()),
            escape(&f.rel),
            f.line,
            escape(&f.message)
        );
    }
    out.push_str("]\n");
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![Finding {
            lint: "panic-freedom",
            severity: Severity::Warn,
            rel: "crates/x/src/a.rs".into(),
            line: 3,
            message: "a \"quoted\" message".into(),
            also_allow_at: Vec::new(),
        }]
    }

    #[test]
    fn human_labels_denied_warnings() {
        assert!(human(&sample(), false).starts_with("warning[panic-freedom]"));
        assert!(human(&sample(), true).starts_with("error[denied warning][panic-freedom]"));
    }

    #[test]
    fn json_escapes_quotes() {
        let j = json(&sample());
        assert!(j.contains("\\\"quoted\\\""), "{j}");
        assert!(j.starts_with('[') && j.trim_end().ends_with(']'));
    }
}
