//! Finding output: rustc-style human text, a JSON array, and SARIF
//! 2.1.0 for code-scanning upload.

use crate::lints::{Finding, Severity, CATALOG};
use std::fmt::Write;

/// Renders findings rustc-style, one block per finding, plus a summary
/// line. `deny_warnings` relabels warnings as denied.
pub fn human(findings: &[Finding], deny_warnings: bool) -> String {
    let mut out = String::new();
    for f in findings {
        let label = match (f.severity, deny_warnings) {
            (Severity::Warn, true) => "error[denied warning]",
            (Severity::Warn, false) => "warning",
            (Severity::Error, _) => "error",
        };
        let _ = writeln!(out, "{label}[{}]: {}", f.lint, f.message);
        let _ = writeln!(out, "  --> {}:{}", f.rel, f.line);
    }
    let errors = findings
        .iter()
        .filter(|f| f.severity == Severity::Error || deny_warnings)
        .count();
    let warnings = findings.len() - errors;
    let _ = writeln!(
        out,
        "lint: {} finding(s): {errors} error(s), {warnings} warning(s)",
        findings.len()
    );
    out
}

/// Renders findings as a JSON array (hand-rolled; the crate is
/// dependency-free by design).
pub fn json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"lint\":{},\"severity\":{},\"path\":{},\"line\":{},\"message\":{}}}",
            escape(f.lint),
            escape(f.severity.label()),
            escape(&f.rel),
            f.line,
            escape(&f.message)
        );
    }
    out.push_str("]\n");
    out
}

/// Renders findings as a SARIF 2.1.0 log (the shape GitHub code
/// scanning ingests): one run, the lint catalog as the driver's rules,
/// one result per finding. `deny_warnings` promotes warning-level
/// results to error, matching the exit code.
pub fn sarif(findings: &[Finding], deny_warnings: bool) -> String {
    let mut rules = String::new();
    for (i, (name, _, what)) in CATALOG.iter().enumerate() {
        if i > 0 {
            rules.push(',');
        }
        let _ = write!(
            rules,
            "{{\"id\":{},\"shortDescription\":{{\"text\":{}}}}}",
            escape(name),
            escape(what)
        );
    }
    let mut results = String::new();
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            results.push(',');
        }
        let level = match (f.severity, deny_warnings) {
            (Severity::Warn, false) => "warning",
            _ => "error",
        };
        let _ = write!(
            results,
            "{{\"ruleId\":{},\"level\":{},\"message\":{{\"text\":{}}},\
             \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":\
             {{\"uri\":{}}},\"region\":{{\"startLine\":{}}}}}}}]}}",
            escape(f.lint),
            escape(level),
            escape(&f.message),
            escape(&f.rel),
            f.line.max(1)
        );
    }
    format!(
        "{{\"version\":\"2.1.0\",\"$schema\":\
         \"https://json.schemastore.org/sarif-2.1.0.json\",\"runs\":[{{\"tool\":\
         {{\"driver\":{{\"name\":\"logparse-lint\",\"rules\":[{rules}]}}}},\
         \"results\":[{results}]}}]}}\n"
    )
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![Finding {
            lint: "panic-freedom",
            severity: Severity::Warn,
            rel: "crates/x/src/a.rs".into(),
            line: 3,
            message: "a \"quoted\" message".into(),
            also_allow_at: Vec::new(),
        }]
    }

    #[test]
    fn human_labels_denied_warnings() {
        assert!(human(&sample(), false).starts_with("warning[panic-freedom]"));
        assert!(human(&sample(), true).starts_with("error[denied warning][panic-freedom]"));
    }

    #[test]
    fn json_escapes_quotes() {
        let j = json(&sample());
        assert!(j.contains("\\\"quoted\\\""), "{j}");
        assert!(j.starts_with('[') && j.trim_end().ends_with(']'));
    }
}
