//! A hand-rolled, byte-oriented Rust surface lexer.
//!
//! The linter does not need a parse tree; it needs to know, for every
//! byte of a source file, whether that byte is *code*, *comment*, or
//! *string-literal content*. The lexer produces a **masked view** of
//! the file — same byte length, newlines preserved — in which comment
//! bodies and string contents are replaced with spaces (string *quotes*
//! are kept, so "the first argument is a literal" remains decidable),
//! plus side tables of the string literals and comments it erased.
//!
//! Handled: line comments (`//`, `///`, `//!`), nested block comments,
//! plain/byte/raw strings (`"…"`, `b"…"`, `r"…"`, `r#"…"#`, …), char
//! and byte-char literals, and the char-literal/lifetime ambiguity
//! (`'a'` vs `'a`). Everything else passes through untouched.

/// One string literal erased from the masked view.
#[derive(Debug, Clone)]
pub struct StrLit {
    /// Byte offset of the opening quote in the masked text.
    pub offset: usize,
    /// 1-based line of the opening quote.
    pub line: u32,
    /// The literal's content (escapes left as written).
    pub content: String,
}

/// One comment erased from the masked view.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text without the `//` / `/*` markers, single line.
    pub text: String,
}

/// The lexer's output for one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code-only view: comments and string contents blanked to spaces.
    pub masked: String,
    /// Every string literal, in file order.
    pub strings: Vec<StrLit>,
    /// Every comment, in file order (block comments yield one entry per
    /// line so pragma scanning stays line-oriented).
    pub comments: Vec<Comment>,
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes `text` into a masked view plus string/comment side tables.
pub fn lex(text: &str) -> Lexed {
    let src = text.as_bytes();
    let mut masked: Vec<u8> = Vec::with_capacity(src.len());
    let mut strings = Vec::new();
    let mut comments = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0;

    // Pushes one blanked byte, preserving newlines for line math.
    let blank = |masked: &mut Vec<u8>, line: &mut u32, b: u8| {
        if b == b'\n' {
            *line += 1;
            masked.push(b'\n');
        } else {
            masked.push(b' ');
        }
    };

    while i < src.len() {
        let b = src[i];
        // Line comment.
        if b == b'/' && src.get(i + 1) == Some(&b'/') {
            let start_line = line;
            let mut text_buf = Vec::new();
            i += 2;
            masked.push(b' ');
            masked.push(b' ');
            while i < src.len() && src[i] != b'\n' {
                text_buf.push(src[i]);
                masked.push(b' ');
                i += 1;
            }
            comments.push(Comment {
                line: start_line,
                text: String::from_utf8_lossy(&text_buf).into_owned(),
            });
            continue;
        }
        // Block comment (nested).
        if b == b'/' && src.get(i + 1) == Some(&b'*') {
            let mut depth = 1usize;
            let mut text_buf = Vec::new();
            let mut text_line = line;
            i += 2;
            masked.push(b' ');
            masked.push(b' ');
            while i < src.len() && depth > 0 {
                if src[i] == b'/' && src.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    blank(&mut masked, &mut line, src[i]);
                    blank(&mut masked, &mut line, src[i + 1]);
                    i += 2;
                } else if src[i] == b'*' && src.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    blank(&mut masked, &mut line, src[i]);
                    blank(&mut masked, &mut line, src[i + 1]);
                    i += 2;
                } else {
                    if src[i] == b'\n' {
                        comments.push(Comment {
                            line: text_line,
                            text: String::from_utf8_lossy(&text_buf).into_owned(),
                        });
                        text_buf.clear();
                        text_line = line + 1;
                    } else {
                        text_buf.push(src[i]);
                    }
                    blank(&mut masked, &mut line, src[i]);
                    i += 1;
                }
            }
            if !text_buf.is_empty() {
                comments.push(Comment {
                    line: text_line,
                    text: String::from_utf8_lossy(&text_buf).into_owned(),
                });
            }
            continue;
        }
        // Raw (byte) string: r"…", r#"…"#, br"…" — only when the `r`
        // does not continue an identifier (`for"` is not valid code, but
        // `writer` followed by `"` must not trigger).
        let prev_ident = i > 0 && is_ident(src[i - 1]);
        if !prev_ident && (b == b'r' || (b == b'b' && src.get(i + 1) == Some(&b'r'))) {
            let mut j = i + if b == b'b' { 2 } else { 1 };
            let mut hashes = 0usize;
            while src.get(j) == Some(&b'#') {
                hashes += 1;
                j += 1;
            }
            if src.get(j) == Some(&b'"') {
                // Emit the prefix (`r`, `br`, hashes) as-is, then mask.
                for &p in &src[i..j] {
                    masked.push(p);
                }
                let quote_off = masked.len();
                let start_line = line;
                masked.push(b'"');
                let mut k = j + 1;
                let mut content = Vec::new();
                'raw: while k < src.len() {
                    if src[k] == b'"' {
                        let mut h = 0;
                        while h < hashes && src.get(k + 1 + h) == Some(&b'#') {
                            h += 1;
                        }
                        if h == hashes {
                            masked.push(b'"');
                            masked.extend(std::iter::repeat_n(b'#', hashes));
                            k += 1 + hashes;
                            break 'raw;
                        }
                    }
                    content.push(src[k]);
                    blank(&mut masked, &mut line, src[k]);
                    k += 1;
                }
                // Unterminated raw strings (EOF before the closing
                // quote+hashes — including an opener that is the very
                // last token of the file) must still advance `i`, or
                // the outer loop would re-lex the opener forever.
                i = k;
                strings.push(StrLit {
                    offset: quote_off,
                    line: start_line,
                    content: String::from_utf8_lossy(&content).into_owned(),
                });
                continue;
            }
        }
        // Plain or byte string.
        if b == b'"' || (b == b'b' && src.get(i + 1) == Some(&b'"') && !prev_ident) {
            if b == b'b' {
                masked.push(b'b');
                i += 1;
            }
            let quote_off = masked.len();
            let start_line = line;
            masked.push(b'"');
            i += 1;
            let mut content = Vec::new();
            while i < src.len() {
                if src[i] == b'\\' && i + 1 < src.len() {
                    content.push(src[i]);
                    content.push(src[i + 1]);
                    blank(&mut masked, &mut line, src[i]);
                    blank(&mut masked, &mut line, src[i + 1]);
                    i += 2;
                    continue;
                }
                if src[i] == b'"' {
                    masked.push(b'"');
                    i += 1;
                    break;
                }
                content.push(src[i]);
                blank(&mut masked, &mut line, src[i]);
                i += 1;
            }
            strings.push(StrLit {
                offset: quote_off,
                line: start_line,
                content: String::from_utf8_lossy(&content).into_owned(),
            });
            continue;
        }
        // Char / byte-char literal vs lifetime.
        if b == b'\'' || (b == b'b' && src.get(i + 1) == Some(&b'\'') && !prev_ident) {
            let q = if b == b'b' { i + 1 } else { i };
            let is_char = match src.get(q + 1) {
                Some(&b'\\') => true,
                Some(&c) => {
                    // `'x'` is a char literal; `'x` (next byte not a
                    // closing quote) is a lifetime. Multibyte chars take
                    // several bytes — scan to the next quote on the
                    // same line and require it within 6 bytes.
                    if is_ident(c) {
                        src.get(q + 2) == Some(&b'\'')
                    } else {
                        (1..=6).any(|d| src.get(q + d) == Some(&b'\'')) && c != b'\''
                    }
                }
                None => false,
            };
            if is_char {
                if b == b'b' {
                    masked.push(b'b');
                    i += 1;
                }
                masked.push(b'\'');
                i += 1;
                while i < src.len() {
                    if src[i] == b'\\' && i + 1 < src.len() {
                        blank(&mut masked, &mut line, src[i]);
                        blank(&mut masked, &mut line, src[i + 1]);
                        i += 2;
                        continue;
                    }
                    if src[i] == b'\'' {
                        masked.push(b'\'');
                        i += 1;
                        break;
                    }
                    blank(&mut masked, &mut line, src[i]);
                    i += 1;
                }
                continue;
            }
            // Lifetime: pass through.
        }
        if b == b'\n' {
            line += 1;
        }
        masked.push(b);
        i += 1;
    }

    Lexed {
        masked: String::from_utf8_lossy(&masked).into_owned(),
        strings,
        comments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_comments_and_collects_text() {
        let l = lex("let x = 1; // trailing note\nlet y = 2;\n");
        assert!(!l.masked.contains("trailing"));
        assert_eq!(l.masked.lines().count(), 2);
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[0].text.trim(), "trailing note");
    }

    #[test]
    fn masks_string_contents_but_keeps_quotes() {
        let l = lex("call(\"an unwrap() inside\", x)");
        assert!(!l.masked.contains("unwrap"));
        assert!(l.masked.contains("call(\""));
        assert_eq!(l.strings.len(), 1);
        assert_eq!(l.strings[0].content, "an unwrap() inside");
    }

    #[test]
    fn raw_strings_and_escapes() {
        let l = lex(r####"let a = r#"panic!("x")"#; let b = "q\"uo";"####);
        assert!(!l.masked.contains("panic"));
        assert_eq!(l.strings.len(), 2);
        assert_eq!(l.strings[0].content, r#"panic!("x")"#);
        assert_eq!(l.strings[1].content, "q\\\"uo");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(l.masked.contains("'a>"));
        assert!(l.strings.is_empty());
        let c = lex("let c = 'x'; let nl = '\\n'; let s = ' ';");
        assert!(!c.masked.contains('x'), "{}", c.masked);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("a /* one /* two */ still */ b");
        assert!(l.masked.starts_with('a'));
        assert!(l.masked.trim_end().ends_with('b'));
        assert!(!l.masked.contains("still"));
    }

    #[test]
    fn masked_preserves_byte_offsets() {
        let text = "x(\"ab\", 1)\ny";
        let l = lex(text);
        assert_eq!(l.masked.len(), text.len());
        assert_eq!(l.strings[0].offset, 2);
        assert_eq!(&l.masked[..2], "x(");
    }
}
