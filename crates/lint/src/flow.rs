//! Per-file flow extraction: the symbol table and function summaries
//! the inter-procedural lints consume.
//!
//! The existing lexer gives a masked code view; this module lifts it
//! one level: every `fn` item (with its `impl` owner, when any) becomes
//! a [`FnFlow`] carrying
//!
//! * **call sites** — callee name plus a qualifier (`Type::`, method
//!   receiver, or bare), each annotated with the set of lock guards
//!   live at the call;
//! * **lock acquisitions** — `…lock()` / `.read()` / `.write()` sites
//!   identified by their *receiver text* (so `shards[i]` and
//!   `shards[j]` stay distinct locks), plus the locally observed
//!   acquisition-order pairs;
//! * **durability facts** — lines that rename, create directories,
//!   create/write files, `sync_all`/`sync_data`, or `sync_dir`.
//!
//! Everything here is a heuristic over surface syntax; the call-graph
//! layer ([`crate::callgraph`]) keeps an explicit *unresolved* bucket so
//! downstream lints stay sound-by-report: what the analysis cannot see
//! it counts, it never silently guesses.

use crate::source::SourceFile;

/// One lock-acquisition site inside a function body.
#[derive(Debug, Clone)]
pub struct LockAcquire {
    /// Normalized receiver text (`self.` stripped), the lock's local
    /// identity. Scoped per file by the graph layer.
    pub id: String,
    /// 1-based line of the acquisition.
    pub line: u32,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Bare callee name (the identifier before the `(`).
    pub callee: String,
    /// `""` for a bare call, `"."` for a method call, otherwise the
    /// path segment before `::` (`TemplateStore`, `fs`, `Self`, …).
    pub qual: String,
    /// Whether a method call's receiver is literally `self`.
    pub self_recv: bool,
    /// 1-based line of the call.
    pub line: u32,
    /// Indices into [`FnFlow::acquires`] of guards live at this call.
    pub locks_held: Vec<u32>,
}

/// The flow summary of one non-test `fn` item.
#[derive(Debug, Clone, Default)]
pub struct FnFlow {
    /// Bare function name.
    pub name: String,
    /// Last path segment of the `impl` type owning this method, or
    /// `""` for a free function.
    pub owner: String,
    /// 1-based line of the `fn` keyword.
    pub start_line: u32,
    /// 1-based line of the body's closing brace.
    pub end_line: u32,
    /// Byte span of the body (inclusive `{` … `}`) in the masked view.
    pub body_span: (usize, usize),
    /// Every call site, in source order.
    pub calls: Vec<CallSite>,
    /// Every lock acquisition, in source order.
    pub acquires: Vec<LockAcquire>,
    /// Locally observed order: `(a, b)` means the guard from acquire
    /// `a` was still live when acquire `b` happened (indices into
    /// [`FnFlow::acquires`]).
    pub lock_pairs: Vec<(u32, u32)>,
    /// Lines calling `fs::rename`.
    pub renames: Vec<u32>,
    /// Lines calling `create_dir`/`create_dir_all`.
    pub create_dirs: Vec<u32>,
    /// Lines creating or opening files for writing.
    pub file_writes: Vec<u32>,
    /// Lines calling `.sync_all()`/`.sync_data()`.
    pub file_syncs: Vec<u32>,
    /// Lines calling `sync_dir(` (the workspace's directory-fsync
    /// helper).
    pub dir_syncs: Vec<u32>,
}

const ACQUIRE: &[&str] = &[".lock()", ".read()", ".write()"];

/// Keywords that look like calls when followed by `(`.
const NOT_CALLS: &[&str] = &[
    "if", "for", "while", "match", "return", "loop", "fn", "let", "in", "move", "as", "else",
];

/// Extracts every non-test function's flow summary from `file`.
pub fn extract(file: &SourceFile) -> Vec<FnFlow> {
    let masked = &file.lexed.masked;
    let impls = impl_spans(masked);
    let mut fns = fn_spans(file, masked, &impls);
    // Innermost-wins attribution: give each fn the list of child spans
    // to skip while walking its own body.
    let spans: Vec<(usize, usize)> = fns.iter().map(|f| f.body_span).collect();
    for (idx, flow) in fns.iter_mut().enumerate() {
        let children: Vec<(usize, usize)> = spans
            .iter()
            .enumerate()
            .filter(|&(j, s)| j != idx && s.0 > flow.body_span.0 && s.1 <= flow.body_span.1)
            .map(|(_, s)| *s)
            .collect();
        walk_body(file, masked, flow, &children);
    }
    fns
}

/// `impl` block spans with the owning type's last path segment.
fn impl_spans(masked: &str) -> Vec<(usize, usize, String)> {
    let bytes = masked.as_bytes();
    let mut out = Vec::new();
    for off in keyword_sites(masked, "impl") {
        let mut i = off + 4;
        // Skip generic parameters on the impl itself.
        i = skip_ws(bytes, i);
        if bytes.get(i) == Some(&b'<') {
            i = skip_balanced(bytes, i, b'<', b'>');
            i = skip_ws(bytes, i);
        }
        // Read the type (or trait) path up to `{`, `for` or `where`;
        // when a `for` appears, the implemented type follows it.
        let (first, after_first) = read_type(masked, i);
        let mut ty = first;
        let mut j = skip_ws(bytes, after_first);
        if masked[j..].starts_with("for") && !is_ident_at(bytes, j + 3) {
            let (second, after_second) = read_type(masked, skip_ws(bytes, j + 3));
            ty = second;
            j = skip_ws(bytes, after_second);
        }
        if masked[j..].starts_with("where") {
            j = match masked[j..].find('{') {
                Some(p) => j + p,
                None => continue,
            };
        }
        if bytes.get(j) != Some(&b'{') {
            continue;
        }
        let end = match_brace(bytes, j);
        out.push((j, end, last_segment(&ty)));
    }
    out
}

/// Reads a type path starting at `i`: identifiers, `::`, and balanced
/// `<…>` groups. Returns the text (generics stripped later) and the
/// offset just past it.
fn read_type(masked: &str, mut i: usize) -> (String, usize) {
    let bytes = masked.as_bytes();
    let start = i;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_alphanumeric() || b == b'_' || b == b':' || b == b'&' || b == b'\'' {
            i += 1;
        } else if b == b'<' {
            i = skip_balanced(bytes, i, b'<', b'>');
        } else if b == b' ' {
            // A space ends the path unless `::` continues after it.
            let k = skip_ws(bytes, i);
            if bytes.get(k) == Some(&b':') {
                i = k;
            } else {
                break;
            }
        } else {
            break;
        }
    }
    (masked[start..i].to_string(), i)
}

fn last_segment(ty: &str) -> String {
    let base = ty.split('<').next().unwrap_or("");
    base.rsplit("::")
        .next()
        .unwrap_or("")
        .trim()
        .trim_start_matches('&')
        .to_string()
}

/// Locates every non-test `fn` item with its body span and owner.
fn fn_spans(file: &SourceFile, masked: &str, impls: &[(usize, usize, String)]) -> Vec<FnFlow> {
    let bytes = masked.as_bytes();
    let mut out = Vec::new();
    for off in keyword_sites(masked, "fn") {
        let mut i = skip_ws(bytes, off + 2);
        let name_start = i;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        if i == name_start {
            continue;
        }
        let name = masked[name_start..i].to_string();
        // Find the body `{`, or `;` for a bodiless trait method. Skip
        // balanced generics so `fn f<T: Fn() -> R>()` cannot confuse it.
        let mut j = i;
        let mut body = None;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => {
                    body = Some(j);
                    break;
                }
                b';' => break,
                b'<' => j = skip_balanced(bytes, j, b'<', b'>'),
                _ => j += 1,
            }
        }
        let Some(open) = body else { continue };
        let start_line = file.line_of_offset(off);
        if file.is_test_line(start_line) {
            continue;
        }
        let end = match_brace(bytes, open);
        let owner = impls
            .iter()
            .filter(|(a, b, _)| off > *a && off < *b)
            .min_by_key(|(a, b, _)| b - a)
            .map(|(_, _, t)| t.clone())
            .unwrap_or_default();
        out.push(FnFlow {
            name,
            owner,
            start_line,
            end_line: file.line_of_offset(end.min(masked.len().saturating_sub(1))),
            body_span: (open, end),
            ..FnFlow::default()
        });
    }
    out
}

/// A live lock guard during the body walk.
struct Live {
    ident: String,
    acq: u32,
    depth: i32,
}

/// Walks one body (skipping `children` spans of nested fns), recording
/// calls, lock events and durability facts into `flow`.
fn walk_body(file: &SourceFile, masked: &str, flow: &mut FnFlow, children: &[(usize, usize)]) {
    let bytes = masked.as_bytes();
    let (start, end) = flow.body_span;
    let mut depth: i32 = 0;
    let mut live: Vec<Live> = Vec::new();
    let mut i = start;
    while i <= end && i < bytes.len() {
        if let Some(&(_, ce)) = children.iter().find(|&&(cs, _)| cs == i) {
            i = ce + 1;
            continue;
        }
        let b = bytes[i];
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                live.retain(|g| g.depth <= depth);
            }
            b'(' => {
                // A call site: an identifier directly before the `(`.
                if let Some((name, qual, self_recv)) = call_head(masked, i) {
                    handle_call(file, masked, flow, &mut live, i, &name, qual, self_recv);
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Classifies the identifier (and qualifier) ending at the `(` at
/// `open`, or `None` when this `(` is not a call.
fn call_head(masked: &str, open: usize) -> Option<(String, String, bool)> {
    let bytes = masked.as_bytes();
    let mut i = open;
    while i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        i -= 1;
    }
    if i == open {
        return None;
    }
    let name = &masked[i..open];
    if NOT_CALLS.contains(&name) || name.as_bytes()[0].is_ascii_uppercase() {
        // Keywords and tuple-struct/variant constructors (`Some(`,
        // `Ok(`, `PathBuf::from` is a call but `from` is lowercase).
        return None;
    }
    if name.as_bytes()[0].is_ascii_digit() {
        return None;
    }
    // Qualifier before the name.
    if i >= 2 && &masked[i - 2..i] == "::" {
        let mut j = i - 2;
        while j > 0 && (bytes[j - 1].is_ascii_alphanumeric() || bytes[j - 1] == b'_') {
            j -= 1;
        }
        return Some((name.to_string(), masked[j..i - 2].to_string(), false));
    }
    if i >= 1 && bytes[i - 1] == b'.' {
        let recv_self = i >= 5 && &masked[i - 5..i - 1] == "self" && !is_ident_before(bytes, i - 5);
        return Some((name.to_string(), ".".to_string(), recv_self));
    }
    Some((name.to_string(), String::new(), false))
}

#[allow(clippy::too_many_arguments)]
fn handle_call(
    file: &SourceFile,
    masked: &str,
    flow: &mut FnFlow,
    live: &mut Vec<Live>,
    open: usize,
    name: &str,
    qual: String,
    self_recv: bool,
) {
    let line = file.line_of_offset(open);

    // Durability facts.
    match (qual.as_str(), name) {
        ("fs", "rename") => flow.renames.push(line),
        (_, "create_dir_all") | (_, "create_dir") => flow.create_dirs.push(line),
        ("File", _) => {} // `File::create` is uppercase-qualified; handled below.
        _ => {}
    }
    if qual == "File" && (name == "create" || name == "options") {
        flow.file_writes.push(line);
    }
    if (qual == "OpenOptions" && name == "new") || (qual == "." && name == "write_all") {
        flow.file_writes.push(line);
    }
    if qual == "." && (name == "sync_all" || name == "sync_data") {
        flow.file_syncs.push(line);
    }
    if name == "sync_dir" {
        flow.dir_syncs.push(line);
    }

    // `drop(guard)` retires a live guard by name.
    if qual.is_empty() && name == "drop" {
        let bytes = masked.as_bytes();
        let close = match_paren(bytes, open);
        let arg = masked[open + 1..close.min(masked.len())].trim();
        live.retain(|g| g.ident != arg);
    }

    // Lock acquisition: `.lock()` / `.read()` / `.write()` with no
    // arguments (the `Mutex`/`RwLock` API — `io::Read::read` and
    // `io::Write::write` always take arguments).
    let is_acquire = qual == "."
        && ACQUIRE
            .iter()
            .any(|p| &p[1..p.len() - 2] == name && masked[open..].starts_with("()"));
    if is_acquire {
        // The receiver identifies the lock. Offset of the `.`:
        let dot = open - name.len() - 1;
        if let Some(id) = receiver_text(masked, dot) {
            let idx = flow.acquires.len() as u32;
            for g in live.iter() {
                flow.lock_pairs.push((g.acq, idx));
            }
            flow.acquires.push(LockAcquire { id, line });
            // A `let` binding keeps the guard live; a bare chain
            // releases the temporary at the end of the statement.
            if let Some(ident) = stmt_let_ident(masked, dot) {
                let depth = brace_depth(masked.as_bytes(), flow.body_span.0, dot);
                live.push(Live {
                    ident,
                    acq: idx,
                    depth,
                });
            }
        }
        return; // `.lock()` itself is not a resolvable workspace call.
    }

    flow.calls.push(CallSite {
        callee: name.to_string(),
        qual,
        self_recv,
        line,
        locks_held: live.iter().map(|g| g.acq).collect(),
    });
}

/// The receiver expression ending at the `.` at `dot`, normalized:
/// whitespace removed, leading `self.`/`&`/`*` stripped. Walks back
/// across newlines so multiline method chains keep their receiver.
fn receiver_text(masked: &str, dot: usize) -> Option<String> {
    let bytes = masked.as_bytes();
    let mut i = dot;
    loop {
        // Skip whitespace (method chains may break across lines).
        let mut k = i;
        while k > 0 && (bytes[k - 1] as char).is_whitespace() {
            k -= 1;
        }
        if k == 0 {
            i = 0;
            break;
        }
        match bytes[k - 1] {
            // `shards[i]` / `global()`: consume the group, then loop so
            // the identifier in front of it is consumed too.
            b']' => i = rmatch(bytes, k - 1, b'[', b']'),
            b')' => i = rmatch(bytes, k - 1, b'(', b')'),
            // `.` / `::` connectors between segments.
            b'.' => i = k - 1,
            b':' if k >= 2 && bytes[k - 2] == b':' => i = k - 2,
            b if b.is_ascii_alphanumeric() || b == b'_' => {
                let mut j = k;
                while j > 0 && (bytes[j - 1].is_ascii_alphanumeric() || bytes[j - 1] == b'_') {
                    j -= 1;
                }
                i = j;
                // An identifier extends the chain only through a
                // connector in front of it; anything else ends it.
                let mut k2 = j;
                while k2 > 0 && (bytes[k2 - 1] as char).is_whitespace() {
                    k2 -= 1;
                }
                if k2 > 0 && bytes[k2 - 1] == b'.' {
                    i = k2 - 1;
                } else if k2 >= 2 && bytes[k2 - 1] == b':' && bytes[k2 - 2] == b':' {
                    i = k2 - 2;
                } else {
                    break;
                }
            }
            _ => {
                i = k;
                break;
            }
        }
    }
    let raw: String = masked[i..dot]
        .chars()
        .filter(|c| !c.is_whitespace())
        .collect();
    let raw = raw.trim_start_matches(['&', '*']);
    let raw = raw.strip_prefix("self.").unwrap_or(raw);
    if raw.is_empty() || raw == "self" {
        return None;
    }
    Some(raw.to_string())
}

/// The `let` identifier of the statement containing `off`, if any.
fn stmt_let_ident(masked: &str, off: usize) -> Option<String> {
    let bytes = masked.as_bytes();
    let mut i = off;
    while i > 0 && !matches!(bytes[i - 1], b';' | b'{' | b'}') {
        i -= 1;
    }
    let stmt = &masked[i..off];
    let after = stmt.split("let ").nth(1)?;
    let after = after.trim_start();
    let after = after.strip_prefix("mut ").unwrap_or(after);
    let ident: String = after
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if ident.is_empty() {
        None
    } else {
        Some(ident)
    }
}

fn brace_depth(bytes: &[u8], from: usize, to: usize) -> i32 {
    let mut d = 0;
    for &b in &bytes[from..to.min(bytes.len())] {
        match b {
            b'{' => d += 1,
            b'}' => d -= 1,
            _ => {}
        }
    }
    d
}

/// Every offset of `kw` in `masked` at identifier boundaries.
fn keyword_sites(masked: &str, kw: &str) -> Vec<usize> {
    let bytes = masked.as_bytes();
    crate::lints::find_all(masked, kw)
        .into_iter()
        .filter(|&o| {
            let before_ok =
                o == 0 || !(bytes[o - 1].is_ascii_alphanumeric() || bytes[o - 1] == b'_');
            let after = o + kw.len();
            let after_ok = after >= bytes.len()
                || !(bytes[after].is_ascii_alphanumeric() || bytes[after] == b'_');
            before_ok && after_ok
        })
        .collect()
}

fn is_ident_at(bytes: &[u8], i: usize) -> bool {
    bytes
        .get(i)
        .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_')
}

fn is_ident_before(bytes: &[u8], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_')
}

fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && (bytes[i] as char).is_whitespace() {
        i += 1;
    }
    i
}

/// Skips past a balanced `open…close` group starting at `i` (which must
/// sit on `open`). Returns the offset just past the matching closer.
fn skip_balanced(bytes: &[u8], i: usize, open: u8, close: u8) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while j < bytes.len() {
        if bytes[j] == open {
            depth += 1;
        } else if bytes[j] == close {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    bytes.len()
}

/// Offset of the `}` matching the `{` at `open` (or EOF).
fn match_brace(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < bytes.len() {
        match bytes[j] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    bytes.len().saturating_sub(1)
}

/// Offset of the `)` matching the `(` at `open` (or EOF).
fn match_paren(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < bytes.len() {
        match bytes[j] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    bytes.len().saturating_sub(1)
}

/// Offset of the `open` matching the `close` at `at`, walking backward.
fn rmatch(bytes: &[u8], at: usize, open: u8, close: u8) -> usize {
    let mut depth = 0usize;
    let mut j = at + 1;
    while j > 0 {
        j -= 1;
        if bytes[j] == close {
            depth += 1;
        } else if bytes[j] == open {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flows(src: &str) -> Vec<FnFlow> {
        extract(&SourceFile::new("crates/store/src/x.rs", src))
    }

    #[test]
    fn finds_fns_with_impl_owners() {
        let f = flows(
            "pub fn free() {}\n\
             impl<T: Clone> Writer<T> {\n    fn method(&self) { helper(); }\n}\n\
             impl Drop for Writer<u8> {\n    fn drop(&mut self) {}\n}\n",
        );
        let names: Vec<(&str, &str)> = f
            .iter()
            .map(|x| (x.name.as_str(), x.owner.as_str()))
            .collect();
        assert_eq!(
            names,
            vec![("free", ""), ("method", "Writer"), ("drop", "Writer")],
            "{f:?}"
        );
        assert_eq!(f[1].calls.len(), 1);
        assert_eq!(f[1].calls[0].callee, "helper");
    }

    #[test]
    fn call_qualifiers_and_keywords() {
        let f = flows(
            "fn f(x: &S) {\n    if ready(x) { x.go(); }\n    Store::open(x);\n    \
             fs::rename(a, b);\n    Some(1);\n    self.tick();\n}\n",
        );
        let calls: Vec<(&str, &str, bool)> = f[0]
            .calls
            .iter()
            .map(|c| (c.callee.as_str(), c.qual.as_str(), c.self_recv))
            .collect();
        assert!(calls.contains(&("ready", "", false)), "{calls:?}");
        assert!(calls.contains(&("go", ".", false)), "{calls:?}");
        assert!(calls.contains(&("open", "Store", false)), "{calls:?}");
        assert!(calls.contains(&("tick", ".", true)), "{calls:?}");
        assert!(!calls.iter().any(|c| c.0 == "Some"), "{calls:?}");
        assert!(!calls.iter().any(|c| c.0 == "if"), "{calls:?}");
        assert_eq!(f[0].renames, vec![4]);
    }

    #[test]
    fn lock_order_pairs_and_receivers() {
        let f = flows(
            "fn f(&self) {\n    let a = self.registry.lock().unwrap();\n    \
             let b = JOURNAL\n        .lock()\n        .unwrap();\n    use_both(&a, &b);\n}\n",
        );
        let ids: Vec<&str> = f[0].acquires.iter().map(|a| a.id.as_str()).collect();
        assert_eq!(ids, vec!["registry", "JOURNAL"], "{f:?}");
        assert_eq!(f[0].lock_pairs, vec![(0, 1)]);
        // Both guards live at the call.
        let call = f[0].calls.iter().find(|c| c.callee == "use_both").unwrap();
        assert_eq!(call.locks_held, vec![0, 1]);
    }

    #[test]
    fn guard_scope_drop_and_index_receivers() {
        let f = flows(
            "fn f(&self) {\n    {\n        let a = shards[i].lock().unwrap();\n    }\n    \
             let b = shards[j].lock().unwrap();\n    drop(b);\n    let c = shards[j].lock().unwrap();\n}\n",
        );
        let ids: Vec<&str> = f[0].acquires.iter().map(|a| a.id.as_str()).collect();
        assert_eq!(ids, vec!["shards[i]", "shards[j]", "shards[j]"]);
        assert!(f[0].lock_pairs.is_empty(), "{:?}", f[0].lock_pairs);
    }

    #[test]
    fn durability_facts() {
        let f = flows(
            "fn seal(p: &Path, b: &[u8]) -> io::Result<()> {\n    \
             std::fs::create_dir_all(p.parent().unwrap())?;\n    \
             let mut f = File::create(&tmp)?;\n    f.write_all(b)?;\n    f.sync_all()?;\n    \
             std::fs::rename(&tmp, p)?;\n    sync_dir(p.parent().unwrap())\n}\n",
        );
        let x = &f[0];
        assert_eq!(x.create_dirs, vec![2]);
        assert!(x.file_writes.contains(&3), "{x:?}");
        assert_eq!(x.file_syncs, vec![5]);
        assert_eq!(x.renames, vec![6]);
        assert_eq!(x.dir_syncs, vec![7]);
    }

    #[test]
    fn test_regions_are_skipped_and_nested_fns_attributed() {
        let f = flows(
            "fn outer() {\n    fn inner() { inner_call(); }\n    outer_call();\n}\n\
             #[cfg(test)]\nmod tests {\n    fn t() { test_call(); }\n}\n",
        );
        let names: Vec<&str> = f.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
        let outer = &f[0];
        assert!(
            outer.calls.iter().all(|c| c.callee != "inner_call"),
            "{outer:?}"
        );
        assert!(outer.calls.iter().any(|c| c.callee == "outer_call"));
    }
}
