//! Command line for the workspace linter.
//!
//! ```text
//! logparse-lint --workspace [--root PATH] [--json] [--deny warnings] [PATH…]
//! logparse-lint --list
//! ```
//!
//! Positional paths filter the *reported* findings to files whose
//! workspace-relative path starts with one of them; analysis always
//! covers the whole workspace so cross-file lints stay sound.

#![forbid(unsafe_code)]

use logparse_lint::lints::CATALOG;
use logparse_lint::{is_fatal, report, run_workspace};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    json: bool,
    deny_warnings: bool,
    list: bool,
    only: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: false,
        deny_warnings: false,
        list: false,
        only: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => {}
            "--root" => {
                args.root =
                    PathBuf::from(it.next().ok_or_else(|| "--root needs a path".to_string())?);
            }
            "--json" => args.json = true,
            "--deny" => {
                let what = it
                    .next()
                    .ok_or_else(|| "--deny needs a level".to_string())?;
                if what != "warnings" {
                    return Err(format!("unknown --deny level `{what}`"));
                }
                args.deny_warnings = true;
            }
            "--list" => args.list = true,
            "--help" | "-h" => {
                return Err(String::new());
            }
            p if !p.starts_with('-') => args.only.push(p.replace('\\', "/")),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

const USAGE: &str = "usage: logparse-lint [--workspace] [--root PATH] [--json] \
                     [--deny warnings] [--list] [PATH…]";

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("{msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if args.list {
        for (name, severity, what) in CATALOG {
            println!("{name:<20} {:<8} {what}", severity.label());
        }
        return ExitCode::SUCCESS;
    }
    let mut findings = match run_workspace(&args.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!(
                "lint: cannot walk workspace at {}: {e}",
                args.root.display()
            );
            return ExitCode::from(2);
        }
    };
    if !args.only.is_empty() {
        findings.retain(|f| args.only.iter().any(|p| f.rel.starts_with(p.as_str())));
    }
    if args.json {
        print!("{}", report::json(&findings));
    } else {
        print!("{}", report::human(&findings, args.deny_warnings));
    }
    if !findings.is_empty() && is_fatal(&findings, args.deny_warnings) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
