//! Command line for the workspace linter.
//!
//! ```text
//! logparse-lint --workspace [--root PATH] [--json] [--deny warnings]
//!               [--stats] [--sarif PATH] [--no-cache] [PATH…]
//! logparse-lint --list
//! ```
//!
//! Positional paths filter the *reported* findings to files whose
//! workspace-relative path starts with one of them; analysis always
//! covers the whole workspace so cross-file lints stay sound.
//!
//! Per-file analyses are cached under `<root>/target/lint-cache`
//! (content-hash keyed; `--no-cache` bypasses it). `--stats` prints
//! phase timings, cache hit counts and call-graph coverage to stderr so
//! CI logs show cache effectiveness.

#![forbid(unsafe_code)]

use logparse_lint::lints::CATALOG;
use logparse_lint::{is_fatal, report, run_workspace_stats};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    json: bool,
    deny_warnings: bool,
    list: bool,
    stats: bool,
    no_cache: bool,
    sarif: Option<PathBuf>,
    only: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: false,
        deny_warnings: false,
        list: false,
        stats: false,
        no_cache: false,
        sarif: None,
        only: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => {}
            "--root" => {
                args.root =
                    PathBuf::from(it.next().ok_or_else(|| "--root needs a path".to_string())?);
            }
            "--json" => args.json = true,
            "--deny" => {
                let what = it
                    .next()
                    .ok_or_else(|| "--deny needs a level".to_string())?;
                if what != "warnings" {
                    return Err(format!("unknown --deny level `{what}`"));
                }
                args.deny_warnings = true;
            }
            "--list" => args.list = true,
            "--stats" => args.stats = true,
            "--no-cache" => args.no_cache = true,
            "--sarif" => {
                args.sarif = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--sarif needs a path".to_string())?,
                ));
            }
            "--help" | "-h" => {
                return Err(String::new());
            }
            p if !p.starts_with('-') => args.only.push(p.replace('\\', "/")),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

const USAGE: &str = "usage: logparse-lint [--workspace] [--root PATH] [--json] \
                     [--deny warnings] [--stats] [--sarif PATH] [--no-cache] \
                     [--list] [PATH…]";

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("{msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if args.list {
        for (name, severity, what) in CATALOG {
            println!("{name:<20} {:<8} {what}", severity.label());
        }
        return ExitCode::SUCCESS;
    }
    let cache_dir = args.root.join("target/lint-cache");
    let cache = if args.no_cache {
        None
    } else {
        Some(cache_dir.as_path())
    };
    let (mut findings, stats) = match run_workspace_stats(&args.root, cache) {
        Ok(out) => out,
        Err(e) => {
            eprintln!(
                "lint: cannot walk workspace at {}: {e}",
                args.root.display()
            );
            return ExitCode::from(2);
        }
    };
    if !args.only.is_empty() {
        findings.retain(|f| args.only.iter().any(|p| f.rel.starts_with(p.as_str())));
    }
    if let Some(path) = &args.sarif {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(path, report::sarif(&findings, args.deny_warnings)) {
            eprintln!("lint: cannot write SARIF to {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if args.json {
        print!("{}", report::json(&findings));
    } else {
        print!("{}", report::human(&findings, args.deny_warnings));
    }
    if args.stats {
        eprintln!(
            "lint --stats: {} files ({} cache hits, {} misses), {} fns, \
             calls {} resolved / {} unresolved, analyze {}ms + graph {}ms = {}ms",
            stats.files,
            stats.cache_hits,
            stats.cache_misses,
            stats.functions,
            stats.resolved_calls,
            stats.unresolved_calls,
            stats.analyze_ms,
            stats.graph_ms,
            stats.total_ms,
        );
    }
    if !findings.is_empty() && is_fatal(&findings, args.deny_warnings) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
