use crate::{jacobi_eigen, Matrix};

/// Principal component analysis of row-vector data.
///
/// Fitting centers the data, eigendecomposes the covariance matrix and
/// keeps the leading components whose cumulative variance reaches the
/// requested fraction — the construction of the *normal space* `S_d` in
/// Xu et al.'s anomaly detector, with the discarded components spanning
/// the *anomaly space* `S_a`.
///
/// # Example
///
/// ```
/// use logparse_linalg::{Matrix, Pca};
///
/// let data = Matrix::from_rows(&[
///     vec![0.0, 0.0],
///     vec![1.0, 1.0],
///     vec![2.0, 2.0],
///     vec![3.0, 3.0],
/// ]);
/// let pca = Pca::fit(&data, 0.95);
/// // Points on the diagonal have no residual...
/// assert!(pca.squared_prediction_error(&[4.0, 4.0]) < 1e-9);
/// // ...points off it do.
/// assert!(pca.squared_prediction_error(&[4.0, 0.0]) > 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    components: Vec<Vec<f64>>,
    eigenvalues: Vec<f64>,
    kept: usize,
}

impl Pca {
    /// Fits a PCA on `data` (rows are observations), keeping the smallest
    /// number of leading components whose cumulative variance is at least
    /// `variance_fraction` of the total. At least one component is always
    /// kept when any variance exists; a zero-variance dataset keeps none.
    ///
    /// # Panics
    ///
    /// Panics if `variance_fraction` is not within `(0, 1]`.
    pub fn fit(data: &Matrix, variance_fraction: f64) -> Self {
        assert!(
            variance_fraction > 0.0 && variance_fraction <= 1.0,
            "variance fraction must lie in (0, 1], got {variance_fraction}"
        );
        let mean = data.column_means();
        let eigen = jacobi_eigen(&data.covariance());
        let total: f64 = eigen.values.iter().filter(|&&v| v > 0.0).sum();
        let mut kept = 0;
        if total > 0.0 {
            let mut acc = 0.0;
            for &value in &eigen.values {
                acc += value.max(0.0);
                kept += 1;
                if acc / total >= variance_fraction {
                    break;
                }
            }
        }
        Pca {
            mean,
            components: eigen.vectors,
            eigenvalues: eigen.values,
            kept,
        }
    }

    /// Fits a PCA keeping exactly `k` components (clamped to the data
    /// dimensionality). Used for the paper-faithful configuration where
    /// Xu et al. fix the normal-space dimension.
    pub fn fit_fixed(data: &Matrix, k: usize) -> Self {
        let mean = data.column_means();
        let eigen = jacobi_eigen(&data.covariance());
        let kept = k.min(eigen.values.len());
        Pca {
            mean,
            components: eigen.vectors,
            eigenvalues: eigen.values,
            kept,
        }
    }

    /// The kept principal components (unit vectors, descending variance).
    pub fn components(&self) -> &[Vec<f64>] {
        &self.components[..self.kept]
    }

    /// All eigenvalues of the covariance matrix, descending.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Eigenvalues of the residual (anomaly) space — the input to the
    /// Q-statistic threshold.
    pub fn residual_eigenvalues(&self) -> &[f64] {
        &self.eigenvalues[self.kept..]
    }

    /// Number of kept components (the normal-space dimension).
    pub fn kept_components(&self) -> usize {
        self.kept
    }

    /// The squared prediction error of one observation: `‖(I − PPᵀ)(y −
    /// μ)‖²`, the squared distance from the normal space.
    ///
    /// # Panics
    ///
    /// Panics if `row` has a different dimensionality than the fitted
    /// data.
    pub fn squared_prediction_error(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.mean.len(), "dimensionality mismatch");
        let centered: Vec<f64> = row.iter().zip(&self.mean).map(|(y, m)| y - m).collect();
        // residual = centered − Σ_k (centered · v_k) v_k
        let mut residual = centered.clone();
        for component in self.components() {
            let projection: f64 = centered.iter().zip(component).map(|(a, b)| a * b).sum();
            for (r, c) in residual.iter_mut().zip(component) {
                *r -= projection * c;
            }
        }
        residual.iter().map(|v| v * v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_data() -> Matrix {
        // Points close to the line y = 2x.
        Matrix::from_rows(&[
            vec![1.0, 2.01],
            vec![2.0, 3.98],
            vec![3.0, 6.02],
            vec![4.0, 7.99],
            vec![5.0, 10.01],
        ])
    }

    #[test]
    fn one_dominant_direction_keeps_one_component() {
        let pca = Pca::fit(&line_data(), 0.95);
        assert_eq!(pca.kept_components(), 1);
        // Component aligns with (1, 2)/√5 up to sign.
        let c = &pca.components()[0];
        let expected = (1.0f64, 2.0f64);
        let norm = (expected.0 * expected.0 + expected.1 * expected.1).sqrt();
        let align = (c[0] * expected.0 / norm + c[1] * expected.1 / norm).abs();
        assert!(align > 0.999, "{align}");
    }

    #[test]
    fn points_on_subspace_have_tiny_spe() {
        let pca = Pca::fit(&line_data(), 0.95);
        assert!(pca.squared_prediction_error(&[6.0, 12.0]) < 1e-3);
    }

    #[test]
    fn points_off_subspace_have_large_spe() {
        let pca = Pca::fit(&line_data(), 0.95);
        let spe = pca.squared_prediction_error(&[6.0, 0.0]);
        assert!(spe > 10.0, "{spe}");
    }

    #[test]
    fn full_variance_keeps_all_informative_components() {
        let data = Matrix::from_rows(&[
            vec![1.0, 0.0, 5.0],
            vec![0.0, 1.0, 5.0],
            vec![1.0, 1.0, 5.0],
            vec![0.0, 0.0, 5.0],
        ]);
        let pca = Pca::fit(&data, 1.0);
        // Third column is constant: only two directions carry variance,
        // but cumulative-variance selection may stop once 100% reached.
        assert!(pca.kept_components() >= 2);
        assert!(pca.squared_prediction_error(&[0.5, 0.5, 5.0]) < 1e-9);
    }

    #[test]
    fn fit_fixed_respects_k() {
        let pca = Pca::fit_fixed(&line_data(), 2);
        assert_eq!(pca.kept_components(), 2);
        // With all components kept, every point reconstructs exactly.
        assert!(pca.squared_prediction_error(&[100.0, -3.0]) < 1e-9);
    }

    #[test]
    fn fit_fixed_clamps_to_dimension() {
        let pca = Pca::fit_fixed(&line_data(), 10);
        assert_eq!(pca.kept_components(), 2);
    }

    #[test]
    fn zero_variance_data_keeps_no_components() {
        let data = Matrix::from_rows(&[vec![3.0, 3.0], vec![3.0, 3.0]]);
        let pca = Pca::fit(&data, 0.95);
        assert_eq!(pca.kept_components(), 0);
        assert_eq!(pca.squared_prediction_error(&[3.0, 3.0]), 0.0);
        assert!(pca.squared_prediction_error(&[4.0, 3.0]) > 0.9);
    }

    #[test]
    fn residual_eigenvalues_complement_kept() {
        let pca = Pca::fit(&line_data(), 0.95);
        assert_eq!(
            pca.kept_components() + pca.residual_eigenvalues().len(),
            pca.eigenvalues().len()
        );
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn spe_rejects_wrong_dimension() {
        Pca::fit(&line_data(), 0.95).squared_prediction_error(&[1.0]);
    }
}
