//! Gaussian statistics needed by the PCA anomaly detector.

/// Inverse of the standard normal CDF (the probit function), computed
/// with Acklam's rational approximation (relative error below 1.15e-9
/// over the open unit interval).
///
/// # Panics
///
/// Panics if `p` is not strictly between 0 and 1.
///
/// # Example
///
/// ```
/// use logparse_linalg::inverse_normal_cdf;
///
/// assert!(inverse_normal_cdf(0.5).abs() < 1e-12);
/// assert!((inverse_normal_cdf(0.975) - 1.959964).abs() < 1e-4);
/// ```
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "probability must lie strictly inside (0, 1), got {p}"
    );

    // Coefficients for Acklam's approximation.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// The Jackson–Mudholkar threshold `Q_α` on the squared prediction error
/// of a PCA residual, as used by Xu et al. (SOSP'09) and reproduced in
/// the DSN'16 study with `α = 0.001`.
///
/// `residual_eigenvalues` are the eigenvalues of the covariance matrix
/// **not** captured by the selected principal components (λ_{k+1} … λ_n);
/// `alpha` is the false-positive rate, giving a `(1 − α)` confidence
/// level. Returns 0 when the residual space is empty or carries no
/// variance (any positive SPE is then anomalous).
///
/// # Panics
///
/// Panics if `alpha` is not strictly between 0 and 1.
pub fn q_statistic_threshold(residual_eigenvalues: &[f64], alpha: f64) -> f64 {
    let phi1: f64 = residual_eigenvalues.iter().sum();
    let phi2: f64 = residual_eigenvalues.iter().map(|l| l * l).sum();
    let phi3: f64 = residual_eigenvalues.iter().map(|l| l * l * l).sum();
    if phi1 <= 0.0 || phi2 <= 0.0 {
        return 0.0;
    }
    let h0 = 1.0 - 2.0 * phi1 * phi3 / (3.0 * phi2 * phi2);
    let c_alpha = inverse_normal_cdf(1.0 - alpha);
    let term = c_alpha * (2.0 * phi2 * h0 * h0).sqrt() / phi1
        + 1.0
        + phi2 * h0 * (h0 - 1.0) / (phi1 * phi1);
    if term <= 0.0 {
        // The approximation can underflow for degenerate spectra; fall
        // back to the dominant residual variance scale.
        return phi1;
    }
    phi1 * term.powf(1.0 / h0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probit_matches_known_quantiles() {
        let cases = [
            (0.5, 0.0),
            (0.8413447, 1.0),
            (0.9772499, 2.0),
            (0.0013499, -3.0),
            (0.999, 3.0902),
        ];
        for (p, z) in cases {
            assert!(
                (inverse_normal_cdf(p) - z).abs() < 1e-3,
                "p={p}: {} vs {z}",
                inverse_normal_cdf(p)
            );
        }
    }

    #[test]
    fn probit_is_antisymmetric() {
        for p in [0.01, 0.1, 0.3, 0.45] {
            let lo = inverse_normal_cdf(p);
            let hi = inverse_normal_cdf(1.0 - p);
            assert!((lo + hi).abs() < 1e-9, "p={p}");
        }
    }

    #[test]
    fn probit_is_monotone() {
        let mut prev = f64::NEG_INFINITY;
        for i in 1..1000 {
            let z = inverse_normal_cdf(i as f64 / 1000.0);
            assert!(z > prev);
            prev = z;
        }
    }

    #[test]
    #[should_panic(expected = "strictly inside")]
    fn probit_rejects_zero() {
        inverse_normal_cdf(0.0);
    }

    #[test]
    fn q_threshold_is_zero_without_residual_variance() {
        assert_eq!(q_statistic_threshold(&[], 0.001), 0.0);
        assert_eq!(q_statistic_threshold(&[0.0, 0.0], 0.001), 0.0);
    }

    #[test]
    fn q_threshold_grows_with_residual_variance() {
        let small = q_statistic_threshold(&[0.1, 0.05], 0.001);
        let large = q_statistic_threshold(&[1.0, 0.5], 0.001);
        assert!(large > small);
        assert!(small > 0.0);
    }

    #[test]
    fn q_threshold_shrinks_with_larger_alpha() {
        let strict = q_statistic_threshold(&[1.0, 0.5, 0.2], 0.001);
        let loose = q_statistic_threshold(&[1.0, 0.5, 0.2], 0.05);
        assert!(strict > loose);
    }

    #[test]
    fn q_threshold_covers_typical_gaussian_spe() {
        // Residual space of 3 unit-variance dimensions: SPE of Gaussian
        // noise has mean 3; the 99.9% threshold must sit well above it.
        let t = q_statistic_threshold(&[1.0, 1.0, 1.0], 0.001);
        assert!(t > 3.0, "{t}");
        assert!(t < 50.0, "{t}");
    }
}
