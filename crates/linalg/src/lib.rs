//! Minimal dense linear algebra for the `logmine` workspace.
//!
//! The PCA-based anomaly detector of Xu et al. (SOSP'09) — the log-mining
//! task reproduced in the DSN'16 study — needs only small dense matrices
//! (the event-count matrix has one column per event type, at most a few
//! hundred), a symmetric eigendecomposition, and two pieces of Gaussian
//! statistics (the inverse normal CDF and the Jackson–Mudholkar Q-statistic
//! threshold). This crate implements exactly that, with no external
//! dependencies.
//!
//! # Example
//!
//! ```
//! use logparse_linalg::{Matrix, Pca};
//!
//! // Two obvious directions of variance.
//! let data = Matrix::from_rows(&[
//!     vec![1.0, 0.1],
//!     vec![2.0, 0.2],
//!     vec![3.0, 0.1],
//!     vec![4.0, 0.2],
//! ]);
//! let pca = Pca::fit(&data, 0.95);
//! assert_eq!(pca.components().len(), 1); // one component captures ≥95%
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod eigen;
mod matrix;
mod pca;
mod stats;

pub use eigen::{jacobi_eigen, Eigen};
pub use matrix::Matrix;
pub use pca::Pca;
pub use stats::{inverse_normal_cdf, q_statistic_threshold};
