use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`.
///
/// Sized for the workloads of this workspace: event-count matrices with
/// hundreds of columns and up to hundreds of thousands of rows, and the
/// small square covariance matrices derived from them.
///
/// # Example
///
/// ```
/// use logparse_linalg::Matrix;
///
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(m[(1, 0)], 3.0);
/// assert_eq!(m.transpose()[(0, 1)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for row in rows {
            assert_eq!(row.len(), n_cols, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: n_rows,
            cols: n_cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// A view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self × other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn multiply(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "dimension mismatch: {}x{} × {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    out[(r, c)] += a * other[(k, c)];
                }
            }
        }
        out
    }

    /// Matrix-vector product `self × v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn multiply_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "vector length must equal column count");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Column means, the centering vector used before PCA.
    pub fn column_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.cols];
        if self.rows == 0 {
            return means;
        }
        for r in 0..self.rows {
            for (m, v) in means.iter_mut().zip(self.row(r)) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= self.rows as f64;
        }
        means
    }

    /// The `cols × cols` sample covariance matrix of the rows
    /// (denominator `rows - 1`; zero matrix when fewer than two rows).
    pub fn covariance(&self) -> Matrix {
        let d = self.cols;
        let mut cov = Matrix::zeros(d, d);
        if self.rows < 2 {
            return cov;
        }
        let means = self.column_means();
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..d {
                let di = row[i] - means[i];
                if di == 0.0 {
                    continue;
                }
                for j in i..d {
                    cov[(i, j)] += di * (row[j] - means[j]);
                }
            }
        }
        let denom = (self.rows - 1) as f64;
        for i in 0..d {
            for j in i..d {
                cov[(i, j)] /= denom;
                cov[(j, i)] = cov[(i, j)];
            }
        }
        cov
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute off-diagonal element (square matrices only);
    /// convergence measure for the Jacobi sweep.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn max_off_diagonal(&self) -> f64 {
        assert_eq!(self.rows, self.cols, "matrix must be square");
        let mut max = 0.0f64;
        for r in 0..self.rows {
            for c in 0..self.cols {
                if r != c {
                    max = max.max(self[(r, c)].abs());
                }
            }
        }
        max
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            for c in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "…")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_multiplication_is_identity() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.multiply(&Matrix::identity(2)), m);
        assert_eq!(Matrix::identity(2).multiply(&m), m);
    }

    #[test]
    fn transpose_twice_is_identity_op() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().rows(), 3);
    }

    #[test]
    fn multiply_matches_hand_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.multiply(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn multiply_vec_matches_matrix_multiply() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.multiply_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn column_means_are_per_column() {
        let m = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 30.0]]);
        assert_eq!(m.column_means(), vec![2.0, 20.0]);
    }

    #[test]
    fn covariance_of_perfectly_correlated_columns() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]);
        let cov = m.covariance();
        // var(x) = 1, var(y) = 4, cov(x,y) = 2
        assert!((cov[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((cov[(1, 1)] - 4.0).abs() < 1e-12);
        assert!((cov[(0, 1)] - 2.0).abs() < 1e-12);
        assert_eq!(cov[(0, 1)], cov[(1, 0)]);
    }

    #[test]
    fn covariance_of_single_row_is_zero() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0]]);
        assert_eq!(m.covariance(), Matrix::zeros(2, 2));
    }

    #[test]
    #[should_panic(expected = "all rows must have equal length")]
    fn ragged_rows_panic() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_multiply_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        a.multiply(&b);
    }

    #[test]
    fn display_is_nonempty_even_for_zero_sized() {
        let m = Matrix::zeros(0, 0);
        assert!(!format!("{m}").is_empty());
    }
}
