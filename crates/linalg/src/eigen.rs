use crate::Matrix;

/// Eigendecomposition of a real symmetric matrix.
#[derive(Debug, Clone)]
pub struct Eigen {
    /// Eigenvalues in descending order.
    pub values: Vec<f64>,
    /// Corresponding unit eigenvectors, `vectors[k]` pairing with
    /// `values[k]`.
    pub vectors: Vec<Vec<f64>>,
}

/// Computes the eigendecomposition of a symmetric matrix with the cyclic
/// Jacobi rotation method.
///
/// Jacobi is the right tool here: the covariance matrices of event-count
/// data are small (one row/column per event type, ≤ a few hundred),
/// symmetric and dense, and Jacobi's unconditional numerical stability
/// beats the faster-but-trickier QR variants at this size.
///
/// The sweep stops when every off-diagonal element falls below `1e-12 ×`
/// the Frobenius norm, or after 100 sweeps.
///
/// # Panics
///
/// Panics if the matrix is not square. Symmetry is assumed; only the
/// upper triangle drives the rotations.
///
/// # Example
///
/// ```
/// use logparse_linalg::{jacobi_eigen, Matrix};
///
/// let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
/// let eig = jacobi_eigen(&m);
/// assert!((eig.values[0] - 3.0).abs() < 1e-9);
/// assert!((eig.values[1] - 1.0).abs() < 1e-9);
/// ```
pub fn jacobi_eigen(matrix: &Matrix) -> Eigen {
    assert_eq!(matrix.rows(), matrix.cols(), "matrix must be square");
    let n = matrix.rows();
    if n == 0 {
        return Eigen {
            values: Vec::new(),
            vectors: Vec::new(),
        };
    }
    let mut a = matrix.clone();
    let mut v = Matrix::identity(n);
    let tolerance = 1e-12 * matrix.frobenius_norm().max(f64::MIN_POSITIVE);

    for _sweep in 0..100 {
        if a.max_off_diagonal() <= tolerance {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[(p, q)];
                if apq.abs() <= tolerance {
                    continue;
                }
                let app = a[(p, p)];
                let aqq = a[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                // Stable computation of tan of the rotation angle.
                let t = {
                    let sign = if theta >= 0.0 { 1.0 } else { -1.0 };
                    sign / (theta.abs() + (theta * theta + 1.0).sqrt())
                };
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                // A <- Jᵀ A J, touching only rows/cols p and q.
                for k in 0..n {
                    let akp = a[(k, p)];
                    let akq = a[(k, q)];
                    a[(k, p)] = c * akp - s * akq;
                    a[(k, q)] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[(p, k)];
                    let aqk = a[(q, k)];
                    a[(p, k)] = c * apk - s * aqk;
                    a[(q, k)] = s * apk + c * aqk;
                }
                // Accumulate the rotation into the eigenvector matrix.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        a[(j, j)]
            .partial_cmp(&a[(i, i)])
            .expect("finite eigenvalues")
    });
    let values = order.iter().map(|&i| a[(i, i)]).collect();
    let vectors = order
        .iter()
        .map(|&col| (0..n).map(|row| v[(row, col)]).collect())
        .collect();
    Eigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_sorted_diagonal() {
        let m = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.0],
            vec![0.0, 5.0, 0.0],
            vec![0.0, 0.0, 3.0],
        ]);
        let eig = jacobi_eigen(&m);
        assert_eq!(eig.values, vec![5.0, 3.0, 1.0]);
    }

    #[test]
    fn two_by_two_known_answer() {
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let eig = jacobi_eigen(&m);
        assert!((eig.values[0] - 3.0).abs() < 1e-10);
        assert!((eig.values[1] - 1.0).abs() < 1e-10);
        // Leading eigenvector is (1,1)/√2 up to sign.
        let v = &eig.vectors[0];
        assert!((v[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
        assert!((v[0] - v[1]).abs() < 1e-9);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let m = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 2.0],
        ]);
        let eig = jacobi_eigen(&m);
        for i in 0..3 {
            assert!((dot(&eig.vectors[i], &eig.vectors[i]) - 1.0).abs() < 1e-9);
            for j in (i + 1)..3 {
                assert!(dot(&eig.vectors[i], &eig.vectors[j]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn reconstruction_from_eigenpairs_matches_original() {
        let m = Matrix::from_rows(&[
            vec![6.0, 2.0, 1.0],
            vec![2.0, 5.0, 2.0],
            vec![1.0, 2.0, 4.0],
        ]);
        let eig = jacobi_eigen(&m);
        let n = 3;
        let mut rec = Matrix::zeros(n, n);
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    rec[(i, j)] += eig.values[k] * eig.vectors[k][i] * eig.vectors[k][j];
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                assert!((rec[(i, j)] - m[(i, j)]).abs() < 1e-8, "({i},{j})");
            }
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let m = Matrix::from_rows(&[vec![3.0, 1.0], vec![1.0, 7.0]]);
        let eig = jacobi_eigen(&m);
        assert!((eig.values.iter().sum::<f64>() - 10.0).abs() < 1e-10);
    }

    #[test]
    fn zero_sized_matrix_is_fine() {
        let eig = jacobi_eigen(&Matrix::zeros(0, 0));
        assert!(eig.values.is_empty());
    }

    #[test]
    fn already_diagonal_converges_immediately() {
        let m = Matrix::identity(4);
        let eig = jacobi_eigen(&m);
        assert_eq!(eig.values, vec![1.0; 4]);
    }
}
