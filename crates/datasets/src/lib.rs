//! Seeded synthetic log dataset generators modeled on the five corpora of
//! the DSN'16 study (Table I):
//!
//! | dataset | module | #events | lengths | real size |
//! |---------|--------|---------|---------|-----------|
//! | BGL (BlueGene/L supercomputer) | [`bgl`] | 376 | 10–102 | 4 747 963 |
//! | HPC (Los Alamos cluster) | [`hpc`] | 105 | 6–104 | 433 490 |
//! | HDFS (Hadoop on EC2) | [`hdfs`] | 29 | 8–29 | 11 175 629 |
//! | Zookeeper (32-node lab cluster) | [`zookeeper`] | 80 | 8–27 | 74 380 |
//! | Proxifier (desktop proxy client) | [`proxifier`] | 8 | 10–27 | 10 108 |
//!
//! The real corpora are not redistributable, so each module generates a
//! synthetic equivalent: a template library sized to the corpus's event
//! count, with its length profile and a Zipf frequency skew, rendered with
//! typed parameter slots (IPs, block ids, core ids, paths, sizes, …).
//! Because the corpus is generated, every message carries a ground-truth
//! event label — the synthetic stand-in for the study's hand-built
//! ground truth. See DESIGN.md for the full substitution rationale.
//!
//! [`hdfs::generate_sessions`] additionally simulates per-block event
//! flows with labeled anomalies, the substrate for the RQ3 anomaly
//! detection experiment (Table III).
//!
//! # Example
//!
//! ```
//! use logparse_datasets::hdfs;
//!
//! let data = hdfs::generate(1000, 42);
//! assert_eq!(data.len(), 1000);
//! // Every message is labeled with the template that produced it.
//! assert!(data.truth_templates[data.labels[0]].matches(&data.corpus.tokens(0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bgl;
pub mod hdfs;
pub mod hpc;
pub mod proxifier;
pub mod zookeeper;

mod generator;
mod spec;
mod synth;

pub use generator::{DatasetSpec, LabeledCorpus};
pub use spec::{Segment, SlotKind, TemplateSpec};
pub use synth::{synthesize_template_families, synthesize_templates};

/// The five dataset specs of the study, in Table I order.
pub fn study_datasets() -> Vec<DatasetSpec> {
    vec![
        bgl::spec(),
        hpc::spec(),
        proxifier::spec(),
        hdfs::spec(),
        zookeeper::spec(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_datasets_match_table_one_event_counts() {
        let counts: Vec<(&str, usize)> = study_datasets()
            .iter()
            .map(|d| (d.name(), d.event_count()))
            .collect();
        assert_eq!(
            counts,
            vec![
                ("BGL", 376),
                ("HPC", 105),
                ("Proxifier", 8),
                ("HDFS", 29),
                ("Zookeeper", 80),
            ]
        );
    }
}
