//! The HDFS dataset: 29 block-lifecycle event types modeled on the
//! Hadoop File System logs Xu et al. collected on Amazon EC2 (the corpus
//! behind the study's Fig. 1 and its RQ3 anomaly-detection experiment).
//!
//! Two generators are provided:
//!
//! * [`spec`]/[`generate`] — i.i.d. sampling over the template library,
//!   used by the parsing accuracy and efficiency experiments;
//! * [`generate_sessions`] — a **block-session simulator** that emits
//!   per-block event flows (allocate → receive×replicas → responder →
//!   addStoredBlock → …) with labeled anomalous flows injected at a
//!   configurable rate. This is the substitute for the paper's 575 061
//!   hand-labeled block operation requests (16 838 anomalies ≈ 2.9 %);
//!   see DESIGN.md for the substitution rationale.

use logparse_core::{Corpus, Tokenizer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{DatasetSpec, LabeledCorpus, TemplateSpec};

/// Event indices into [`templates`], named for readability of the session
/// simulator below.
pub mod event {
    /// `BLOCK* NameSystem.allocateBlock: <path> <blk>`
    pub const ALLOCATE: usize = 0;
    /// `Receiving block <blk> src: <ip:port> dest: <ip:port>`
    pub const RECEIVING: usize = 1;
    /// `Received block <blk> of size <size> from <ip>`
    pub const RECEIVED: usize = 2;
    /// `PacketResponder <small> for block <blk> terminating`
    pub const RESPONDER: usize = 3;
    /// `BLOCK* NameSystem.addStoredBlock: blockMap updated: …`
    pub const ADD_STORED: usize = 4;
    /// `Verification succeeded for <blk>`
    pub const VERIFICATION: usize = 5;
    /// `Served block <blk> to <ip>`
    pub const SERVED: usize = 6;
    /// `BLOCK* NameSystem.delete: <blk> is added to invalidSet of …`
    pub const DELETE: usize = 7;
    /// `Deleting block <blk> file <path>`
    pub const DELETING_FILE: usize = 8;
    /// `Receiving empty packet for block <blk>`
    pub const RECEIVING_EMPTY: usize = 9;
    /// `PacketResponder <small> for block <blk> Interrupted.`
    pub const RESPONDER_INTERRUPTED: usize = 10;
    /// `Exception in receiveBlock for block <blk> …`
    pub const EXCEPTION_RECEIVE: usize = 11;
    /// `writeBlock <blk> received exception …`
    pub const WRITE_EXCEPTION: usize = 12;
    /// `… Redundant addStoredBlock request received …`
    pub const REDUNDANT_ADD: usize = 13;
    /// `… addStoredBlock request received … does not belong to any file.`
    pub const ADD_NO_FILE: usize = 14;
    /// `BLOCK* ask <ip:port> to replicate <blk> to datanode(s) <ip:port>`
    pub const ASK_REPLICATE: usize = 15;
    /// `Starting thread to transfer block <blk> to <ip:port>`
    pub const START_TRANSFER: usize = 16;
    /// `Failed to transfer <blk> to <ip:port> …`
    pub const FAILED_TRANSFER: usize = 17;
    /// `Transmitted block <blk> to <ip:port>`
    pub const TRANSMITTED: usize = 18;
    /// `PendingReplicationMonitor timed out block <blk>`
    pub const PENDING_TIMEOUT: usize = 19;
    /// `Unexpected error trying to delete block <blk> …`
    pub const UNEXPECTED_DELETE: usize = 20;
    /// `Changing block file offset of block <blk> …`
    pub const CHANGING_OFFSET: usize = 21;
    /// `BLOCK* Removing block <blk> from neededReplications …`
    pub const REMOVING_NEEDED: usize = 22;
    /// `Adding an already existing block <blk>`
    pub const ALREADY_EXISTS: usize = 23;
    /// `Got exception while serving <blk> to <ip:port> …`
    pub const SERVE_EXCEPTION: usize = 24;
    /// `Reopen Block <blk>`
    pub const REOPEN: usize = 25;
    /// `waitForAckedSeqno took <ms> for block <blk>`
    pub const ACK_WAIT: usize = 26;
    /// `BLOCK* NameSystem.blockReceived: <blk> is received from <ip:port>`
    pub const BLOCK_RECEIVED: usize = 27;
    /// `Interrupted receiver for block <blk> from <ip:port>`
    pub const INTERRUPTED_RECEIVER: usize = 28;
}

/// The 29 HDFS event templates (the paper reports exactly 29 event types
/// for this dataset).
pub fn templates() -> Vec<TemplateSpec> {
    [
        "BLOCK* NameSystem.allocateBlock: <path> <blk>",
        "Receiving block <blk> src: <ip:port> dest: <ip:port>",
        "Received block <blk> of size <size> from <ip>",
        "PacketResponder <small> for block <blk> terminating",
        "BLOCK* NameSystem.addStoredBlock: blockMap updated: <ip:port> is added to <blk> size <size>",
        "Verification succeeded for <blk>",
        "Served block <blk> to <ip>",
        "BLOCK* NameSystem.delete: <blk> is added to invalidSet of <ip:port>",
        "Deleting block <blk> file <path>",
        "Receiving empty packet for block <blk>",
        "PacketResponder <small> for block <blk> Interrupted.",
        "Exception in receiveBlock for block <blk> java.io.IOException: Connection reset by peer",
        "writeBlock <blk> received exception java.io.IOException: Could not read from stream",
        "BLOCK* NameSystem.addStoredBlock: Redundant addStoredBlock request received for <blk> on <ip:port> size <size>",
        "BLOCK* NameSystem.addStoredBlock: addStoredBlock request received for <blk> on <ip:port> size <size> But it does not belong to any file.",
        "BLOCK* ask <ip:port> to replicate <blk> to datanode(s) <ip:port>",
        "Starting thread to transfer block <blk> to <ip:port>",
        "Failed to transfer <blk> to <ip:port> got java.io.IOException: Connection refused",
        "Transmitted block <blk> to <ip:port>",
        "PendingReplicationMonitor timed out block <blk>",
        "Unexpected error trying to delete block <blk> BlockInfo not found in volumeMap",
        "Changing block file offset of block <blk> from <int> to <int> meta file offset to <int>",
        "BLOCK* Removing block <blk> from neededReplications as it does not belong to any file",
        "Adding an already existing block <blk>",
        "Got exception while serving <blk> to <ip:port> java.io.IOException: Broken pipe",
        "Reopen Block <blk>",
        "waitForAckedSeqno took <ms> for block <blk>",
        "BLOCK* NameSystem.blockReceived: <blk> is received from <ip:port>",
        "Interrupted receiver for block <blk> from <ip:port>",
    ]
    .iter()
    .map(|p| TemplateSpec::parse(p))
    .collect()
}

/// The HDFS dataset spec with volume weights shaped like the real corpus
/// (the write-path events dominate: receiving / received / responder /
/// addStoredBlock account for most of the 11 M lines).
pub fn spec() -> DatasetSpec {
    let templates = templates();
    let mut weights = vec![0.3f64; templates.len()];
    weights[event::ALLOCATE] = 20.0;
    weights[event::RECEIVING] = 60.0;
    weights[event::RECEIVED] = 55.0;
    weights[event::RESPONDER] = 55.0;
    weights[event::ADD_STORED] = 60.0;
    weights[event::VERIFICATION] = 10.0;
    weights[event::SERVED] = 12.0;
    weights[event::DELETE] = 6.0;
    weights[event::DELETING_FILE] = 6.0;
    weights[event::BLOCK_RECEIVED] = 18.0;
    DatasetSpec::with_weights("HDFS", templates, weights)
}

/// Generates `n` i.i.d. HDFS messages.
pub fn generate(n: usize, seed: u64) -> LabeledCorpus {
    spec().generate(n, seed)
}

/// Output of the block-session simulator.
#[derive(Debug, Clone)]
pub struct HdfsSessions {
    /// The generated messages with ground-truth event labels.
    pub data: LabeledCorpus,
    /// For each message, the index of the block (session) it belongs to.
    pub block_of: Vec<usize>,
    /// The block id string of each block, e.g. `blk_1234…`.
    pub block_ids: Vec<String>,
    /// Ground-truth anomaly label per block.
    pub anomalous: Vec<bool>,
}

impl HdfsSessions {
    /// Number of blocks (sessions).
    pub fn block_count(&self) -> usize {
        self.block_ids.len()
    }

    /// Number of ground-truth anomalous blocks.
    pub fn anomaly_count(&self) -> usize {
        self.anomalous.iter().filter(|&&a| a).count()
    }
}

/// The distinct anomalous flow shapes the simulator injects. Each mirrors
/// a failure mode of the real system that Xu et al.'s labels capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AnomalyKind {
    /// Write aborted mid-stream: receivers raise exceptions, responders
    /// never terminate.
    TruncatedWrite,
    /// A replica was lost; the namenode re-replicates, transfers fail
    /// repeatedly and the pending-replication monitor times out.
    ReplicationStorm,
    /// The namenode receives redundant addStoredBlock requests.
    RedundantAdd,
    /// Deletion raced block reports: volume map inconsistencies.
    DeleteRace,
    /// Read path failure: serving throws, receiver interrupted, reopen.
    ServeFailure,
}

const ANOMALY_KINDS: [AnomalyKind; 5] = [
    AnomalyKind::TruncatedWrite,
    AnomalyKind::ReplicationStorm,
    AnomalyKind::RedundantAdd,
    AnomalyKind::DeleteRace,
    AnomalyKind::ServeFailure,
];

/// Simulates `blocks` block sessions with anomalies injected at
/// `anomaly_rate` (the paper's corpus has 16 838 / 575 061 ≈ 2.9 %).
/// Within a session every message carries the session's block id, so the
/// downstream event-count matrix can be keyed by block exactly as in
/// Xu et al.
///
/// # Panics
///
/// Panics if `anomaly_rate` is not within `[0, 1]`.
pub fn generate_sessions(blocks: usize, anomaly_rate: f64, seed: u64) -> HdfsSessions {
    assert!(
        (0.0..=1.0).contains(&anomaly_rate),
        "anomaly rate must lie in [0, 1], got {anomaly_rate}"
    );
    let specs = templates();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut lines = Vec::new();
    let mut labels = Vec::new();
    let mut block_of = Vec::new();
    let mut block_ids = Vec::with_capacity(blocks);
    let mut anomalous = Vec::with_capacity(blocks);

    for block in 0..blocks {
        let block_id = format!("blk_{}", rng.gen_range(10_u64.pow(17)..10_u64.pow(19)));
        let is_anomalous = rng.gen_bool(anomaly_rate);
        let emit = |ev: usize,
                    rng: &mut StdRng,
                    lines: &mut Vec<String>,
                    labels: &mut Vec<usize>,
                    block_of: &mut Vec<usize>| {
            lines.push(render_for_block(&specs[ev], rng, &block_id));
            labels.push(ev);
            block_of.push(block);
        };

        if is_anomalous {
            let kind = ANOMALY_KINDS[rng.gen_range(0..ANOMALY_KINDS.len())];
            match kind {
                AnomalyKind::TruncatedWrite => {
                    emit(
                        event::ALLOCATE,
                        &mut rng,
                        &mut lines,
                        &mut labels,
                        &mut block_of,
                    );
                    for _ in 0..3 {
                        emit(
                            event::RECEIVING,
                            &mut rng,
                            &mut lines,
                            &mut labels,
                            &mut block_of,
                        );
                    }
                    for _ in 0..rng.gen_range(1..=3) {
                        emit(
                            event::EXCEPTION_RECEIVE,
                            &mut rng,
                            &mut lines,
                            &mut labels,
                            &mut block_of,
                        );
                    }
                    emit(
                        event::WRITE_EXCEPTION,
                        &mut rng,
                        &mut lines,
                        &mut labels,
                        &mut block_of,
                    );
                    emit(
                        event::RESPONDER_INTERRUPTED,
                        &mut rng,
                        &mut lines,
                        &mut labels,
                        &mut block_of,
                    );
                }
                AnomalyKind::ReplicationStorm => {
                    normal_write(
                        &mut rng,
                        &specs,
                        &block_id,
                        block,
                        2,
                        &mut lines,
                        &mut labels,
                        &mut block_of,
                    );
                    emit(
                        event::ASK_REPLICATE,
                        &mut rng,
                        &mut lines,
                        &mut labels,
                        &mut block_of,
                    );
                    for _ in 0..rng.gen_range(2..=4) {
                        emit(
                            event::START_TRANSFER,
                            &mut rng,
                            &mut lines,
                            &mut labels,
                            &mut block_of,
                        );
                        emit(
                            event::FAILED_TRANSFER,
                            &mut rng,
                            &mut lines,
                            &mut labels,
                            &mut block_of,
                        );
                    }
                    emit(
                        event::PENDING_TIMEOUT,
                        &mut rng,
                        &mut lines,
                        &mut labels,
                        &mut block_of,
                    );
                }
                AnomalyKind::RedundantAdd => {
                    normal_write(
                        &mut rng,
                        &specs,
                        &block_id,
                        block,
                        3,
                        &mut lines,
                        &mut labels,
                        &mut block_of,
                    );
                    emit(
                        event::ALREADY_EXISTS,
                        &mut rng,
                        &mut lines,
                        &mut labels,
                        &mut block_of,
                    );
                    for _ in 0..rng.gen_range(3..=6) {
                        emit(
                            event::REDUNDANT_ADD,
                            &mut rng,
                            &mut lines,
                            &mut labels,
                            &mut block_of,
                        );
                    }
                }
                AnomalyKind::DeleteRace => {
                    normal_write(
                        &mut rng,
                        &specs,
                        &block_id,
                        block,
                        3,
                        &mut lines,
                        &mut labels,
                        &mut block_of,
                    );
                    emit(
                        event::DELETE,
                        &mut rng,
                        &mut lines,
                        &mut labels,
                        &mut block_of,
                    );
                    emit(
                        event::UNEXPECTED_DELETE,
                        &mut rng,
                        &mut lines,
                        &mut labels,
                        &mut block_of,
                    );
                    emit(
                        event::ADD_NO_FILE,
                        &mut rng,
                        &mut lines,
                        &mut labels,
                        &mut block_of,
                    );
                    emit(
                        event::REMOVING_NEEDED,
                        &mut rng,
                        &mut lines,
                        &mut labels,
                        &mut block_of,
                    );
                }
                AnomalyKind::ServeFailure => {
                    normal_write(
                        &mut rng,
                        &specs,
                        &block_id,
                        block,
                        3,
                        &mut lines,
                        &mut labels,
                        &mut block_of,
                    );
                    emit(
                        event::SERVED,
                        &mut rng,
                        &mut lines,
                        &mut labels,
                        &mut block_of,
                    );
                    for _ in 0..rng.gen_range(2..=3) {
                        emit(
                            event::SERVE_EXCEPTION,
                            &mut rng,
                            &mut lines,
                            &mut labels,
                            &mut block_of,
                        );
                    }
                    emit(
                        event::INTERRUPTED_RECEIVER,
                        &mut rng,
                        &mut lines,
                        &mut labels,
                        &mut block_of,
                    );
                    emit(
                        event::REOPEN,
                        &mut rng,
                        &mut lines,
                        &mut labels,
                        &mut block_of,
                    );
                }
            }
        } else {
            normal_write(
                &mut rng,
                &specs,
                &block_id,
                block,
                3,
                &mut lines,
                &mut labels,
                &mut block_of,
            );
            // Occasional healthy read / maintenance traffic.
            if rng.gen_bool(0.3) {
                lines.push(render_for_block(
                    &specs[event::VERIFICATION],
                    &mut rng,
                    &block_id,
                ));
                labels.push(event::VERIFICATION);
                block_of.push(block);
            }
            for _ in 0..rng.gen_range(0..=2) {
                lines.push(render_for_block(&specs[event::SERVED], &mut rng, &block_id));
                labels.push(event::SERVED);
                block_of.push(block);
            }
            if rng.gen_bool(0.15) {
                lines.push(render_for_block(&specs[event::DELETE], &mut rng, &block_id));
                labels.push(event::DELETE);
                block_of.push(block);
                lines.push(render_for_block(
                    &specs[event::DELETING_FILE],
                    &mut rng,
                    &block_id,
                ));
                labels.push(event::DELETING_FILE);
                block_of.push(block);
            }
        }
        block_ids.push(block_id);
        anomalous.push(is_anomalous);
    }

    let data = LabeledCorpus {
        corpus: Corpus::from_lines(&lines, &Tokenizer::default()),
        labels,
        truth_templates: specs.iter().map(TemplateSpec::ground_truth).collect(),
    };
    HdfsSessions {
        data,
        block_of,
        block_ids,
        anomalous,
    }
}

/// Emits the healthy write flow for one block: allocate, then per replica
/// receiving / acknowledgement, then responder terminations and namenode
/// bookkeeping.
#[allow(clippy::too_many_arguments)]
fn normal_write(
    rng: &mut StdRng,
    specs: &[TemplateSpec],
    block_id: &str,
    block: usize,
    replicas: usize,
    lines: &mut Vec<String>,
    labels: &mut Vec<usize>,
    block_of: &mut Vec<usize>,
) {
    let mut emit = |ev: usize, rng: &mut StdRng| {
        lines.push(render_for_block(&specs[ev], rng, block_id));
        labels.push(ev);
        block_of.push(block);
    };
    emit(event::ALLOCATE, rng);
    for _ in 0..replicas {
        emit(event::RECEIVING, rng);
    }
    if rng.gen_bool(0.05) {
        emit(event::CHANGING_OFFSET, rng);
    }
    if rng.gen_bool(0.05) {
        emit(event::RECEIVING_EMPTY, rng);
    }
    for _ in 0..replicas {
        emit(event::RECEIVED, rng);
    }
    for _ in 0..replicas {
        emit(event::RESPONDER, rng);
    }
    for _ in 0..replicas {
        emit(event::ADD_STORED, rng);
    }
    if rng.gen_bool(0.4) {
        emit(event::BLOCK_RECEIVED, rng);
    }
    if rng.gen_bool(0.1) {
        emit(event::ACK_WAIT, rng);
    }
    if rng.gen_bool(0.1) {
        emit(event::TRANSMITTED, rng);
    }
}

/// Renders a spec and pins every generated block id to the session's.
fn render_for_block(spec: &TemplateSpec, rng: &mut StdRng, block_id: &str) -> String {
    let raw = spec.render(rng);
    raw.split_whitespace()
        .map(|token| {
            if token.starts_with("blk_") {
                block_id
            } else {
                token
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_nine_event_types() {
        assert_eq!(templates().len(), 29);
        assert_eq!(spec().event_count(), 29);
    }

    #[test]
    fn iid_generation_labels_are_consistent() {
        let data = generate(500, 11);
        for i in 0..data.len() {
            assert!(data.truth_templates[data.labels[i]].matches(&data.corpus.tokens(i)));
        }
    }

    #[test]
    fn sessions_share_one_block_id_per_block() {
        let s = generate_sessions(20, 0.0, 3);
        for (i, &block) in s.block_of.iter().enumerate() {
            let id = &s.block_ids[block];
            let has_id = s.data.corpus.tokens(i).iter().any(|t| t == id);
            assert!(has_id, "message {i} must carry its session's block id");
        }
    }

    #[test]
    fn anomaly_rate_zero_means_no_anomalies() {
        let s = generate_sessions(50, 0.0, 5);
        assert_eq!(s.anomaly_count(), 0);
    }

    #[test]
    fn anomaly_rate_one_means_all_anomalous() {
        let s = generate_sessions(50, 1.0, 5);
        assert_eq!(s.anomaly_count(), 50);
    }

    #[test]
    fn anomaly_rate_is_approximately_respected() {
        let s = generate_sessions(2000, 0.03, 7);
        let rate = s.anomaly_count() as f64 / 2000.0;
        assert!((0.015..=0.05).contains(&rate), "rate {rate}");
    }

    #[test]
    fn sessions_are_reproducible() {
        let a = generate_sessions(30, 0.1, 9);
        let b = generate_sessions(30, 0.1, 9);
        assert_eq!(a.data.corpus, b.data.corpus);
        assert_eq!(a.anomalous, b.anomalous);
    }

    #[test]
    fn anomalous_blocks_contain_failure_events() {
        let s = generate_sessions(200, 1.0, 13);
        use event::*;
        let failure_events = [
            EXCEPTION_RECEIVE,
            WRITE_EXCEPTION,
            FAILED_TRANSFER,
            PENDING_TIMEOUT,
            REDUNDANT_ADD,
            UNEXPECTED_DELETE,
            SERVE_EXCEPTION,
            INTERRUPTED_RECEIVER,
            RESPONDER_INTERRUPTED,
            ADD_NO_FILE,
        ];
        for block in 0..s.block_count() {
            let has_failure = s
                .block_of
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b == block)
                .any(|(i, _)| failure_events.contains(&s.data.labels[i]));
            assert!(has_failure, "anomalous block {block} lacks failure events");
        }
    }

    #[test]
    fn normal_blocks_avoid_failure_events() {
        let s = generate_sessions(200, 0.0, 17);
        use event::*;
        let failure_events = [
            EXCEPTION_RECEIVE,
            WRITE_EXCEPTION,
            FAILED_TRANSFER,
            PENDING_TIMEOUT,
            REDUNDANT_ADD,
            UNEXPECTED_DELETE,
            SERVE_EXCEPTION,
        ];
        for &label in &s.data.labels {
            assert!(!failure_events.contains(&label));
        }
    }

    #[test]
    fn session_labels_match_truth_templates() {
        let s = generate_sessions(50, 0.2, 21);
        for i in 0..s.data.len() {
            assert!(
                s.data.truth_templates[s.data.labels[i]].matches(&s.data.corpus.tokens(i)),
                "message {i}"
            );
        }
    }
}
