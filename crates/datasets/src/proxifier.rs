//! The Proxifier dataset: logs of a desktop proxy client (collected by
//! the study's authors). The smallest corpus: 10 108 messages over just
//! 8 event types, lengths 10–27 (Table I). The paper notes Proxifier has
//! no parameters amenable to domain-knowledge preprocessing, which is why
//! Table II shows no preprocessed column for it.

use crate::{DatasetSpec, LabeledCorpus, TemplateSpec};

/// Number of event types in the real corpus (Table I).
pub const EVENT_COUNT: usize = 8;

/// The eight Proxifier event templates.
pub fn templates() -> Vec<TemplateSpec> {
    [
        "proxy.cse.cuhk.edu.hk:5070 open through proxy proxy.cse.cuhk.edu.hk:5070 HTTPS",
        "proxy.cse.cuhk.edu.hk:5070 close, <int> bytes sent, <int> bytes received, lifetime <ms>",
        "proxy.cse.cuhk.edu.hk:5070 error : Could not connect through proxy proxy.cse.cuhk.edu.hk:5070 - Proxy server cannot establish a connection with the target, status code <int>",
        "open through proxy proxy.cse.cuhk.edu.hk:5070 HTTPS chrome.exe - <node> : <int>",
        "close, <int> bytes ( <float> KB ) sent, <int> bytes ( <float> KB ) received, lifetime <ms> chrome.exe",
        "open directly chrome.exe - <node> : <int> connection to localhost",
        "close, <int> bytes sent, <int> bytes received, lifetime <ms> firefox.exe direct connection",
        "error : Could not connect directly - target machine actively refused connection <node> : <int> status <int>",
    ]
    .iter()
    .map(|p| TemplateSpec::parse(p))
    .collect()
}

/// The Proxifier dataset spec (8 events).
pub fn spec() -> DatasetSpec {
    // Open/close pairs dominate real proxy logs.
    DatasetSpec::with_weights(
        "Proxifier",
        templates(),
        vec![30.0, 30.0, 2.0, 15.0, 15.0, 4.0, 3.0, 1.0],
    )
}

/// Generates `n` Proxifier messages.
pub fn generate(n: usize, seed: u64) -> LabeledCorpus {
    spec().generate(n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_count_matches_table_one() {
        assert_eq!(spec().event_count(), EVENT_COUNT);
    }

    #[test]
    fn labels_are_consistent_with_truth() {
        let data = generate(400, 8);
        for i in 0..data.len() {
            assert!(data.truth_templates[data.labels[i]].matches(&data.corpus.tokens(i)));
        }
    }

    #[test]
    fn open_close_events_dominate() {
        let data = generate(2000, 9);
        let head = data.labels.iter().filter(|&&l| l < 2).count();
        assert!(head > 800, "{head}");
    }

    #[test]
    fn generation_is_reproducible() {
        assert_eq!(generate(50, 3).corpus, generate(50, 3).corpus);
    }
}
