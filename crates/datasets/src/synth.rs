//! Procedural template synthesis.
//!
//! The study's large corpora have hundreds of event types (BGL: 376,
//! HPC: 105, Zookeeper: 80). Hand-writing that many realistic templates
//! is neither feasible nor useful — what drives parser behaviour is the
//! *statistical shape* of the template library: how many there are, how
//! long they are, and how variable tokens are interspersed with constant
//! text. This module synthesizes template libraries with controlled
//! shape from fixed vocabulary pools, deterministically from a seed.
//!
//! Every synthesized template embeds a unique `(component, verb, object)`
//! triple, so no two templates are token-identical, mirroring real logs
//! where each print statement has distinct constant text.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Segment, SlotKind, TemplateSpec};

const COMPONENTS: &[&str] = &[
    "kernel:",
    "ciod:",
    "mmcs:",
    "ras:",
    "app:",
    "monitor:",
    "linkcard:",
    "idoproxy:",
    "scheduler:",
    "daemon:",
    "driver:",
    "bglmaster:",
    "fsd:",
    "mux:",
    "console:",
    "power:",
    "fan:",
    "clock:",
    "memory:",
    "cache:",
    "torus:",
    "tree:",
    "ethernet:",
    "jtag:",
    "service:",
    "node:",
    "rack:",
    "midplane:",
    "card:",
    "chip:",
    "port:",
    "sensor:",
];

const VERBS: &[&str] = &[
    "detected",
    "failed",
    "completed",
    "started",
    "stopped",
    "received",
    "sent",
    "dropped",
    "corrected",
    "ignored",
    "registered",
    "released",
    "allocated",
    "flushed",
    "invalidated",
    "synchronized",
    "timed-out",
    "recovered",
    "suspended",
    "resumed",
    "initialized",
    "terminated",
    "rejected",
    "accepted",
    "committed",
    "aborted",
    "queued",
    "dispatched",
    "retried",
    "escalated",
    "throttled",
    "verified",
];

const OBJECTS: &[&str] = &[
    "instruction",
    "packet",
    "interrupt",
    "transaction",
    "request",
    "response",
    "heartbeat",
    "checkpoint",
    "barrier",
    "message",
    "buffer",
    "page",
    "segment",
    "frame",
    "block",
    "channel",
    "stream",
    "session",
    "lease",
    "token",
    "lock",
    "mutex",
    "semaphore",
    "thread",
    "process",
    "job",
    "task",
    "queue",
    "socket",
    "connection",
    "route",
    "table",
    "entry",
    "record",
    "register",
    "counter",
    "timer",
    "alarm",
    "event",
    "signal",
    "descriptor",
    "handle",
    "region",
    "zone",
    "bank",
    "rank",
    "lane",
    "link",
];

const FILLERS: &[&str] = &[
    "on",
    "for",
    "with",
    "from",
    "to",
    "at",
    "in",
    "status",
    "state",
    "code",
    "reason",
    "mode",
    "level",
    "phase",
    "unit",
    "after",
    "before",
    "during",
    "total",
    "errors",
    "warnings",
    "retries",
    "attempts",
    "pending",
    "active",
    "idle",
    "critical",
    "minor",
    "major",
    "data",
    "parity",
    "ecc",
    "address",
    "threshold",
    "limit",
    "value",
];

const SLOT_CHOICES: &[SlotKind] = &[
    SlotKind::Int { lo: 0, hi: 99_999 },
    SlotKind::Hex { width: 8 },
    SlotKind::Ip,
    SlotKind::NodeId {
        prefix: "R",
        count: 1024,
    },
    SlotKind::DurationMs,
    SlotKind::Float { scale: 100.0 },
    SlotKind::Int { lo: 0, hi: 7 },
];

/// Synthesizes `count` mutually distinct templates with lengths in
/// `[min_len, max_len]` tokens, reproducibly from `seed`.
///
/// Lengths are biased quadratically towards `min_len` (most log
/// statements are short; a few are very long), and roughly a quarter of
/// the non-anchor positions are variable slots — the variable-token
/// density observed in the study's corpora.
///
/// # Panics
///
/// Panics if `min_len < 3` (the distinguishing anchor triple needs three
/// positions) or `max_len < min_len`, or if `count` exceeds the number of
/// distinct anchor triples available.
pub fn synthesize_templates(
    count: usize,
    min_len: usize,
    max_len: usize,
    seed: u64,
) -> Vec<TemplateSpec> {
    assert!(min_len >= 3, "min_len must be at least 3, got {min_len}");
    assert!(max_len >= min_len, "max_len must not be below min_len");
    let capacity = COMPONENTS.len() * VERBS.len() * OBJECTS.len();
    assert!(
        count <= capacity,
        "at most {capacity} distinct templates available, requested {count}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    // A seeded shuffle of anchor indices decorrelates neighbouring
    // templates while keeping the library reproducible.
    let mut anchors: Vec<usize> = (0..capacity).collect();
    for i in (1..anchors.len()).rev() {
        anchors.swap(i, rng.gen_range(0..=i));
    }

    (0..count)
        .map(|t| {
            let anchor = anchors[t];
            let component = COMPONENTS[anchor % COMPONENTS.len()];
            let verb = VERBS[(anchor / COMPONENTS.len()) % VERBS.len()];
            let object = OBJECTS[(anchor / (COMPONENTS.len() * VERBS.len())) % OBJECTS.len()];

            let r: f64 = rng.gen();
            let len = min_len + ((max_len - min_len) as f64 * r * r).round() as usize;
            let mut segments = Vec::with_capacity(len);
            segments.push(Segment::Literal(component.to_owned()));
            segments.push(Segment::Literal(verb.to_owned()));
            segments.push(Segment::Literal(object.to_owned()));
            for _ in 3..len {
                if rng.gen_bool(0.25) {
                    let slot = SLOT_CHOICES[rng.gen_range(0..SLOT_CHOICES.len())].clone();
                    segments.push(Segment::Slot(slot));
                } else {
                    segments.push(Segment::Literal(
                        FILLERS[rng.gen_range(0..FILLERS.len())].to_owned(),
                    ));
                }
            }
            TemplateSpec::new(segments)
        })
        .collect()
}

/// Synthesizes `count` templates organized in *families*: each family
/// shares one skeleton (head, fillers and slots) and its members differ
/// **only** at a single late discriminator position. This is the shape
/// of the study's HPC corpus — many near-duplicate events whose constant
/// text diverges in one spot — and it is what breaks distance-based
/// clustering: LKE's positional weights make a late single-token
/// difference nearly invisible, and IPLoM's per-length partitions mix
/// whole families. `slot_density` sets the fraction of variable
/// positions — real HPC lines are number-heavy (≈0.5), which is what
/// blurs the pairwise distance distribution LKE's threshold estimate
/// depends on.
///
/// # Panics
///
/// Panics if `min_len < 6` (skeleton head + discriminator need room) or
/// `max_len < min_len`.
pub fn synthesize_template_families(
    count: usize,
    min_len: usize,
    max_len: usize,
    slot_density: f64,
    seed: u64,
) -> Vec<TemplateSpec> {
    assert!(min_len >= 6, "min_len must be at least 6, got {min_len}");
    assert!(max_len >= min_len, "max_len must not be below min_len");
    assert!(
        (0.0..=1.0).contains(&slot_density),
        "slot_density must lie in [0, 1], got {slot_density}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut templates = Vec::with_capacity(count);
    let mut family = 0usize;
    while templates.len() < count {
        // Family skeleton: component + verb head, then fillers/slots.
        let component = COMPONENTS[family % COMPONENTS.len()];
        let verb = VERBS[(family / COMPONENTS.len()) % VERBS.len()];
        let r: f64 = rng.gen();
        let len = min_len + ((max_len - min_len) as f64 * r * r).round() as usize;
        let mut skeleton = Vec::with_capacity(len);
        skeleton.push(Segment::Literal(component.to_owned()));
        skeleton.push(Segment::Literal(verb.to_owned()));
        for _ in 2..len {
            if rng.gen_bool(slot_density) {
                let slot = SLOT_CHOICES[rng.gen_range(0..SLOT_CHOICES.len())].clone();
                skeleton.push(Segment::Slot(slot));
            } else {
                skeleton.push(Segment::Literal(
                    FILLERS[rng.gen_range(0..FILLERS.len())].to_owned(),
                ));
            }
        }
        // The discriminator sits late, where LKE's weights have decayed.
        let position = len - 2;
        let variants = rng.gen_range(2..=4usize).min(count - templates.len());
        for v in 0..variants {
            let mut segments = skeleton.clone();
            segments[position] =
                Segment::Literal(OBJECTS[(family * 7 + v) % OBJECTS.len()].to_owned());
            templates.push(TemplateSpec::new(segments));
        }
        family += 1;
    }
    templates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesis_is_reproducible() {
        let a = synthesize_templates(50, 5, 20, 1);
        let b = synthesize_templates(50, 5, 20, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn templates_are_distinct() {
        let specs = synthesize_templates(300, 4, 30, 2);
        let mut truths: Vec<String> = specs.iter().map(|s| s.ground_truth().to_string()).collect();
        truths.sort();
        truths.dedup();
        assert_eq!(truths.len(), 300, "every template must be unique");
    }

    #[test]
    fn lengths_respect_bounds() {
        let specs = synthesize_templates(200, 6, 104, 3);
        for s in &specs {
            assert!((6..=104).contains(&s.len()), "len {}", s.len());
        }
    }

    #[test]
    fn lengths_skew_short() {
        let specs = synthesize_templates(400, 10, 102, 4);
        let mean: f64 = specs.iter().map(|s| s.len() as f64).sum::<f64>() / 400.0;
        let mid = (10.0 + 102.0) / 2.0;
        assert!(mean < mid, "mean {mean} should be below midpoint {mid}");
    }

    #[test]
    fn anchor_triple_is_constant_text() {
        let specs = synthesize_templates(10, 5, 10, 5);
        for s in &specs {
            for seg in &s.segments()[..3] {
                assert!(matches!(seg, Segment::Literal(_)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "min_len must be at least 3")]
    fn tiny_min_len_panics() {
        synthesize_templates(5, 2, 10, 0);
    }
}
