//! The dataset generator: turns a library of [`TemplateSpec`]s plus a
//! frequency skew into a labeled corpus.

use logparse_core::{Corpus, Template, Tokenizer};
use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::TemplateSpec;

/// A corpus with ground-truth event labels, as produced by a generator.
///
/// `labels[i]` is the index (into [`LabeledCorpus::truth_templates`]) of
/// the event that produced message `i` — the synthetic equivalent of the
/// hand-labeled ground truth the study built for its five datasets.
#[derive(Debug, Clone)]
pub struct LabeledCorpus {
    /// The generated messages.
    pub corpus: Corpus,
    /// Ground-truth event index per message.
    pub labels: Vec<usize>,
    /// The ground-truth templates, indexed by label.
    pub truth_templates: Vec<Template>,
}

impl LabeledCorpus {
    /// Number of messages.
    pub fn len(&self) -> usize {
        self.corpus.len()
    }

    /// Returns `true` when the corpus holds no messages.
    pub fn is_empty(&self) -> bool {
        self.corpus.is_empty()
    }

    /// Number of *distinct* events that actually occur in the corpus
    /// (small samples may not exercise every template).
    pub fn distinct_events(&self) -> usize {
        let mut seen = vec![false; self.truth_templates.len()];
        for &l in &self.labels {
            seen[l] = true;
        }
        seen.iter().filter(|&&s| s).count()
    }

    /// A new labeled corpus truncated to the first `n` messages.
    pub fn take(&self, n: usize) -> LabeledCorpus {
        let n = n.min(self.len());
        LabeledCorpus {
            corpus: self.corpus.take(n),
            labels: self.labels[..n].to_vec(),
            truth_templates: self.truth_templates.clone(),
        }
    }

    /// A uniform random sample of `n` messages (without replacement),
    /// matching the paper's "randomly sample 2k log messages" protocol.
    pub fn sample(&self, n: usize, seed: u64) -> LabeledCorpus {
        let n = n.min(self.len());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut indices: Vec<usize> = (0..self.len()).collect();
        // Partial Fisher-Yates: the first n positions end up a uniform
        // sample.
        for i in 0..n {
            let j = rand::Rng::gen_range(&mut rng, i..indices.len());
            indices.swap(i, j);
        }
        indices.truncate(n);
        LabeledCorpus {
            corpus: self.corpus.select(&indices),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            truth_templates: self.truth_templates.clone(),
        }
    }
}

/// A complete dataset description: named template library plus event
/// frequency weights.
///
/// # Example
///
/// ```
/// use logparse_datasets::{DatasetSpec, TemplateSpec};
///
/// let spec = DatasetSpec::new(
///     "demo",
///     vec![
///         TemplateSpec::parse("job <int> started"),
///         TemplateSpec::parse("job <int> finished in <ms>"),
///     ],
/// );
/// let data = spec.generate(100, 42);
/// assert_eq!(data.len(), 100);
/// assert_eq!(data.truth_templates.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    name: &'static str,
    templates: Vec<TemplateSpec>,
    weights: Vec<f64>,
}

impl DatasetSpec {
    /// Creates a dataset with Zipf-distributed event frequencies
    /// (exponent 1.2), the skew shape observed in production logs where a
    /// few events dominate the volume.
    ///
    /// # Panics
    ///
    /// Panics if `templates` is empty.
    pub fn new(name: &'static str, templates: Vec<TemplateSpec>) -> Self {
        assert!(!templates.is_empty(), "dataset needs at least one template");
        let weights = (0..templates.len())
            .map(|i| 1.0 / ((i + 1) as f64).powf(1.2))
            .collect();
        DatasetSpec {
            name,
            templates,
            weights,
        }
    }

    /// Creates a dataset with explicit per-template weights.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ, `templates` is empty, or any weight is
    /// non-positive.
    pub fn with_weights(
        name: &'static str,
        templates: Vec<TemplateSpec>,
        weights: Vec<f64>,
    ) -> Self {
        assert!(!templates.is_empty(), "dataset needs at least one template");
        assert_eq!(templates.len(), weights.len(), "one weight per template");
        assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
        DatasetSpec {
            name,
            templates,
            weights,
        }
    }

    /// The dataset's name (e.g. `"BGL"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The template library.
    pub fn templates(&self) -> &[TemplateSpec] {
        &self.templates
    }

    /// Number of event types.
    pub fn event_count(&self) -> usize {
        self.templates.len()
    }

    /// The range of template lengths (min, max) in tokens.
    pub fn length_range(&self) -> (usize, usize) {
        let lens = self.templates.iter().map(TemplateSpec::len);
        (lens.clone().min().unwrap_or(0), lens.max().unwrap_or(0))
    }

    /// Generates `n` messages with the configured frequency skew,
    /// reproducibly from `seed`.
    pub fn generate(&self, n: usize, seed: u64) -> LabeledCorpus {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = WeightedIndex::new(&self.weights).expect("validated positive weights");
        let mut lines = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let event = dist.sample(&mut rng);
            lines.push(self.templates[event].render(&mut rng));
            labels.push(event);
        }
        LabeledCorpus {
            corpus: Corpus::from_lines(lines, &Tokenizer::default()),
            labels,
            truth_templates: self
                .templates
                .iter()
                .map(TemplateSpec::ground_truth)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_spec() -> DatasetSpec {
        DatasetSpec::new(
            "demo",
            vec![
                TemplateSpec::parse("alpha <int> beta"),
                TemplateSpec::parse("gamma delta <ip>"),
                TemplateSpec::parse("epsilon <blk> zeta <int>"),
            ],
        )
    }

    #[test]
    fn generation_is_reproducible() {
        let spec = demo_spec();
        let a = spec.generate(50, 7);
        let b = spec.generate(50, 7);
        assert_eq!(a.corpus, b.corpus);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = demo_spec();
        assert_ne!(spec.generate(50, 1).corpus, spec.generate(50, 2).corpus);
    }

    #[test]
    fn labels_match_ground_truth_templates() {
        let data = demo_spec().generate(100, 3);
        for i in 0..data.len() {
            let template = &data.truth_templates[data.labels[i]];
            assert!(
                template.matches(&data.corpus.tokens(i)),
                "message {i} does not match its label"
            );
        }
    }

    #[test]
    fn zipf_weights_skew_the_distribution() {
        let data = demo_spec().generate(3000, 5);
        let mut counts = [0usize; 3];
        for &l in &data.labels {
            counts[l] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[2]);
    }

    #[test]
    fn sample_is_without_replacement() {
        let data = demo_spec().generate(200, 9);
        let sample = data.sample(50, 1);
        assert_eq!(sample.len(), 50);
        let mut lines: Vec<usize> = (0..50).map(|i| sample.corpus.record(i).line_no).collect();
        lines.sort_unstable();
        lines.dedup();
        assert_eq!(lines.len(), 50, "line numbers must be unique");
    }

    #[test]
    fn sample_larger_than_corpus_clamps() {
        let data = demo_spec().generate(10, 4);
        assert_eq!(data.sample(100, 0).len(), 10);
    }

    #[test]
    fn take_preserves_prefix() {
        let data = demo_spec().generate(30, 8);
        let head = data.take(5);
        assert_eq!(head.len(), 5);
        assert_eq!(head.corpus.record(0), data.corpus.record(0));
        assert_eq!(head.labels[..], data.labels[..5]);
    }

    #[test]
    fn distinct_events_counts_only_occurring() {
        let spec = DatasetSpec::with_weights(
            "skew",
            vec![
                TemplateSpec::parse("common event <int>"),
                TemplateSpec::parse("practically never <int>"),
            ],
            vec![1e9, 1e-9],
        );
        let data = spec.generate(20, 2);
        assert_eq!(data.distinct_events(), 1);
    }

    #[test]
    fn length_range_reflects_templates() {
        assert_eq!(demo_spec().length_range(), (3, 4));
    }
}
