//! The Zookeeper dataset: logs of a ZooKeeper installation on a 32-node
//! cluster (collected by the study's authors). 80 event types, message
//! lengths 8–27 (Table I).

use crate::{synthesize_templates, DatasetSpec, LabeledCorpus, TemplateSpec};

/// Number of event types in the real corpus (Table I).
pub const EVENT_COUNT: usize = 80;

fn signature_templates() -> Vec<TemplateSpec> {
    [
        "Accepted socket connection from <ip:port>",
        "Client attempting to establish new session at <ip:port>",
        "Established session <hex> with negotiated timeout <int> for client <ip:port>",
        "Closed socket connection for client <ip:port> which had sessionid <hex>",
        "Expiring session <hex> timeout of <int> ms exceeded",
        "Processed session termination for sessionid: <hex>",
        "Received connection request <ip:port> last zxid <hex>",
        "Connection broken for id <hex> my id = <small> error =",
        "Notification time out: <int> ms for peer <small>",
        "Follower sync with leader took <ms> zxid <hex>",
        "Snapshotting: <hex> to <path>",
        "New election. My id = <small> proposed zxid = <hex>",
    ]
    .iter()
    .map(|p| TemplateSpec::parse(p))
    .collect()
}

/// The Zookeeper dataset spec (80 events, lengths 8–27).
pub fn spec() -> DatasetSpec {
    let mut templates = signature_templates();
    templates.extend(synthesize_templates(
        EVENT_COUNT - templates.len(),
        8,
        27,
        0x200,
    ));
    DatasetSpec::new("Zookeeper", templates)
}

/// Generates `n` Zookeeper messages.
pub fn generate(n: usize, seed: u64) -> LabeledCorpus {
    spec().generate(n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_count_matches_table_one() {
        assert_eq!(spec().event_count(), EVENT_COUNT);
    }

    #[test]
    fn templates_are_unique() {
        let s = spec();
        let mut truths: Vec<String> = s
            .templates()
            .iter()
            .map(|t| t.ground_truth().to_string())
            .collect();
        truths.sort();
        truths.dedup();
        assert_eq!(truths.len(), EVENT_COUNT);
    }

    #[test]
    fn labels_are_consistent_with_truth() {
        let data = generate(300, 6);
        for i in 0..data.len() {
            assert!(data.truth_templates[data.labels[i]].matches(&data.corpus.tokens(i)));
        }
    }
}
