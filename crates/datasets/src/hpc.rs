//! The HPC dataset: logs of a high-performance cluster at Los Alamos
//! National Laboratory (49 nodes, 6 152 cores). 105 event types, message
//! lengths 6–104 (Table I).
//!
//! HPC is the corpus where the study's clustering methods fail hardest
//! (LKE 0.17, IPLoM 0.64 in Table II): its events form *families* of
//! near-duplicates whose constant text differs in a single late token.
//! The generator reproduces that shape with
//! [`crate::synthesize_template_families`].

use crate::{synthesize_template_families, DatasetSpec, LabeledCorpus, TemplateSpec};

/// Number of event types in the real corpus (Table I).
pub const EVENT_COUNT: usize = 105;

fn signature_templates() -> Vec<TemplateSpec> {
    [
        "boot (command <int>) Error: machine check interrupt on node <node>",
        "unavailable due to scheduled maintenance on node <node> duration <ms>",
        "running running (command <int>) node <node> cpu <int>",
        "configured out (command <int>) node <node>",
        "PSU failure detected on node <node> rail <small> voltage <float>",
        "link error on broadcast tree interconnect <hex> node <node>",
        "temperature threshold exceeded ambient <float> on chassis <int> node <node>",
        "ECC single bit error corrected at DIMM <int> node <node> count <int>",
        "network interface <small> down on node <node> carrier lost",
        "job <int> exited with status <int> on <int> nodes user <user>",
    ]
    .iter()
    .map(|p| TemplateSpec::parse(p))
    .collect()
}

/// The HPC dataset spec (105 events, lengths 6–104).
pub fn spec() -> DatasetSpec {
    let mut templates = signature_templates();
    templates.extend(synthesize_template_families(
        EVENT_COUNT - templates.len(),
        6,
        104,
        0.55,
        0x117C,
    ));
    DatasetSpec::new("HPC", templates)
}

/// Generates `n` HPC messages.
pub fn generate(n: usize, seed: u64) -> LabeledCorpus {
    spec().generate(n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_count_matches_table_one() {
        assert_eq!(spec().event_count(), EVENT_COUNT);
    }

    #[test]
    fn templates_are_unique() {
        let s = spec();
        let mut truths: Vec<String> = s
            .templates()
            .iter()
            .map(|t| t.ground_truth().to_string())
            .collect();
        truths.sort();
        truths.dedup();
        assert_eq!(truths.len(), EVENT_COUNT);
    }

    #[test]
    fn labels_are_consistent_with_truth() {
        let data = generate(300, 4);
        for i in 0..data.len() {
            assert!(data.truth_templates[data.labels[i]].matches(&data.corpus.tokens(i)));
        }
    }

    #[test]
    fn length_range_roughly_matches_table_one() {
        let (lo, hi) = spec().length_range();
        assert!(lo >= 5, "{lo}");
        assert!(hi <= 104, "{hi}");
    }
}
