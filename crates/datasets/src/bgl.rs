//! The BGL dataset: logs of the BlueGene/L supercomputer at LLNL
//! (Oliner & Stearley, DSN'07). The paper's hardest corpus: 376 event
//! types with message lengths from 10 to 102 tokens.
//!
//! The signature templates below reproduce the structures the study's
//! analysis hinges on — most importantly the `generating core.*` family
//! ("BGL contains a lot of log messages whose event is `generating
//! core.*`"), which defeats LKE's aggressive clustering and LogSig's
//! word-pair potential because half the words differ between any two
//! occurrences. The remaining events are synthesized to reach 376 with
//! the corpus's length profile.

use crate::{synthesize_templates, DatasetSpec, LabeledCorpus, TemplateSpec};

/// Number of event types in the real corpus (Table I).
pub const EVENT_COUNT: usize = 376;

/// Hand-written signature templates.
fn signature_templates() -> Vec<TemplateSpec> {
    [
        // The adversarial two-token family called out in §IV-B.
        "generating <core>",
        "ciod: generated <int> core files for program <path>",
        "instruction cache parity error corrected",
        "data cache parity error corrected at address <hex>",
        "ddr: excessive soft failures on rank <int> symbol <int> over <int> seconds",
        "machine check interrupt enabled on cpu <int> at <hex>",
        "ciod: Error reading message prefix after LOGIN_MESSAGE on CioStream socket to <ip>:<int>",
        "ciod: failed to read message prefix on control stream CioStream socket to <ip>:<int>",
        "rts: kernel terminated for reason <int> after <ms> of uptime",
        "rts: bad message header: invalid node identifier <int> expected <int>",
        "L3 ecc control register: <hex>",
        "total of <int> ddr error(s) detected and corrected on rank <int> symbol <int> bit <int>",
        "idoproxydb has been started: $Name: <hex> $ Input parameters: -enableflush -loguserinfo <path>",
        "mmcs_server_connect failed to connect to <ip> on port <int> after <int> attempts",
        "NodeCard temperature sensor <int> reading <float> exceeds warning threshold <float> on card <node>",
        "fan module <node> speed <int> rpm below minimum <int> rpm replacing unit recommended",
    ]
    .iter()
    .map(|p| TemplateSpec::parse(p))
    .collect()
}

/// The BGL dataset spec: signature templates plus synthesized events up
/// to the corpus's 376 types, lengths 10–102.
pub fn spec() -> DatasetSpec {
    let mut templates = signature_templates();
    let synth = synthesize_templates(EVENT_COUNT - templates.len(), 10, 102, 0xB61);
    templates.extend(synth);
    // Zipf skew, but boost the `generating core.*` family to the heavy
    // head where the real corpus has it.
    let mut weights: Vec<f64> = (0..templates.len())
        .map(|i| 1.0 / ((i + 1) as f64).powf(1.1))
        .collect();
    weights[0] = 2.0; // generating <core>
    DatasetSpec::with_weights("BGL", templates, weights)
}

/// Generates `n` BGL messages.
pub fn generate(n: usize, seed: u64) -> LabeledCorpus {
    spec().generate(n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_count_matches_table_one() {
        assert_eq!(spec().event_count(), EVENT_COUNT);
    }

    #[test]
    fn generating_core_family_is_present_and_heavy() {
        let data = generate(2000, 1);
        let core_count = (0..data.len())
            .filter(|&i| data.corpus.tokens(i).first().copied() == Some("generating"))
            .count();
        assert!(core_count > 50, "expected a heavy head, got {core_count}");
    }

    #[test]
    fn templates_are_unique() {
        let s = spec();
        let mut truths: Vec<String> = s
            .templates()
            .iter()
            .map(|t| t.ground_truth().to_string())
            .collect();
        truths.sort();
        truths.dedup();
        assert_eq!(truths.len(), EVENT_COUNT);
    }

    #[test]
    fn generation_is_reproducible() {
        assert_eq!(generate(100, 5).corpus, generate(100, 5).corpus);
    }

    #[test]
    fn labels_are_consistent_with_truth() {
        let data = generate(300, 2);
        for i in 0..data.len() {
            assert!(data.truth_templates[data.labels[i]].matches(&data.corpus.tokens(i)));
        }
    }
}
