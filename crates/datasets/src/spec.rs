//! Template specifications: the generative counterpart of a parsed
//! [`Template`].
//!
//! A [`TemplateSpec`] is a sequence of literal tokens and typed parameter
//! slots. Rendering a spec with an RNG produces one concrete log message;
//! the spec's ground-truth [`Template`] replaces every slot with a
//! wildcard. Specs are written in a compact notation:
//!
//! ```text
//! Receiving block <blk> src: <ip:port> dest: <ip:port>
//! ```

use logparse_core::{Template, TemplateToken};
use rand::Rng;

/// The kind of variable value a slot produces.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SlotKind {
    /// An IPv4 address, e.g. `10.251.31.5`.
    Ip,
    /// `/ip:port`, the HDFS notation, e.g. `/10.251.31.5:50010`.
    IpPort,
    /// An HDFS block id, e.g. `blk_-1608999687919862906`.
    BlockId,
    /// A BGL core file id, e.g. `core.2275`.
    CoreId,
    /// A decimal integer drawn uniformly from `[lo, hi]`.
    Int {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// A hexadecimal value with `0x` prefix and the given digit width.
    Hex {
        /// Number of hex digits.
        width: usize,
    },
    /// A filesystem path with 2–4 components.
    Path,
    /// An identifier `<prefix><n>` with `n < count`, e.g. `node-117`.
    NodeId {
        /// Prefix string, e.g. `node-`.
        prefix: &'static str,
        /// Number of distinct ids.
        count: u32,
    },
    /// One word from a closed pool (a *categorical* variable).
    Word {
        /// The candidate words.
        pool: &'static [&'static str],
    },
    /// A duration in milliseconds with unit suffix, e.g. `127ms`.
    DurationMs,
    /// A floating point value with two decimals in `[0, scale)`.
    Float {
        /// Exclusive upper bound.
        scale: f64,
    },
}

impl SlotKind {
    /// Renders one concrete value.
    pub fn render<R: Rng + ?Sized>(&self, rng: &mut R) -> String {
        match self {
            SlotKind::Ip => format!(
                "10.{}.{}.{}",
                rng.gen_range(0..=255u16),
                rng.gen_range(0..=255u16),
                rng.gen_range(1..=254u16)
            ),
            SlotKind::IpPort => format!(
                "/10.{}.{}.{}:{}",
                rng.gen_range(0..=255u16),
                rng.gen_range(0..=255u16),
                rng.gen_range(1..=254u16),
                rng.gen_range(1024..=65535u32)
            ),
            SlotKind::BlockId => {
                let sign = if rng.gen_bool(0.5) { "-" } else { "" };
                format!(
                    "blk_{}{}",
                    sign,
                    rng.gen_range(10_u64.pow(17)..10_u64.pow(19))
                )
            }
            SlotKind::CoreId => format!("core.{}", rng.gen_range(1..10_000u32)),
            SlotKind::Int { lo, hi } => rng.gen_range(*lo..=*hi).to_string(),
            SlotKind::Hex { width } => {
                let mut s = String::with_capacity(width + 2);
                s.push_str("0x");
                for _ in 0..*width {
                    s.push(char::from_digit(rng.gen_range(0..16u32), 16).expect("hex digit"));
                }
                s
            }
            SlotKind::Path => {
                const DIRS: [&str; 8] = [
                    "user", "data", "tmp", "var", "jobs", "spool", "cache", "logs",
                ];
                const FILES: [&str; 6] = [
                    "part-00011",
                    "output.dat",
                    "task_0001",
                    "image.img",
                    "segment.log",
                    "x.tmp",
                ];
                let depth = rng.gen_range(2..=4usize);
                let mut s = String::new();
                for _ in 0..depth {
                    s.push('/');
                    s.push_str(DIRS[rng.gen_range(0..DIRS.len())]);
                }
                s.push('/');
                s.push_str(FILES[rng.gen_range(0..FILES.len())]);
                // Real paths carry job/task ids, making them nearly
                // unique — a free parameter, not a low-cardinality pool.
                s.push_str(&format!(".{}", rng.gen_range(0..1_000_000u32)));
                s
            }
            SlotKind::NodeId { prefix, count } => {
                format!("{prefix}{}", rng.gen_range(0..*count))
            }
            SlotKind::Word { pool } => pool[rng.gen_range(0..pool.len())].to_owned(),
            SlotKind::DurationMs => format!("{}ms", rng.gen_range(0..60_000u32)),
            SlotKind::Float { scale } => format!("{:.2}", rng.gen::<f64>() * scale),
        }
    }
}

/// One token position of a template specification.
#[derive(Debug, Clone, PartialEq)]
pub enum Segment {
    /// A constant token.
    Literal(String),
    /// A variable token of the given kind.
    Slot(SlotKind),
}

/// A generative log event template.
///
/// # Example
///
/// ```
/// use logparse_datasets::TemplateSpec;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let spec = TemplateSpec::parse("Verification succeeded for <blk>");
/// let mut rng = StdRng::seed_from_u64(1);
/// let msg = spec.render(&mut rng);
/// assert!(msg.starts_with("Verification succeeded for blk_"));
/// assert_eq!(spec.ground_truth().to_string(), "Verification succeeded for *");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateSpec {
    segments: Vec<Segment>,
}

impl TemplateSpec {
    /// Builds a spec from explicit segments.
    pub fn new(segments: Vec<Segment>) -> Self {
        TemplateSpec { segments }
    }

    /// Parses the compact notation: whitespace-separated tokens, with
    /// `<name>` denoting slots. Recognized slot names:
    ///
    /// | name | kind |
    /// |------|------|
    /// | `<ip>` | [`SlotKind::Ip`] |
    /// | `<ip:port>` | [`SlotKind::IpPort`] |
    /// | `<blk>` | [`SlotKind::BlockId`] |
    /// | `<core>` | [`SlotKind::CoreId`] |
    /// | `<int>` | `Int { 0, 99_999 }` |
    /// | `<size>` | `Int { 1024, 134_217_728 }` |
    /// | `<small>` | `Int { 0, 9 }` |
    /// | `<hex>` | `Hex { 8 }` |
    /// | `<path>` | [`SlotKind::Path`] |
    /// | `<node>` | `NodeId { "node-", 512 }` |
    /// | `<user>` | a pool of user names |
    /// | `<ms>` | [`SlotKind::DurationMs`] |
    /// | `<float>` | `Float { 100.0 }` |
    ///
    /// Any other `<...>` token is kept as a literal, so specs can contain
    /// angle-bracketed constants.
    ///
    /// # Panics
    ///
    /// Panics if the pattern is empty.
    pub fn parse(pattern: &str) -> Self {
        const USERS: &[&str] = &[
            "root",
            "hdfs",
            "mapred",
            "svc-batch",
            "alice",
            "bob",
            "carol",
            "dave",
            "erin",
            "frank",
            "grace",
            "heidi",
        ];
        let segments: Vec<Segment> = pattern
            .split_whitespace()
            .map(|token| match token {
                "<ip>" => Segment::Slot(SlotKind::Ip),
                "<ip:port>" => Segment::Slot(SlotKind::IpPort),
                "<blk>" => Segment::Slot(SlotKind::BlockId),
                "<core>" => Segment::Slot(SlotKind::CoreId),
                "<int>" => Segment::Slot(SlotKind::Int { lo: 0, hi: 99_999 }),
                "<size>" => Segment::Slot(SlotKind::Int {
                    lo: 1024,
                    hi: 134_217_728,
                }),
                "<small>" => Segment::Slot(SlotKind::Int { lo: 0, hi: 9 }),
                "<hex>" => Segment::Slot(SlotKind::Hex { width: 8 }),
                "<path>" => Segment::Slot(SlotKind::Path),
                "<node>" => Segment::Slot(SlotKind::NodeId {
                    prefix: "node-",
                    count: 512,
                }),
                "<user>" => Segment::Slot(SlotKind::Word { pool: USERS }),
                "<ms>" => Segment::Slot(SlotKind::DurationMs),
                "<float>" => Segment::Slot(SlotKind::Float { scale: 100.0 }),
                other => Segment::Literal(other.to_owned()),
            })
            .collect();
        assert!(!segments.is_empty(), "template pattern must not be empty");
        TemplateSpec { segments }
    }

    /// The spec's segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of token positions.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Returns `true` if the spec has no segments (never true for parsed
    /// specs).
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Renders one concrete message.
    pub fn render<R: Rng + ?Sized>(&self, rng: &mut R) -> String {
        let mut out = String::new();
        for (i, segment) in self.segments.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            match segment {
                Segment::Literal(text) => out.push_str(text),
                Segment::Slot(kind) => out.push_str(&kind.render(rng)),
            }
        }
        out
    }

    /// The ground-truth template: literals kept, slots wildcarded.
    pub fn ground_truth(&self) -> Template {
        Template::new(
            self.segments
                .iter()
                .map(|segment| match segment {
                    Segment::Literal(text) => TemplateToken::literal(text.clone()),
                    Segment::Slot(_) => TemplateToken::Wildcard,
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parse_mixes_literals_and_slots() {
        let spec = TemplateSpec::parse("Receiving block <blk> src: <ip:port>");
        assert_eq!(spec.len(), 5);
        assert!(matches!(spec.segments()[0], Segment::Literal(_)));
        assert!(matches!(
            spec.segments()[2],
            Segment::Slot(SlotKind::BlockId)
        ));
    }

    #[test]
    fn rendered_message_matches_ground_truth() {
        let spec = TemplateSpec::parse("PacketResponder <small> for block <blk> terminating");
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let msg = spec.render(&mut rng);
            let tokens: Vec<String> = msg.split_whitespace().map(str::to_owned).collect();
            assert!(spec.ground_truth().matches(&tokens), "{msg}");
        }
    }

    #[test]
    fn rendering_is_deterministic_per_seed() {
        let spec = TemplateSpec::parse("served <blk> to <ip> in <ms>");
        let a = spec.render(&mut StdRng::seed_from_u64(9));
        let b = spec.render(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_angle_tokens_stay_literal() {
        let spec = TemplateSpec::parse("state <unknown-thing> reached");
        assert!(matches!(&spec.segments()[1], Segment::Literal(t) if t == "<unknown-thing>"));
    }

    #[test]
    fn slot_values_look_right() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(SlotKind::Ip.render(&mut rng).starts_with("10."));
        assert!(SlotKind::IpPort.render(&mut rng).starts_with("/10."));
        assert!(SlotKind::BlockId.render(&mut rng).starts_with("blk_"));
        assert!(SlotKind::CoreId.render(&mut rng).starts_with("core."));
        assert!(SlotKind::Hex { width: 4 }
            .render(&mut rng)
            .starts_with("0x"));
        assert!(SlotKind::Path.render(&mut rng).starts_with('/'));
        let ms = SlotKind::DurationMs.render(&mut rng);
        assert!(ms.ends_with("ms"));
    }

    #[test]
    fn int_slot_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            let v: i64 = SlotKind::Int { lo: -5, hi: 5 }
                .render(&mut rng)
                .parse()
                .unwrap();
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn word_slot_draws_from_pool() {
        let mut rng = StdRng::seed_from_u64(2);
        let pool: &[&str] = &["up", "down"];
        for _ in 0..20 {
            let w = SlotKind::Word { pool }.render(&mut rng);
            assert!(pool.contains(&w.as_str()));
        }
    }

    #[test]
    fn ground_truth_wildcard_count_equals_slot_count() {
        let spec = TemplateSpec::parse("a <int> b <ip> c <blk>");
        assert_eq!(spec.ground_truth().wildcard_count(), 3);
    }
}
