//! Property-based tests tying the dataset generators, the template
//! model, and the oracle parser together: generation and parsing are
//! inverse operations when the template library is known.

use logmine::core::{EventId, LogParser};
use logmine::datasets::{study_datasets, DatasetSpec, TemplateSpec};
use logmine::parsers::Oracle;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The oracle, armed with the generating library, recovers the
    /// ground-truth labels on (almost) every message of every dataset —
    /// the sanity bound for all other parsers' accuracy scores.
    #[test]
    fn oracle_recovers_generation_labels(seed in 0u64..1000, n in 50usize..300) {
        for spec in study_datasets() {
            let data = spec.generate(n, seed);
            let oracle = Oracle::new(data.truth_templates.clone());
            let parse = oracle.parse(&data.corpus).unwrap();
            let correct = (0..n)
                .filter(|&i| parse.assignments()[i] == Some(EventId(data.labels[i])))
                .count();
            // Rare cross-template ambiguity (a rendered message matching a
            // second, more specific template) is tolerated at < 2 %.
            prop_assert!(
                correct as f64 >= 0.98 * n as f64,
                "{}: only {correct}/{n} recovered",
                spec.name()
            );
        }
    }

    /// Rendered messages always match their own ground-truth template and
    /// parameter extraction returns exactly the slot values' count.
    #[test]
    fn render_extract_round_trip(seed in 0u64..1000) {
        use rand::{rngs::StdRng, SeedableRng};
        let spec = TemplateSpec::parse(
            "Received block <blk> of size <size> from <ip> in <ms> path <path>",
        );
        let truth = spec.ground_truth();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            let message = spec.render(&mut rng);
            let tokens: Vec<String> = message.split_whitespace().map(str::to_owned).collect();
            let params = truth.extract_parameters(&tokens);
            prop_assert!(params.is_some(), "{message} must match its template");
            prop_assert_eq!(params.unwrap().len(), truth.wildcard_count());
        }
    }

    /// Generation is pure: same (spec, size, seed) → same corpus; and
    /// sampling commutes with it.
    #[test]
    fn generation_is_a_pure_function(seed in 0u64..500, n in 10usize..200) {
        let spec = logmine::datasets::hdfs::spec();
        let a = spec.generate(n, seed);
        let b = spec.generate(n, seed);
        prop_assert_eq!(&a.corpus, &b.corpus);
        prop_assert_eq!(&a.labels, &b.labels);
        let sa = a.sample(n / 2, seed ^ 1);
        let sb = b.sample(n / 2, seed ^ 1);
        prop_assert_eq!(&sa.corpus, &sb.corpus);
    }

    /// HDFS sessions keep their invariant under any seed/rate: every
    /// message belongs to a valid block, and block ids appear in their
    /// own messages.
    #[test]
    fn hdfs_sessions_are_internally_consistent(
        seed in 0u64..500,
        blocks in 5usize..60,
        rate in 0.0f64..0.5,
    ) {
        let s = logmine::datasets::hdfs::generate_sessions(blocks, rate, seed);
        prop_assert_eq!(s.block_ids.len(), blocks);
        prop_assert_eq!(s.anomalous.len(), blocks);
        prop_assert_eq!(s.block_of.len(), s.data.len());
        for (i, &b) in s.block_of.iter().enumerate() {
            prop_assert!(b < blocks);
            prop_assert!(
                s.data.corpus.tokens(i).iter().any(|t| t == &s.block_ids[b]),
                "message {i} lacks its block id"
            );
        }
    }

    /// Custom specs honour their declared shape: rendered length equals
    /// the template length, and the frequency skew respects weights.
    #[test]
    fn custom_spec_shape_is_honoured(seed in 0u64..500) {
        let spec = DatasetSpec::with_weights(
            "shape",
            vec![
                TemplateSpec::parse("alpha <int> beta"),
                TemplateSpec::parse("gamma <ip> delta <ms> end"),
            ],
            vec![10.0, 1.0],
        );
        let data = spec.generate(400, seed);
        let mut counts = [0usize; 2];
        for i in 0..data.len() {
            counts[data.labels[i]] += 1;
            let expected_len = spec.templates()[data.labels[i]].len();
            prop_assert_eq!(data.corpus.tokens(i).len(), expected_len);
        }
        prop_assert!(counts[0] > counts[1], "{counts:?}");
    }
}
