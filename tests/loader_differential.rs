//! Differential suite for the zero-copy corpus loader.
//!
//! `Corpus::from_path` (mmap + SWAR scanner + arena-direct interning)
//! replaces `read_lines` + `Corpus::from_lines` on every batch path, so
//! its contract is *bit-identity*, not mere equivalence: the corpus it
//! builds must have the same records, the same symbol ids in the same
//! arena rows, and the same interner contents as the legacy pipeline —
//! and therefore every parser must produce byte-identical events and
//! structured output from either loader.
//!
//! The fixtures target the places a scanner can silently diverge from
//! `BufRead::lines` + skip-blank semantics:
//!
//! * CRLF line endings (the `\r` strip happens only before a `\n`);
//! * a missing trailing newline (the EOF line still counts — and keeps
//!   a bare trailing `\r`);
//! * empty files and whitespace-only lines (the skip-blank contract:
//!   a line is dropped iff every byte is ASCII whitespace);
//! * lines straddling the parallel loader's chunk boundaries (the
//!   chunk splitter must cut only at newlines, and the chunk-order
//!   interner merge must reproduce sequential symbol ids exactly).

use std::io::Write as _;
use std::path::PathBuf;

use logmine::core::{
    count_corpus_lines, read_lines, write_events_file, write_structured_file, Corpus, LogParser,
    Tokenizer,
};
use logmine::parsers::{Ael, Drain, Iplom, LenMa, Lke, LogMine, LogSig, Slct, Spell};
use proptest::prelude::*;

/// Writes `bytes` to a unique temp file and returns its path.
fn fixture_file(tag: &str, bytes: &[u8]) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "loader-diff-{tag}-{}-{:p}",
        std::process::id(),
        bytes as *const [u8]
    ));
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(bytes).unwrap();
    f.flush().unwrap();
    path
}

/// The legacy pipeline: buffered line reading + owned-record interning.
fn legacy_corpus(bytes: &[u8]) -> Corpus {
    let lines = read_lines(bytes).expect("fixtures are valid UTF-8");
    Corpus::from_lines(&lines, &Tokenizer::default())
}

/// Asserts two corpora are bit-identical: same records (line numbers,
/// timestamps, content), same symbol ids row by row, same vocabulary.
fn assert_bit_identical(a: &Corpus, b: &Corpus, context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: corpus length");
    for i in 0..a.len() {
        assert_eq!(a.record(i), b.record(i), "{context}: record {i}");
        assert_eq!(
            a.symbols(i),
            b.symbols(i),
            "{context}: symbol ids of row {i}"
        );
    }
    assert_eq!(
        a.interner().len(),
        b.interner().len(),
        "{context}: interner vocabulary size"
    );
}

fn parsers() -> Vec<Box<dyn LogParser>> {
    vec![
        Box::new(Slct::builder().support_count(2).build()),
        Box::new(Iplom::default()),
        Box::new(Lke::default()),
        Box::new(LogSig::builder().clusters(2).seed(1).build()),
        Box::new(Drain::default()),
        Box::new(Spell::default()),
        Box::new(Ael::default()),
        Box::new(LenMa::default()),
        Box::new(LogMine::default()),
    ]
}

/// The edge-case fixtures, each a (tag, raw bytes) pair.
fn fixtures() -> Vec<(&'static str, Vec<u8>)> {
    vec![
        (
            "plain",
            b"alpha beta 1\nalpha beta 2\ngamma delta\n".to_vec(),
        ),
        (
            "crlf",
            b"alpha beta 1\r\nalpha beta 2\r\ngamma delta\r\n".to_vec(),
        ),
        ("no-trailing-nl", b"alpha beta 1\nalpha beta 2".to_vec()),
        // A bare \r at EOF is *content* (BufRead::lines strips \r only
        // before \n), so this line is not blank and must be kept.
        ("eof-cr", b"alpha beta 1\nalpha beta 2\r".to_vec()),
        ("empty", Vec::new()),
        ("only-newlines", b"\n\n\n".to_vec()),
        (
            "whitespace-only-lines",
            b"alpha 1\n   \t \n\x0b\x0c\r\nalpha 2\n \n".to_vec(),
        ),
        (
            "mixed-endings",
            b"a 1\r\nb 2\nc 3\r\n\r\nd 4\ne 5\r".to_vec(),
        ),
        // Non-ASCII whitespace (U+00A0) is content, not blank.
        (
            "nbsp-line",
            "alpha 1\n\u{00a0}\nalpha 2\n".as_bytes().to_vec(),
        ),
        (
            "unicode",
            "näme=värt blk_42\nnäme=övrig blk_43\n".as_bytes().to_vec(),
        ),
    ]
}

/// A corpus whose lines straddle every chunk boundary the parallel
/// splitter can pick: long and short lines interleaved so no byte
/// offset is "safe" to cut at without the newline scan.
fn chunk_straddle_bytes() -> Vec<u8> {
    let mut out = Vec::new();
    for i in 0..257usize {
        if i % 3 == 0 {
            out.extend_from_slice(
                format!(
                    "evt {} payload {} {} {}\n",
                    i % 5,
                    i,
                    "x".repeat(i % 41),
                    i * 7
                )
                .as_bytes(),
            );
        } else {
            out.extend_from_slice(format!("evt {} s\n", i % 5).as_bytes());
        }
        if i % 17 == 0 {
            out.extend_from_slice(b"   \n"); // blank amid the chunks
        }
    }
    out
}

/// Tentpole bit-identity: for every fixture, `from_path`,
/// `from_path_parallel`, `from_bytes`, and `from_bytes_parallel` all
/// reproduce the legacy `read_lines` + `from_lines` corpus exactly.
#[test]
fn every_loader_entry_point_is_bit_identical_to_the_legacy_pipeline() {
    let tok = Tokenizer::default();
    for (tag, bytes) in fixtures() {
        let legacy = legacy_corpus(&bytes);
        let path = fixture_file(tag, &bytes);

        let mapped = Corpus::from_path(&path, &tok).unwrap();
        assert_bit_identical(&mapped, &legacy, &format!("{tag}: from_path"));

        let owned = Corpus::from_bytes(bytes.clone(), &tok).unwrap();
        assert_bit_identical(&owned, &legacy, &format!("{tag}: from_bytes"));

        for threads in [1usize, 2, 3, 8] {
            let par = Corpus::from_path_parallel(&path, &tok, threads).unwrap();
            assert_bit_identical(
                &par,
                &legacy,
                &format!("{tag}: from_path_parallel({threads})"),
            );
            let par_owned = Corpus::from_bytes_parallel(bytes.clone(), &tok, threads).unwrap();
            assert_bit_identical(
                &par_owned,
                &legacy,
                &format!("{tag}: from_bytes_parallel({threads})"),
            );
        }

        assert_eq!(
            count_corpus_lines(&path).unwrap(),
            legacy.len(),
            "{tag}: count_corpus_lines"
        );
        std::fs::remove_file(&path).ok();
    }
}

/// End-to-end differential: each parser's events file and structured
/// file are byte-identical whether the corpus came from the legacy
/// reader or the zero-copy loader.
#[test]
fn parser_output_files_are_byte_identical_across_loaders() {
    let tok = Tokenizer::default();
    for (tag, bytes) in fixtures() {
        let legacy = legacy_corpus(&bytes);
        let path = fixture_file(&format!("e2e-{tag}"), &bytes);
        let mapped = Corpus::from_path(&path, &tok).unwrap();
        for parser in parsers() {
            let (old, new) = match (parser.parse(&legacy), parser.parse(&mapped)) {
                (Ok(a), Ok(b)) => (a, b),
                (Err(_), Err(_)) => continue, // same rejection either way
                _ => panic!(
                    "{tag}/{}: error behavior depends on the loader",
                    parser.name()
                ),
            };
            let (mut ev_old, mut ev_new) = (Vec::new(), Vec::new());
            write_events_file(&old, &mut ev_old).unwrap();
            write_events_file(&new, &mut ev_new).unwrap();
            assert_eq!(ev_old, ev_new, "{tag}/{}: events file", parser.name());

            let (mut st_old, mut st_new) = (Vec::new(), Vec::new());
            write_structured_file(&legacy, &old, &mut st_old).unwrap();
            write_structured_file(&mapped, &new, &mut st_new).unwrap();
            assert_eq!(st_old, st_new, "{tag}/{}: structured file", parser.name());
        }
        std::fs::remove_file(&path).ok();
    }
}

/// Chunk-boundary stress: a corpus sized and shaped so parallel chunk
/// splits land mid-line at every thread count. The chunk-order interner
/// merge must make the parallel build bit-identical to sequential.
#[test]
fn chunk_straddling_lines_survive_the_parallel_build() {
    let tok = Tokenizer::default();
    let bytes = chunk_straddle_bytes();
    let legacy = legacy_corpus(&bytes);
    let path = fixture_file("straddle", &bytes);
    for threads in [1usize, 2, 3, 4, 7, 16, 64] {
        let par = Corpus::from_path_parallel(&path, &tok, threads).unwrap();
        assert_bit_identical(&par, &legacy, &format!("straddle at {threads} threads"));
    }
    assert_eq!(count_corpus_lines(&path).unwrap(), legacy.len());
    std::fs::remove_file(&path).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random printable-ASCII + whitespace byte soup: `from_bytes` (and
    /// its parallel variant at an adversarial thread count) always
    /// reproduces the legacy pipeline bit-for-bit.
    #[test]
    fn from_bytes_matches_the_legacy_pipeline_on_arbitrary_text(
        lines in prop::collection::vec("[ -~\\t\\x0b\\x0c]{0,40}", 0..60),
        crlf in prop_oneof![Just(false), Just(true)],
        trailing in prop_oneof![Just(false), Just(true)],
        threads in 1usize..9,
    ) {
        let sep = if crlf { "\r\n" } else { "\n" };
        let mut text = lines.join(sep);
        if trailing && !text.is_empty() {
            text.push_str(sep);
        }
        let bytes = text.into_bytes();
        let legacy = legacy_corpus(&bytes);
        let tok = Tokenizer::default();

        let owned = Corpus::from_bytes(bytes.clone(), &tok).unwrap();
        prop_assert_eq!(&owned, &legacy);

        let par = Corpus::from_bytes_parallel(bytes, &tok, threads).unwrap();
        prop_assert_eq!(&par, &legacy);
        prop_assert_eq!(par.interner().len(), legacy.interner().len());
    }
}
