//! Property-based contracts every parser must satisfy, on arbitrary
//! corpora: full coverage of the input, valid event ids, deterministic
//! output, and templates that really match their members.

use logmine::core::{
    Corpus, LogParser, LogRecord, Parse, ParseBuilder, ParseError, Template, Tokenizer,
};
use logmine::parsers::{
    Ael, Drain, Iplom, LenMa, Lke, LogMine, LogSig, Oracle, Slct, Spell, StreamingDrain,
    StreamingParser, StreamingSpell,
};
use proptest::prelude::*;

/// Batch adapter over the online parsers: replays the corpus through a
/// fresh streaming instance and materializes its final groups as a
/// [`Parse`], so the streaming mode is held to the same contracts as the
/// batch parsers.
struct StreamingBatch {
    which: &'static str,
}

impl LogParser for StreamingBatch {
    fn name(&self) -> &'static str {
        self.which
    }

    fn parse(&self, corpus: &Corpus) -> Result<Parse, ParseError> {
        let mut parser: Box<dyn StreamingParser> = match self.which {
            "StreamingDrain" => Box::new(StreamingDrain::default()),
            _ => Box::new(StreamingSpell::default()),
        };
        let groups: Vec<usize> = (0..corpus.len())
            .map(|i| parser.observe(&corpus.tokens(i)))
            .collect();
        let mut builder = ParseBuilder::new(corpus.len());
        let mut events = std::collections::HashMap::new();
        for (i, &group) in groups.iter().enumerate() {
            let event = *events.entry(group).or_insert_with(|| {
                builder.add_template(parser.template(group).expect("observed group"))
            });
            builder.assign(i, event);
        }
        Ok(builder.build())
    }
}

/// Arbitrary small log corpora: a handful of synthetic "templates"
/// (word sequences) instantiated with numeric parameters, so inputs are
/// log-like but adversarially varied.
fn arbitrary_corpus() -> impl Strategy<Value = Corpus> {
    let word = prop_oneof![
        Just("alpha"),
        Just("beta"),
        Just("gamma"),
        Just("delta"),
        Just("start"),
        Just("stop"),
        Just("error"),
        Just("ok"),
    ];
    let line = prop::collection::vec(
        prop_oneof![
            word.prop_map(str::to_owned),
            (0u32..100).prop_map(|n| n.to_string()),
        ],
        1..8,
    )
    .prop_map(|tokens| tokens.join(" "));
    prop::collection::vec(line, 1..40)
        .prop_map(|lines| Corpus::from_lines(&lines, &Tokenizer::default()))
}

fn parsers() -> Vec<Box<dyn LogParser>> {
    vec![
        // The study's four...
        Box::new(Slct::builder().support_count(2).build()),
        Box::new(Iplom::default()),
        Box::new(Lke::default()),
        Box::new(LogSig::builder().clusters(4).seed(1).build()),
        // ...the follow-on LogPAI set...
        Box::new(Drain::default()),
        Box::new(Spell::default()),
        Box::new(Ael::default()),
        Box::new(LenMa::default()),
        Box::new(LogMine::default()),
        // ...the source-code-style template matcher...
        Box::new(Oracle::new(vec![
            Template::from_pattern("alpha * gamma"),
            Template::from_pattern("start *"),
        ])),
        // ...and the online parsers, replayed in batch via the adapter
        // above so their output meets the same I/O contract.
        Box::new(StreamingBatch {
            which: "StreamingDrain",
        }),
        Box::new(StreamingBatch {
            which: "StreamingSpell",
        }),
    ]
}

/// Rebuilds `corpus` so every token lands on a *different* symbol id:
/// a decoy record of fresh vocabulary is interned first (claiming the
/// low ids), then sliced back off. Record content and line numbers are
/// identical to the input; only the integer representation moved. Any
/// parser whose output changes under this map has let symbol ids leak
/// from representation into semantics.
fn id_shifted(corpus: &Corpus, tokenizer: &Tokenizer) -> Corpus {
    let decoy = LogRecord::new(0, "qq0 qq1 qq2 qq3 qq4 qq5 qq6 qq7 qq8 qq9");
    let records =
        std::iter::once(decoy).chain((0..corpus.len()).map(|i| corpus.record(i).to_owned()));
    let rebuilt = Corpus::from_records(records, tokenizer);
    rebuilt.slice(1..rebuilt.len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parse_covers_every_message(corpus in arbitrary_corpus()) {
        for parser in parsers() {
            match parser.parse(&corpus) {
                Ok(parse) => {
                    prop_assert_eq!(parse.len(), corpus.len());
                    prop_assert_eq!(parse.assignments().len(), corpus.len());
                }
                // LogSig may legitimately reject k > n.
                Err(_) => prop_assert!(parser.name() == "LogSig" && corpus.len() < 4),
            }
        }
    }

    #[test]
    fn assigned_templates_match_their_messages(corpus in arbitrary_corpus()) {
        for parser in parsers() {
            if parser.name() == "StreamingSpell" {
                // Spell's streaming templates are LCS skeletons with
                // subsequence (not positionwise) match semantics, so
                // `Template::matches` does not apply to them.
                continue;
            }
            let Ok(parse) = parser.parse(&corpus) else { continue };
            for i in 0..parse.len() {
                if let Some(template) = parse.template_of(i) {
                    prop_assert!(
                        template.matches(&corpus.tokens(i)),
                        "{}: template `{}` vs message {:?}",
                        parser.name(), template, corpus.tokens(i)
                    );
                }
            }
        }
    }

    #[test]
    fn parsing_is_deterministic(corpus in arbitrary_corpus()) {
        for parser in parsers() {
            let a = parser.parse(&corpus).ok();
            let b = parser.parse(&corpus).ok();
            prop_assert_eq!(a, b, "{} must be deterministic", parser.name());
        }
    }

    #[test]
    fn cluster_labels_are_dense_and_bounded(corpus in arbitrary_corpus()) {
        for parser in parsers() {
            let Ok(parse) = parser.parse(&corpus) else { continue };
            let labels = parse.cluster_labels();
            prop_assert_eq!(labels.len(), corpus.len());
            for &l in &labels {
                prop_assert!(l <= parse.event_count());
            }
        }
    }

    #[test]
    fn event_count_never_exceeds_message_count(corpus in arbitrary_corpus()) {
        for parser in parsers() {
            if parser.name() == "Oracle" {
                // The oracle's event list is its a-priori template
                // library, independent of the corpus size.
                continue;
            }
            let Ok(parse) = parser.parse(&corpus) else { continue };
            prop_assert!(
                parse.event_count() <= corpus.len(),
                "{}: {} events for {} messages",
                parser.name(), parse.event_count(), corpus.len()
            );
        }
    }

    #[test]
    fn used_templates_are_nonempty(corpus in arbitrary_corpus()) {
        for parser in parsers() {
            let Ok(parse) = parser.parse(&corpus) else { continue };
            for i in 0..parse.len() {
                if let Some(template) = parse.template_of(i) {
                    prop_assert!(
                        !template.is_empty(),
                        "{}: message {} assigned an empty template",
                        parser.name(), i
                    );
                }
            }
        }
    }

    #[test]
    fn identical_messages_share_an_event(
        line in "[a-z]{2,6}( [a-z]{2,6}){2,5}",
        copies in 2usize..20,
    ) {
        let lines: Vec<&str> = std::iter::repeat_n(line.as_str(), copies).collect();
        let corpus = Corpus::from_lines(&lines, &Tokenizer::default());
        for parser in parsers() {
            if parser.name() == "LogSig" {
                // LogSig partitions into exactly k clusters and its
                // potential Σ N(p,C)²/|C| is indifferent between one
                // cluster of n identical messages and any split of them
                // (both score n·|pairs|), so this property genuinely
                // does not hold for it.
                continue;
            }
            let Ok(parse) = parser.parse(&corpus) else { continue };
            let first = parse.assignments()[0];
            for a in parse.assignments() {
                prop_assert_eq!(*a, first, "{}: identical messages split", parser.name());
            }
        }
    }

    /// Differential string-vs-interned leg: symbol ids are
    /// representation, not semantics. Parsing an id-shifted rebuild of
    /// the corpus (same text, every token on a different `Symbol`)
    /// must yield a byte-identical `Parse` — templates, event ids, and
    /// assignments — from every parser, streaming adapters included.
    #[test]
    fn symbol_ids_are_invisible_in_parser_output(corpus in arbitrary_corpus()) {
        let shifted = id_shifted(&corpus, &Tokenizer::default());
        for parser in parsers() {
            match (parser.parse(&corpus), parser.parse(&shifted)) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(a, b, "{}: symbol ids leaked into output", parser.name())
                }
                (Err(_), Err(_)) => {}
                _ => prop_assert!(false, "{}: error behavior changed under id shift", parser.name()),
            }
        }
    }
}

/// Interning edge: an empty slice still carries its parent's interner
/// (here holding the ten decoy symbols), and every parser must treat it
/// exactly like the truly empty `Corpus::new()` — empty arena, empty
/// symbol table and all.
#[test]
fn empty_corpus_parses_identically_with_and_without_interned_vocabulary() {
    let tokenizer = Tokenizer::default();
    let empty = Corpus::new();
    let shifted = id_shifted(&empty, &tokenizer);
    assert!(shifted.is_empty(), "slicing the decoy off left residue");
    assert!(
        !shifted.interner().is_empty(),
        "decoy vocabulary should survive in the shared interner"
    );
    for parser in parsers() {
        match (parser.parse(&empty), parser.parse(&shifted)) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "{}: empty-corpus parses diverged", parser.name()),
            (Err(_), Err(_)) => {}
            _ => panic!("{}: empty-corpus error behavior diverged", parser.name()),
        }
    }
}

/// Interning edge: a one-message, one-token corpus — the smallest
/// non-degenerate arena (one row, one symbol). The decoy shift is
/// verified to have actually moved the token's id before comparing.
#[test]
fn single_token_corpus_is_id_independent() {
    let tokenizer = Tokenizer::default();
    let corpus = Corpus::from_lines(["alpha"], &tokenizer);
    let shifted = id_shifted(&corpus, &tokenizer);
    assert_eq!(shifted.len(), 1);
    assert_eq!(shifted.record(0).content, "alpha");
    assert_ne!(
        corpus.symbols(0)[0],
        shifted.symbols(0)[0],
        "decoy prefix failed to shift the symbol id"
    );
    for parser in parsers() {
        match (parser.parse(&corpus), parser.parse(&shifted)) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "{}: single-token parses diverged", parser.name()),
            (Err(_), Err(_)) => {}
            _ => panic!("{}: single-token error behavior diverged", parser.name()),
        }
    }
}
