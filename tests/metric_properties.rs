//! Property-based tests of the evaluation metrics.

use logmine::eval::{pairwise_f_measure, purity, rand_index};
use proptest::prelude::*;

fn labelings() -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
    (2usize..60).prop_flat_map(|n| {
        (
            prop::collection::vec(0usize..6, n..=n),
            prop::collection::vec(0usize..6, n..=n),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn metrics_stay_in_unit_interval((truth, predicted) in labelings()) {
        let m = pairwise_f_measure(&truth, &predicted);
        prop_assert!((0.0..=1.0).contains(&m.precision));
        prop_assert!((0.0..=1.0).contains(&m.recall));
        prop_assert!((0.0..=1.0).contains(&m.f1));
        prop_assert!((0.0..=1.0).contains(&purity(&truth, &predicted)));
        prop_assert!((0.0..=1.0).contains(&rand_index(&truth, &predicted)));
    }

    #[test]
    fn perfect_prediction_scores_one((truth, _) in labelings()) {
        let m = pairwise_f_measure(&truth, &truth);
        prop_assert_eq!(m.f1, 1.0);
        prop_assert_eq!(purity(&truth, &truth), 1.0);
        prop_assert_eq!(rand_index(&truth, &truth), 1.0);
    }

    #[test]
    fn f_measure_invariant_under_predicted_relabeling((truth, predicted) in labelings()) {
        // Rename predicted labels through an arbitrary injection.
        let renamed: Vec<usize> = predicted.iter().map(|&p| p * 7 + 100).collect();
        let a = pairwise_f_measure(&truth, &predicted);
        let b = pairwise_f_measure(&truth, &renamed);
        prop_assert!((a.f1 - b.f1).abs() < 1e-12);
    }

    #[test]
    fn f1_never_exceeds_max_of_precision_recall((truth, predicted) in labelings()) {
        let m = pairwise_f_measure(&truth, &predicted);
        prop_assert!(m.f1 <= m.precision.max(m.recall) + 1e-12);
        prop_assert!(m.f1 + 1e-12 >= m.precision.min(m.recall) * 2.0 * m.precision.max(m.recall)
            / (m.precision + m.recall).max(f64::MIN_POSITIVE));
    }

    #[test]
    fn purity_of_singleton_prediction_is_one((truth, _) in labelings()) {
        // Every predicted cluster is a singleton: purity is trivially 1.
        let singletons: Vec<usize> = (0..truth.len()).collect();
        prop_assert_eq!(purity(&truth, &singletons), 1.0);
        // ...but recall is only perfect if truth is all-singletons too.
        let m = pairwise_f_measure(&truth, &singletons);
        prop_assert_eq!(m.precision, 1.0);
    }

    #[test]
    fn merging_everything_has_perfect_recall((truth, _) in labelings()) {
        let merged = vec![0usize; truth.len()];
        let m = pairwise_f_measure(&truth, &merged);
        prop_assert_eq!(m.recall, 1.0);
    }

    #[test]
    fn rand_index_is_symmetric((truth, predicted) in labelings()) {
        let a = rand_index(&truth, &predicted);
        let b = rand_index(&predicted, &truth);
        prop_assert!((a - b).abs() < 1e-12);
    }
}
