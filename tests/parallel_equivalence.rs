//! Differential sequential≡parallel harness for the chunked parsing
//! driver.
//!
//! The driver's contract (see `logparse_core::parallel`) has three
//! legs, and each leg gets property coverage here, for every parser in
//! the workspace across thread counts {1, 2, 4, 7}:
//!
//! 1. **One chunk is the sequential parse** — `parse_parallel(c, 1)`
//!    equals `parse(c)` exactly, including event-id numbering and the
//!    error case.
//! 2. **Scheduling cannot change the result** — for a fixed chunk
//!    count, any worker count (fewer, equal, more than chunks) produces
//!    the identical `Parse`. This is the "parallel execution ≡
//!    sequential execution of the same pipeline" guarantee; it is what
//!    makes the driver trustworthy.
//! 3. **The merge is sound** — per chunk, the parallel output never
//!    *splits* a group the chunk parse formed, keeps the same outlier
//!    set, and its template list is exactly the in-order structural
//!    dedup of the chunk template lists.
//!
//! Equivalence for several properties is **grouping-equivalence** (same
//! partition of messages, same outliers) rather than id-equality: the
//! merge renumbers events by first appearance across chunks, so ids are
//! representation, not semantics. Full chunked≡unchunked equality at
//! k > 1 is *not* asserted for support-threshold parsers — it provably
//! cannot hold (DESIGN.md "Parallel parsing" carries the SLCT
//! counterexample) — but it is asserted where it does hold: single
//! chunks, uniform corpora, and the a-priori-template Oracle.

use std::collections::HashMap;

use logmine::core::{Corpus, LogParser, LogRecord, ParallelDriver, Parse, Template, Tokenizer};
use logmine::parsers::{Ael, Drain, Iplom, LenMa, Lke, LogMine, LogSig, Oracle, Slct, Spell};
use proptest::prelude::*;

/// The thread counts the differential suite sweeps (an odd one included
/// so chunk boundaries fall unevenly).
const THREADS: [usize; 4] = [1, 2, 4, 7];

/// Log-like adversarial corpora, mirroring `parser_contracts.rs`.
fn arbitrary_corpus() -> impl Strategy<Value = Corpus> {
    let word = prop_oneof![
        Just("alpha"),
        Just("beta"),
        Just("gamma"),
        Just("delta"),
        Just("start"),
        Just("stop"),
        Just("error"),
        Just("ok"),
    ];
    let line = prop::collection::vec(
        prop_oneof![
            word.prop_map(str::to_owned),
            (0u32..100).prop_map(|n| n.to_string()),
        ],
        1..8,
    )
    .prop_map(|tokens| tokens.join(" "));
    prop::collection::vec(line, 1..40)
        .prop_map(|lines| Corpus::from_lines(&lines, &Tokenizer::default()))
}

fn parsers() -> Vec<Box<dyn LogParser>> {
    vec![
        Box::new(Slct::builder().support_count(2).build()),
        Box::new(Iplom::default()),
        Box::new(Lke::default()),
        Box::new(LogSig::builder().clusters(4).seed(1).build()),
        Box::new(Drain::default()),
        Box::new(Spell::default()),
        Box::new(Ael::default()),
        Box::new(LenMa::default()),
        Box::new(LogMine::default()),
        Box::new(Oracle::new(vec![
            Template::from_pattern("alpha * gamma"),
            Template::from_pattern("start *"),
        ])),
    ]
}

/// Rebuilds `corpus` with every token on a different symbol id (decoy
/// record interned first, then sliced off) — mirrors
/// `parser_contracts.rs`. Text and line numbers are unchanged; only the
/// integer representation of the tokens moved.
fn id_shifted(corpus: &Corpus, tokenizer: &Tokenizer) -> Corpus {
    let decoy = LogRecord::new(0, "qq0 qq1 qq2 qq3 qq4 qq5 qq6 qq7 qq8 qq9");
    let records =
        std::iter::once(decoy).chain((0..corpus.len()).map(|i| corpus.record(i).to_owned()));
    let rebuilt = Corpus::from_records(records, tokenizer);
    rebuilt.slice(1..rebuilt.len())
}

/// Relabels assignments by first appearance, turning event ids into a
/// canonical partition representation (outliers stay `None`).
fn canonical_partition(parse: &Parse) -> Vec<Option<usize>> {
    let mut next = 0usize;
    let mut relabel: HashMap<usize, usize> = HashMap::new();
    parse
        .assignments()
        .iter()
        .map(|a| {
            a.map(|event| {
                *relabel.entry(event.index()).or_insert_with(|| {
                    let id = next;
                    next += 1;
                    id
                })
            })
        })
        .collect()
}

/// Same grouping of messages (partition + outlier set), ignoring event
/// id numbering and template representation.
fn grouping_equivalent(a: &Parse, b: &Parse) -> bool {
    a.len() == b.len() && canonical_partition(a) == canonical_partition(b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Leg 1: one chunk (or one thread) *is* the sequential parse —
    /// byte-for-byte, ids included, errors included.
    #[test]
    fn one_thread_is_exactly_the_sequential_parse(corpus in arbitrary_corpus()) {
        for parser in parsers() {
            let sequential = parser.parse(&corpus);
            let parallel = parser.parse_parallel(&corpus, 1);
            match (&sequential, &parallel) {
                (Ok(s), Ok(p)) => prop_assert_eq!(s, p, "{} diverged at 1 thread", parser.name()),
                (Err(_), Err(_)) => {}
                _ => prop_assert!(false, "{}: one side errored", parser.name()),
            }
        }
    }

    /// Leg 2: with the chunk count pinned, the worker count — fewer
    /// than, equal to, or more than the chunks — cannot change the
    /// output. The w=1 reference is literally a sequential execution of
    /// the chunked pipeline, so this is sequential≡parallel.
    #[test]
    fn worker_schedule_cannot_change_the_result(corpus in arbitrary_corpus()) {
        for parser in parsers() {
            for chunks in [2usize, 4, 7] {
                let reference = ParallelDriver::with_workers(chunks, 1)
                    .run(parser.as_ref(), &corpus);
                for workers in [2usize, 5] {
                    let racy = ParallelDriver::with_workers(chunks, workers)
                        .run(parser.as_ref(), &corpus);
                    match (&reference, &racy) {
                        (Ok((a, ra)), Ok((b, rb))) => {
                            prop_assert_eq!(a, b,
                                "{} chunks={} workers={}", parser.name(), chunks, workers);
                            prop_assert_eq!(ra.chunks, rb.chunks);
                            prop_assert_eq!(
                                ra.sequential_fallback, rb.sequential_fallback,
                                "fallback must not depend on scheduling"
                            );
                        }
                        (Err(_), Err(_)) => {}
                        _ => prop_assert!(false, "{}: one schedule errored", parser.name()),
                    }
                }
            }
        }
    }

    /// The parallel output satisfies the parser I/O contract at every
    /// thread count: total assignment, in-range ids (checked by
    /// `Parse::new`), templates that match their members, and
    /// determinism across repeated runs.
    #[test]
    fn parallel_output_satisfies_the_parse_contract(corpus in arbitrary_corpus()) {
        for parser in parsers() {
            for &threads in &THREADS {
                let Ok(parse) = parser.parse_parallel(&corpus, threads) else { continue };
                prop_assert_eq!(parse.len(), corpus.len());
                let again = parser.parse_parallel(&corpus, threads)
                    .expect("second run of a successful configuration");
                prop_assert_eq!(&parse, &again, "{} not deterministic", parser.name());
                if parser.name() == "Spell" {
                    // Spell templates are LCS skeletons with subsequence
                    // semantics; positionwise `matches` does not apply.
                    continue;
                }
                for i in 0..parse.len() {
                    if let Some(template) = parse.template_of(i) {
                        prop_assert!(
                            template.matches(&corpus.tokens(i)),
                            "{} thread {}: template `{}` vs {:?}",
                            parser.name(), threads, template, corpus.tokens(i)
                        );
                    }
                }
            }
        }
    }

    /// Leg 3: the merge never splits a chunk's groups, never flips
    /// outlier status, and emits exactly the in-order structural dedup
    /// of the chunk template lists.
    #[test]
    fn merge_preserves_chunk_grouping_and_templates(corpus in arbitrary_corpus()) {
        for parser in parsers() {
            for chunks in [2usize, 4, 7] {
                let driver = ParallelDriver::with_workers(chunks, 2);
                let Ok((merged, report)) = driver.run(parser.as_ref(), &corpus) else { continue };
                if report.sequential_fallback {
                    continue; // output is the sequential parse, merge unused
                }
                let ranges = ParallelDriver::chunk_ranges(corpus.len(), chunks);
                let mut expected_templates: Vec<Template> = Vec::new();
                for range in &ranges {
                    let chunk = parser.parse(&corpus.slice(range.clone()))
                        .expect("no fallback, so every chunk parsed");
                    for t in chunk.templates() {
                        if !expected_templates.contains(t) {
                            expected_templates.push(t.clone());
                        }
                    }
                    let merged_part = &merged.assignments()[range.clone()];
                    for (i, chunk_assigned) in chunk.assignments().iter().enumerate() {
                        prop_assert_eq!(
                            chunk_assigned.is_none(), merged_part[i].is_none(),
                            "{}: outlier status flipped at {}", parser.name(), range.start + i
                        );
                        for (j, other) in chunk.assignments().iter().enumerate().skip(i + 1) {
                            if chunk_assigned.is_some() && chunk_assigned == other {
                                prop_assert_eq!(
                                    merged_part[i], merged_part[j],
                                    "{}: merge split a chunk group", parser.name()
                                );
                            }
                        }
                    }
                }
                prop_assert_eq!(
                    merged.templates(), expected_templates.as_slice(),
                    "{}: template set is not the ordered dedup of chunks", parser.name()
                );
            }
        }
    }

    /// Where full chunked≡unchunked equivalence *does* hold, assert it.
    /// A uniform corpus (one shape repeated) must come out as one group
    /// for every parser and thread count — provided every chunk is big
    /// enough to meet support thresholds (14 copies over at most 7
    /// chunks keeps every chunk at >= 2 messages, SLCT's support).
    /// LogSig is exempt because it genuinely splits identical messages
    /// (its potential is indifferent), as in `parser_contracts.rs`.
    #[test]
    fn uniform_corpora_group_identically_at_every_thread_count(
        line in "[a-z]{2,6}( [a-z]{2,6}){2,5}",
        copies in 14usize..40,
    ) {
        let lines: Vec<&str> = std::iter::repeat_n(line.as_str(), copies).collect();
        let corpus = Corpus::from_lines(&lines, &Tokenizer::default());
        for parser in parsers() {
            if parser.name() == "LogSig" {
                continue;
            }
            let Ok(sequential) = parser.parse(&corpus) else { continue };
            for &threads in &THREADS {
                let parallel = parser.parse_parallel(&corpus, threads)
                    .expect("uniform corpus parses at any chunking");
                prop_assert!(
                    grouping_equivalent(&sequential, &parallel),
                    "{} at {} threads: {:?} vs {:?}",
                    parser.name(), threads,
                    canonical_partition(&sequential), canonical_partition(&parallel)
                );
                prop_assert_eq!(
                    parallel.templates().len(), sequential.templates().len(),
                    "{} at {} threads grew templates", parser.name(), threads
                );
            }
        }
    }

    /// The Oracle matches against an a-priori template library, so for
    /// it chunked≡unchunked holds exactly — grouping *and* templates —
    /// at every thread count.
    #[test]
    fn oracle_is_fully_chunk_invariant(corpus in arbitrary_corpus()) {
        let oracle = Oracle::new(vec![
            Template::from_pattern("alpha * gamma"),
            Template::from_pattern("start *"),
            Template::from_pattern("error *"),
        ]);
        let sequential = oracle.parse(&corpus).expect("oracle is total");
        for &threads in &THREADS {
            let parallel = oracle.parse_parallel(&corpus, threads).expect("oracle is total");
            prop_assert!(grouping_equivalent(&sequential, &parallel), "threads={}", threads);
            prop_assert_eq!(
                parallel.cluster_labels(), sequential.cluster_labels(),
                "oracle grouping must be chunk-invariant"
            );
        }
    }

    /// String-vs-interned differential through the chunked driver:
    /// chunk slices share the input corpus's interner, so the shifted
    /// ids flow into every worker — and must still be invisible at
    /// every thread count: the merged `Parse` stays byte-identical.
    #[test]
    fn symbol_id_shifts_are_invisible_through_the_parallel_driver(
        corpus in arbitrary_corpus(),
    ) {
        let shifted = id_shifted(&corpus, &Tokenizer::default());
        for parser in parsers() {
            for &threads in &THREADS {
                match (
                    parser.parse_parallel(&corpus, threads),
                    parser.parse_parallel(&shifted, threads),
                ) {
                    (Ok(a), Ok(b)) => prop_assert_eq!(
                        a, b,
                        "{} at {} threads: symbol ids leaked", parser.name(), threads
                    ),
                    (Err(_), Err(_)) => {}
                    _ => prop_assert!(
                        false,
                        "{} at {} threads: error behavior changed under id shift",
                        parser.name(), threads
                    ),
                }
            }
        }
    }
}

/// Empty corpus: the driver must delegate, reproducing the sequential
/// behavior (Ok or Err) for every parser and thread count.
#[test]
fn empty_corpus_behaves_exactly_like_sequential() {
    let corpus = Corpus::new();
    for parser in parsers() {
        let sequential = parser.parse(&corpus);
        for &threads in &THREADS {
            let parallel = parser.parse_parallel(&corpus, threads);
            match (&sequential, &parallel) {
                (Ok(s), Ok(p)) => assert_eq!(s, p, "{}", parser.name()),
                (Err(_), Err(_)) => {}
                _ => panic!("{}: empty-corpus behavior diverged", parser.name()),
            }
        }
    }
}

/// Single-line corpus: chunking degenerates to one chunk regardless of
/// the requested thread count.
#[test]
fn single_line_corpus_is_sequential_at_any_thread_count() {
    let corpus = Corpus::from_lines(["start alpha 7"], &Tokenizer::default());
    for parser in parsers() {
        let sequential = parser.parse(&corpus);
        for &threads in &THREADS {
            let parallel = parser.parse_parallel(&corpus, threads);
            match (&sequential, &parallel) {
                (Ok(s), Ok(p)) => assert_eq!(s, p, "{}", parser.name()),
                (Err(_), Err(_)) => {}
                _ => panic!("{}: single-line behavior diverged", parser.name()),
            }
        }
    }
}

/// Chunk-boundary-sized corpora: lengths straddling the chunk count
/// (k-1, k, k+1, 2k, 2k+1) exercise the uneven-split arithmetic.
#[test]
fn chunk_boundary_sized_corpora_stay_total_and_deterministic() {
    for &k in &[2usize, 4, 7] {
        for len in [k - 1, k, k + 1, 2 * k, 2 * k + 1] {
            let lines: Vec<String> = (0..len).map(|i| format!("evt {} val {i}", i % 3)).collect();
            let corpus = Corpus::from_lines(&lines, &Tokenizer::default());
            for parser in parsers() {
                let Ok(parse) = parser.parse_parallel(&corpus, k) else {
                    // Only legitimate when the sequential parse also
                    // rejects this corpus (fallback semantics).
                    assert!(
                        parser.parse(&corpus).is_err(),
                        "{}: parallel failed where sequential succeeds",
                        parser.name()
                    );
                    continue;
                };
                assert_eq!(parse.len(), len, "{} k={k} len={len}", parser.name());
                let again = parser.parse_parallel(&corpus, k).unwrap();
                assert_eq!(parse, again, "{} k={k} len={len}", parser.name());
            }
        }
    }
}

/// When a chunk is too small for the method (LogSig wants at least k
/// messages per parse), the driver falls back to one sequential parse
/// rather than erroring — parse_parallel is total wherever parse is.
#[test]
fn undersized_chunks_fall_back_to_the_sequential_parse() {
    let lines: Vec<String> = (0..6).map(|i| format!("evt {i} ok")).collect();
    let corpus = Corpus::from_lines(&lines, &Tokenizer::default());
    let logsig = LogSig::builder().clusters(4).seed(1).build();
    // 6 messages over 4 chunks -> chunks of 1-2 messages, all below the
    // 4-cluster minimum; sequential handles 6 >= 4 fine.
    let (parse, report) = ParallelDriver::new(4).run(&logsig, &corpus).unwrap();
    assert!(report.sequential_fallback);
    assert_eq!(parse, logsig.parse(&corpus).unwrap());
}
