//! Cross-crate integration tests: the full paper pipeline wired through
//! the `logmine` facade.

use logmine::core::{
    read_lines, write_events_file, write_structured_file, Corpus, LogParser, MaskRule,
    Preprocessor, Tokenizer,
};
use logmine::datasets::{hdfs, zookeeper};
use logmine::eval::{pairwise_f_measure, tune, ParserKind};
use logmine::mining::{event_count_matrix, truth_count_matrix, PcaDetector, PcaDetectorConfig};
use logmine::parsers::{study_parsers, Iplom};

#[test]
fn file_roundtrip_matches_in_memory_parse() {
    let data = zookeeper::generate(300, 5);
    let mut raw = String::new();
    for i in 0..data.len() {
        raw.push_str(data.corpus.record(i).content);
        raw.push('\n');
    }
    let lines = read_lines(raw.as_bytes()).unwrap();
    let corpus = Corpus::from_lines(&lines, &Tokenizer::default());
    assert_eq!(corpus, data.corpus);

    let parse = Iplom::default().parse(&corpus).unwrap();
    let mut events = Vec::new();
    write_events_file(&parse, &mut events).unwrap();
    let events = String::from_utf8(events).unwrap();
    assert_eq!(events.lines().count(), parse.event_count());

    let mut structured = Vec::new();
    write_structured_file(&corpus, &parse, &mut structured).unwrap();
    let structured = String::from_utf8(structured).unwrap();
    assert_eq!(structured.lines().count(), corpus.len());
}

#[test]
fn all_study_parsers_run_on_every_dataset_sample() {
    for spec in logmine::datasets::study_datasets() {
        let data = spec.generate(120, 3);
        for parser in study_parsers() {
            // LogSig's default k (16) exceeds nothing here; all must run.
            let parse = parser
                .parse(&data.corpus)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", parser.name(), spec.name()));
            assert_eq!(
                parse.len(),
                data.len(),
                "{} on {}",
                parser.name(),
                spec.name()
            );
            // Every assigned template must actually match its messages.
            for i in 0..parse.len() {
                if let Some(template) = parse.template_of(i) {
                    assert!(
                        template.matches(&data.corpus.tokens(i)),
                        "{} on {}: template {template} does not match message {i:?}",
                        parser.name(),
                        spec.name(),
                    );
                }
            }
        }
    }
}

#[test]
fn preprocessing_improves_or_preserves_iplom_on_hdfs() {
    let data = hdfs::generate(800, 11);
    let parse_raw = Iplom::default().parse(&data.corpus).unwrap();
    let raw_f1 = pairwise_f_measure(&data.labels, &parse_raw.cluster_labels()).f1;

    let pre = Preprocessor::new(vec![MaskRule::IpAddress, MaskRule::BlockId]);
    let masked = pre.apply(&data.corpus);
    let parse_pre = Iplom::default().parse(&masked).unwrap();
    let pre_f1 = pairwise_f_measure(&data.labels, &parse_pre.cluster_labels()).f1;

    // Finding 2's caveat: preprocessing may not help IPLoM, but it must
    // not destroy it either.
    assert!(
        pre_f1 > raw_f1 - 0.15,
        "raw {raw_f1} vs preprocessed {pre_f1}"
    );
    assert!(
        raw_f1 > 0.8,
        "IPLoM on HDFS should be accurate, got {raw_f1}"
    );
}

#[test]
fn parser_driven_anomaly_detection_tracks_ground_truth() {
    let sessions = hdfs::generate_sessions(800, 0.03, 17);
    let detector = PcaDetector::new(PcaDetectorConfig {
        components: Some(2),
        ..PcaDetectorConfig::default()
    });

    let truth_counts = truth_count_matrix(
        &sessions.data.labels,
        sessions.data.truth_templates.len(),
        &sessions.block_of,
        sessions.block_count(),
    );
    let truth_report = detector.detect(&truth_counts);
    let (truth_detected, truth_fa) = truth_report.confusion(&sessions.anomalous);

    let parse = Iplom::default().parse(&sessions.data.corpus).unwrap();
    let counts = event_count_matrix(&parse, &sessions.block_of, sessions.block_count());
    let report = detector.detect(&counts);
    let (detected, fa) = report.confusion(&sessions.anomalous);

    // An accurate parser should essentially reproduce the ground-truth
    // mining outcome (the paper's IPLoM row vs. Ground-truth row).
    assert!(truth_detected > 0);
    assert!(
        (detected as i64 - truth_detected as i64).abs() <= truth_detected as i64 / 2,
        "detected {detected} vs truth {truth_detected}"
    );
    assert!(
        fa <= truth_fa + sessions.block_count() / 50,
        "fa {fa} vs {truth_fa}"
    );
}

#[test]
fn tuned_parsers_beat_untuned_defaults_on_average() {
    let data = hdfs::generate(600, 23);
    let mut tuned_total = 0.0;
    for kind in ParserKind::ALL {
        let tuned = tune(kind, &data);
        if let Ok(parse) = tuned.instantiate(0).parse(&data.corpus) {
            tuned_total += pairwise_f_measure(&data.labels, &parse.cluster_labels()).f1;
        }
    }
    // Finding 1: overall accuracy of the four tuned methods is high.
    assert!(
        tuned_total / 4.0 > 0.6,
        "mean tuned F1 {}",
        tuned_total / 4.0
    );
}
