//! Property-based tests of the linear-algebra substrate: symmetric
//! eigendecomposition invariants and PCA residual behaviour.

use logmine::linalg::{jacobi_eigen, Matrix, Pca};
use proptest::prelude::*;

/// Arbitrary small symmetric matrices with entries in [-10, 10].
fn symmetric_matrix() -> impl Strategy<Value = Matrix> {
    (2usize..6).prop_flat_map(|n| {
        prop::collection::vec(-10.0f64..10.0, n * (n + 1) / 2).prop_map(move |upper| {
            let mut m = Matrix::zeros(n, n);
            let mut k = 0;
            for i in 0..n {
                for j in i..n {
                    m[(i, j)] = upper[k];
                    m[(j, i)] = upper[k];
                    k += 1;
                }
            }
            m
        })
    })
}

/// Arbitrary data matrices (rows ≥ 2).
fn data_matrix() -> impl Strategy<Value = Matrix> {
    (2usize..12, 1usize..5).prop_flat_map(|(rows, cols)| {
        prop::collection::vec(-100.0f64..100.0, rows * cols).prop_map(move |data| {
            let rows_vec: Vec<Vec<f64>> = data.chunks(cols).map(<[f64]>::to_vec).collect();
            Matrix::from_rows(&rows_vec)
        })
    })
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn eigen_trace_equals_value_sum(m in symmetric_matrix()) {
        let eig = jacobi_eigen(&m);
        let trace: f64 = (0..m.rows()).map(|i| m[(i, i)]).sum();
        let sum: f64 = eig.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-6 * (1.0 + trace.abs()));
    }

    #[test]
    fn eigenvectors_are_orthonormal(m in symmetric_matrix()) {
        let eig = jacobi_eigen(&m);
        let n = m.rows();
        for i in 0..n {
            prop_assert!((dot(&eig.vectors[i], &eig.vectors[i]) - 1.0).abs() < 1e-7);
            for j in (i + 1)..n {
                prop_assert!(dot(&eig.vectors[i], &eig.vectors[j]).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn eigenpairs_satisfy_definition(m in symmetric_matrix()) {
        let eig = jacobi_eigen(&m);
        for (value, vector) in eig.values.iter().zip(&eig.vectors) {
            let mv = m.multiply_vec(vector);
            for (a, b) in mv.iter().zip(vector) {
                prop_assert!((a - value * b).abs() < 1e-6 * (1.0 + value.abs()),
                    "A·v != λ·v: {a} vs {}", value * b);
            }
        }
    }

    #[test]
    fn eigenvalues_are_sorted_descending(m in symmetric_matrix()) {
        let eig = jacobi_eigen(&m);
        for w in eig.values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
    }

    #[test]
    fn covariance_is_positive_semidefinite(data in data_matrix()) {
        let eig = jacobi_eigen(&data.covariance());
        for &v in &eig.values {
            prop_assert!(v > -1e-6, "negative eigenvalue {v}");
        }
    }

    #[test]
    fn spe_is_nonnegative_and_zero_with_all_components(data in data_matrix()) {
        let full = Pca::fit_fixed(&data, data.cols());
        let partial = Pca::fit(&data, 0.5);
        for r in 0..data.rows() {
            let row = data.row(r);
            prop_assert!(partial.squared_prediction_error(row) >= 0.0);
            // Keeping every component reconstructs training rows exactly.
            let full_spe = full.squared_prediction_error(row);
            prop_assert!(full_spe < 1e-5, "full-rank SPE {full_spe}");
        }
    }

    #[test]
    fn keeping_more_components_never_increases_spe(data in data_matrix()) {
        let k1 = Pca::fit_fixed(&data, 1);
        let k2 = Pca::fit_fixed(&data, 2.min(data.cols()));
        for r in 0..data.rows() {
            let row = data.row(r);
            prop_assert!(
                k2.squared_prediction_error(row) <= k1.squared_prediction_error(row) + 1e-6
            );
        }
    }
}
