//! Quickstart: parse raw log messages with each method and inspect the
//! toolkit's standard output — an events file plus a structured log.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use logmine::core::{write_events_file, write_structured_file, Corpus, LogParser, Tokenizer};
use logmine::parsers::{Iplom, Lke, LogSig, Slct};

// The HDFS excerpt from the paper's Fig. 1 (timestamps dropped: only the
// free-text content takes part in parsing).
const RAW_LOG: &[&str] = &[
    "BLOCK* NameSystem.allocateBlock: /user/root/randtxt4/_temporary/_task_200811101024_0010_m_000011_0/part-00011. blk_904791815409399662",
    "Receiving block blk_904791815409399662 src: /10.251.43.210:55700 dest: /10.251.43.210:50010",
    "Receiving block blk_904791815409399662 src: /10.250.18.114:52231 dest: /10.250.18.114:50010",
    "PacketResponder 0 for block blk_904791815409399662 terminating",
    "Received block blk_904791815409399662 of size 67108864 from /10.250.18.114",
    "PacketResponder 1 for block blk_904791815409399662 terminating",
    "Received block blk_904791815409399662 of size 67108864 from /10.251.43.210",
    "BLOCK* NameSystem.addStoredBlock: blockMap updated: 10.251.43.210:50010 is added to blk_904791815409399662 size 67108864",
    "BLOCK* NameSystem.addStoredBlock: blockMap updated: 10.250.18.114:50010 is added to blk_904791815409399662 size 67108864",
    "Verification succeeded for blk_904791815409399662",
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = Corpus::from_lines(RAW_LOG, &Tokenizer::default());

    let parsers: Vec<Box<dyn LogParser>> = vec![
        Box::new(Slct::builder().support_count(2).build()),
        Box::new(Iplom::default()),
        Box::new(Lke::default()),
        Box::new(LogSig::builder().clusters(6).seed(42).build()),
    ];

    for parser in parsers {
        let parse = parser.parse(&corpus)?;
        println!("=== {} ===", parser.name());
        println!(
            "{} events, {} outliers",
            parse.event_count(),
            parse.outlier_count()
        );

        // The toolkit's two standard output files, written to stdout here.
        let mut events = Vec::new();
        write_events_file(&parse, &mut events)?;
        print!("{}", String::from_utf8(events)?);

        let mut structured = Vec::new();
        write_structured_file(&corpus, &parse, &mut structured)?;
        print!("{}", String::from_utf8(structured)?);
        println!();
    }
    Ok(())
}
