//! A miniature Table II: tune and compare the four study parsers on a
//! sample of every dataset, raw vs. preprocessed.
//!
//! ```sh
//! cargo run --release --example parser_comparison
//! ```

use logmine::datasets::{study_datasets, LabeledCorpus};
use logmine::eval::{dataset_preprocessor, pairwise_f_measure, tune, ParserKind, TextTable};

fn main() {
    const SAMPLE: usize = 800;
    let mut table = TextTable::new(vec!["Dataset", "Parser", "F1 raw", "F1 preprocessed"]);

    for spec in study_datasets() {
        let sample = spec.generate(SAMPLE, 42);
        let preprocessor = dataset_preprocessor(spec.name());
        let preprocessed = (!preprocessor.rules().is_empty()).then(|| LabeledCorpus {
            corpus: preprocessor.apply(&sample.corpus),
            labels: sample.labels.clone(),
            truth_templates: sample.truth_templates.clone(),
        });

        for kind in ParserKind::ALL {
            let f1 = |data: &LabeledCorpus| {
                tune(kind, data)
                    .instantiate(0)
                    .parse(&data.corpus)
                    .map(|p| pairwise_f_measure(&data.labels, &p.cluster_labels()).f1)
                    .unwrap_or(0.0)
            };
            let raw = f1(&sample);
            let pre = preprocessed
                .as_ref()
                .map_or_else(|| "-".to_string(), |d| format!("{:.2}", f1(d)));
            table.add_row(vec![
                spec.name().to_string(),
                kind.name().to_string(),
                format!("{raw:.2}"),
                pre,
            ]);
        }
    }
    println!("{table}");
    println!("(Finding 1: overall accuracy is high; Finding 2: preprocessing helps most");
    println!("methods. Paper reference values are printed by the table2 binary.)");
}
