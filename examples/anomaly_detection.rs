//! The paper's RQ3 pipeline end to end: simulate HDFS block sessions,
//! parse them, build the block × event count matrix, and run Xu et al.'s
//! PCA anomaly detector — comparing a real parser against the
//! ground-truth parse.
//!
//! ```sh
//! cargo run --release --example anomaly_detection
//! ```

use logmine::core::LogParser;
use logmine::datasets::hdfs;
use logmine::eval::pairwise_f_measure;
use logmine::mining::{event_count_matrix, truth_count_matrix, PcaDetector, PcaDetectorConfig};
use logmine::parsers::Iplom;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 2 000 blocks at the paper's ≈2.9 % anomaly rate.
    let sessions = hdfs::generate_sessions(2_000, 0.029, 7);
    println!(
        "simulated {} blocks / {} messages, {} labeled anomalies",
        sessions.block_count(),
        sessions.data.len(),
        sessions.anomaly_count()
    );

    let detector = PcaDetector::new(PcaDetectorConfig {
        components: Some(2),
        ..PcaDetectorConfig::default()
    });

    // --- with a real parser (IPLoM, the paper's most accurate) ---
    let parse = Iplom::default().parse(&sessions.data.corpus)?;
    let accuracy = pairwise_f_measure(&sessions.data.labels, &parse.cluster_labels());
    let counts = event_count_matrix(&parse, &sessions.block_of, sessions.block_count());
    let report = detector.detect(&counts);
    let (detected, false_alarms) = report.confusion(&sessions.anomalous);
    println!(
        "\nIPLoM parse: F1 = {:.3}, {} events",
        accuracy.f1,
        parse.event_count()
    );
    println!(
        "  reported {} anomalies: {} detected, {} false alarms (threshold Q_a = {:.2})",
        report.reported(),
        detected,
        false_alarms,
        report.threshold
    );

    // --- with the exactly-correct structured log ---
    let truth_counts = truth_count_matrix(
        &sessions.data.labels,
        sessions.data.truth_templates.len(),
        &sessions.block_of,
        sessions.block_count(),
    );
    let truth_report = detector.detect(&truth_counts);
    let (truth_detected, truth_fa) = truth_report.confusion(&sessions.anomalous);
    println!("\nGround-truth parse:");
    println!(
        "  reported {} anomalies: {} detected, {} false alarms",
        truth_report.reported(),
        truth_detected,
        truth_fa
    );
    Ok(())
}
