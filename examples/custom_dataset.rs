//! Bring your own logs: define a custom dataset with the template-spec
//! notation, generate a labeled corpus, and evaluate any parser on it —
//! the workflow for extending the study to a new system.
//!
//! ```sh
//! cargo run --release --example custom_dataset
//! ```

use logmine::core::LogParser;
use logmine::datasets::{DatasetSpec, TemplateSpec};
use logmine::eval::{pairwise_f_measure, purity, rand_index};
use logmine::parsers::{Drain, Iplom};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An imaginary message-queue broker. `<...>` tokens are typed
    // parameter slots; everything else is constant text.
    let spec = DatasetSpec::new(
        "broker",
        vec![
            TemplateSpec::parse("producer <node> connected from <ip:port>"),
            TemplateSpec::parse("published message <hex> to topic orders partition <small>"),
            TemplateSpec::parse("consumer group rebalance took <ms> generation <int>"),
            TemplateSpec::parse("offset commit failed for group <node> err REBALANCE_IN_PROGRESS"),
            TemplateSpec::parse("retention deleted <int> segments from topic orders"),
            TemplateSpec::parse("follower <node> lagging behind leader by <int> messages"),
        ],
    );
    let data = spec.generate(3_000, 123);
    println!(
        "generated {} messages over {} event types",
        data.len(),
        data.truth_templates.len()
    );

    for parser in [&Iplom::default() as &dyn LogParser, &Drain::default()] {
        let parse = parser.parse(&data.corpus)?;
        let labels = parse.cluster_labels();
        println!(
            "\n{}: {} events discovered",
            parser.name(),
            parse.event_count()
        );
        println!(
            "  F1 = {:.3}  purity = {:.3}  rand index = {:.3}",
            pairwise_f_measure(&data.labels, &labels).f1,
            purity(&data.labels, &labels),
            rand_index(&data.labels, &labels)
        );
        for template in parse.templates() {
            println!("  {template}");
        }
    }
    Ok(())
}
