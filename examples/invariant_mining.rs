//! Invariant mining as an anomaly detector: learn the block lifecycle's
//! count laws (`receiving = received = responder = 3 × allocate`) from
//! HDFS sessions and flag the sessions that break them — then compare
//! with the PCA detector on the same matrix.
//!
//! ```sh
//! cargo run --release --example invariant_mining
//! ```

use logmine::datasets::hdfs;
use logmine::mining::{
    truth_count_matrix, InvariantMiner, InvariantMinerConfig, PcaDetector, PcaDetectorConfig,
};

fn main() {
    let sessions = hdfs::generate_sessions(2_000, 0.03, 5);
    let counts = truth_count_matrix(
        &sessions.data.labels,
        sessions.data.truth_templates.len(),
        &sessions.block_of,
        sessions.block_count(),
    );

    let model = InvariantMiner::new(InvariantMinerConfig::default()).mine(&counts);
    println!("mined {} invariants, e.g.:", model.invariants().len());
    for inv in model.invariants().iter().take(6) {
        let left = &sessions.data.truth_templates[inv.left];
        let right = &sessions.data.truth_templates[inv.right];
        println!(
            "  count(\"{left}\") = {} x count(\"{right}\")  [confidence {:.3}]",
            inv.factor, inv.confidence
        );
    }

    let violations = model.violations(&counts);
    let inv_detected = violations
        .iter()
        .filter(|&&i| sessions.anomalous[i])
        .count();
    println!(
        "\ninvariant detector: {} flagged, {} true of {} anomalies, {} false alarms",
        violations.len(),
        inv_detected,
        sessions.anomaly_count(),
        violations.len() - inv_detected
    );

    let pca = PcaDetector::new(PcaDetectorConfig {
        components: Some(2),
        ..PcaDetectorConfig::default()
    });
    let report = pca.detect(&counts);
    let (pca_detected, pca_fa) = report.confusion(&sessions.anomalous);
    println!(
        "PCA detector:       {} flagged, {} true of {} anomalies, {} false alarms",
        report.reported(),
        pca_detected,
        sessions.anomaly_count(),
        pca_fa
    );
    println!("\n(the models complement each other: invariants catch flow violations,");
    println!("PCA catches additive deviations — see the invariant_compare binary)");
}
