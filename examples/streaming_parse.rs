//! Online parsing: feed log messages one at a time (as a production
//! pipeline would) and watch the templates refine — including how a
//! parse tree behaves on an evolving system where new event types
//! appear mid-stream.
//!
//! ```sh
//! cargo run --release --example streaming_parse
//! ```

use logmine::core::Tokenizer;
use logmine::datasets::zookeeper;
use logmine::parsers::{StreamingDrain, StreamingParser, StreamingSpell};

fn main() {
    let tokenizer = Tokenizer::default();
    let data = zookeeper::generate(2_000, 11);

    let mut drain = StreamingDrain::default();
    let mut spell = StreamingSpell::default();

    for i in 0..data.len() {
        let tokens = tokenizer.tokenize_refs(data.corpus.record(i).content);
        drain.observe(&tokens);
        spell.observe(&tokens);
        if [10, 100, 1000, data.len() - 1].contains(&i) {
            println!(
                "after {:4} messages: Drain knows {:3} events, Spell {:3}",
                i + 1,
                drain.group_count(),
                spell.group_count()
            );
        }
    }

    println!("\nfirst Drain templates discovered:");
    for template in drain.templates().iter().take(8) {
        println!("  {template}");
    }
    println!(
        "\nground truth: {} event types exercised",
        data.distinct_events()
    );
}
