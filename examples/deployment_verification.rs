//! The study's second mining task (§III-A): deployment verification —
//! compare per-block event sequences between a pseudo-cloud development
//! run and a production deployment, and report only novel sequences.
//!
//! ```sh
//! cargo run --release --example deployment_verification
//! ```

use logmine::datasets::hdfs;
use logmine::mining::{sequences_by_session, verify_deployment, FsmModel};

fn main() {
    // Development: healthy flows only. Deployment: 4% anomalous flows.
    let dev = hdfs::generate_sessions(400, 0.0, 1);
    let prod = hdfs::generate_sessions(1_000, 0.04, 2);

    let dev_sequences = sequences_by_session(
        dev.block_of
            .iter()
            .zip(&dev.data.labels)
            .map(|(&b, &e)| (b, Some(e))),
        dev.block_count(),
    );
    let prod_sequences = sequences_by_session(
        prod.block_of
            .iter()
            .zip(&prod.data.labels)
            .map(|(&b, &e)| (b, Some(e))),
        prod.block_count(),
    );

    let report = verify_deployment(&dev_sequences, &prod_sequences);
    println!(
        "deployment: {} sessions, {} matched development behaviour",
        prod.block_count(),
        report.matched_sessions
    );
    println!(
        "flagged {} sessions ({} distinct novel sequences) — reduction effect {:.1}%",
        report.flagged_sessions,
        report.new_sequences.len(),
        report.reduction() * 100.0
    );
    println!(
        "ground truth: {} of the deployment sessions are anomalous",
        prod.anomalous.iter().filter(|&&a| a).count()
    );

    // Bonus: the third mining task — mine an FSM model of the healthy
    // write path and check it explains deployment traffic.
    let model = FsmModel::from_traces(&dev_sequences);
    let unexplained = prod_sequences.iter().filter(|t| !model.accepts(t)).count();
    println!(
        "\nSynoptic-style FSM: {} states, {} transitions; {} deployment sessions not explained",
        model.state_count(),
        model.edge_count(),
        unexplained
    );
}
