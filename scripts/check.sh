#!/bin/bash
# The local gate: everything CI would hold a change to.
#   scripts/check.sh           full run
#   scripts/check.sh --quick   reduced property-test cases (PROPTEST_CASES=8)
#   scripts/check.sh --deep    full run + Miri / ThreadSanitizer passes
#                              (needs a nightly toolchain; skipped with a
#                              notice when none is installed)
set -euo pipefail
cd "$(dirname "$0")/.."

DEEP=0
QUICK=0
if [[ "${1:-}" == "--quick" ]]; then
  # The vendored proptest shim caps every suite's case count at this
  # value (it never raises a configured count), so the property tests —
  # including the parallel differential suite — still run end to end,
  # just on fewer corpora.
  export PROPTEST_CASES=8
  QUICK=1
  echo "=== quick mode: PROPTEST_CASES=$PROPTEST_CASES ==="
elif [[ "${1:-}" == "--deep" ]]; then
  DEEP=1
fi

echo "=== cargo fmt --check ==="
cargo fmt --all --check

echo "=== cargo clippy (warnings denied) ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "=== logparse-lint (project invariants, warnings denied) ==="
cargo run -q -p logparse-lint -- --workspace --deny warnings --stats --sarif target/lint.sarif

echo "=== cargo test ==="
cargo test --workspace -q

echo "=== differential suite (sequential vs parallel) ==="
cargo test -q --test parallel_equivalence

echo "=== differential suite (zero-copy loader vs legacy reader) ==="
cargo test -q --test loader_differential

if [[ "$QUICK" == "1" ]]; then
  # Benches aren't compiled by `cargo test`; make sure the perf harness
  # (the interning throughput runner included) still builds without
  # paying for a measurement run.
  echo "=== cargo bench --no-run (benches compile) ==="
  cargo bench --workspace --no-run -q

  # Alert-rule smoke: the default rule set replayed over the canned
  # drifting history must parse cleanly and fire the churn alert.
  echo "=== logmine alerts check (default rules vs canned drift fixture) ==="
  ALERTS_OUT="$(cargo run -q --release -p logparse-cli --bin logmine -- \
    alerts check --fixture examples/drift.history)"
  if ! grep -q "FIRING template-churn-high" <<<"$ALERTS_OUT"; then
    echo "expected template-churn-high to fire on examples/drift.history:"
    echo "$ALERTS_OUT"
    exit 1
  fi

  # End-to-end durability smoke: ingest into a template store, then
  # have the offline verifier re-walk every snapshot/log CRC chain.
  echo "=== store round-trip (serve --checkpoint + store verify) ==="
  STORE_DIR="$(mktemp -d)/store"
  cargo run -q --release -p logparse-cli --bin logmine -- \
    generate --dataset hdfs --count 5000 |
    cargo run -q --release -p logparse-cli --bin logmine -- \
      serve --shards 2 --window 1000 --checkpoint "$STORE_DIR" >/dev/null
  cargo run -q --release -p logparse-cli --bin logmine -- store verify "$STORE_DIR"
  cargo run -q --release -p logparse-cli --bin logmine -- store compact "$STORE_DIR" >/dev/null
  cargo run -q --release -p logparse-cli --bin logmine -- store verify "$STORE_DIR" >/dev/null
  rm -rf "$(dirname "$STORE_DIR")"

  # Jobs-layer chaos smoke: SIGKILL a worker mid-shard via the fault
  # plan, prove the retry converges on output byte-identical to a
  # plain parallel parse of the same corpus.
  echo "=== jobs chaos smoke (worker SIGKILL + retry, byte-identical reduce) ==="
  JOBS_DIR="$(mktemp -d)"
  cargo run -q --release -p logparse-cli --bin logmine -- \
    generate --dataset hdfs --count 3000 >"$JOBS_DIR/corpus.log"
  cargo run -q --release -p logparse-cli --bin logmine -- \
    parse --parser drain -j 4 --events-out "$JOBS_DIR/parse.events" \
    "$JOBS_DIR/corpus.log" 2>/dev/null
  LOGPARSE_FAULT="worker:1@1:crash_after:0" \
    cargo run -q --release -p logparse-cli --bin logmine -- \
    jobs run "$JOBS_DIR/corpus.log" --job-dir "$JOBS_DIR/job" \
    --parser drain -j 4 --backoff-ms 5 \
    --events-out "$JOBS_DIR/jobs.events" 2>/dev/null
  cmp "$JOBS_DIR/parse.events" "$JOBS_DIR/jobs.events"
  grep -q '"event":"agent_retrying"' "$JOBS_DIR/job/events.jsonl"
  rm -rf "$JOBS_DIR"

  # Loader differential smoke at the CLI boundary: the mmap and legacy
  # loaders must hand every parser-visible byte over identically, so
  # the events and structured outputs of `logmine parse` are compared
  # with cmp across both --loader flavors (CRLF + blank lines included).
  echo "=== loader smoke (--loader mmap vs --loader legacy, byte-identical) ==="
  LOADER_DIR="$(mktemp -d)"
  cargo run -q --release -p logparse-cli --bin logmine -- \
    generate --dataset hdfs --count 3000 >"$LOADER_DIR/corpus.log"
  printf 'tail no newline\r\n   \r\nlast line' >>"$LOADER_DIR/corpus.log"
  for loader in mmap legacy; do
    cargo run -q --release -p logparse-cli --bin logmine -- \
      parse --parser drain -j 4 --loader "$loader" \
      --events-out "$LOADER_DIR/$loader.events" \
      --structured-out "$LOADER_DIR/$loader.structured" \
      "$LOADER_DIR/corpus.log" >/dev/null
  done
  cmp "$LOADER_DIR/mmap.events" "$LOADER_DIR/legacy.events"
  cmp "$LOADER_DIR/mmap.structured" "$LOADER_DIR/legacy.structured"
  rm -rf "$LOADER_DIR"
fi

if [[ "$DEEP" == "1" ]]; then
  # Deep passes use dynamic analysis where the lint layer above is only
  # heuristic: Miri checks the merge/parallel core for UB and leaks,
  # TSan races the obs concurrency suite. Both need nightly; a box
  # without one still gets the full static gate above.
  if rustup toolchain list 2>/dev/null | grep -q nightly; then
    if rustup component list --toolchain nightly 2>/dev/null \
        | grep -q 'miri.*(installed)'; then
      echo "=== miri (logparse-core merge/parallel tests) ==="
      cargo +nightly miri test -p logparse-core merge parallel
    else
      echo "=== miri: nightly present but miri component not installed; skipping ==="
      echo "    (install with: rustup component add miri --toolchain nightly)"
    fi
    if rustup component list --toolchain nightly 2>/dev/null \
        | grep -q 'rust-src.*(installed)'; then
      echo "=== thread sanitizer (logparse-obs concurrency suite) ==="
      RUSTFLAGS="-Zsanitizer=thread" \
        cargo +nightly test -p logparse-obs -q \
        --target "$(rustc -vV | sed -n 's/^host: //p')" -Z build-std
    else
      echo "=== tsan: nightly present but rust-src not installed; skipping ==="
      echo "    (install with: rustup component add rust-src --toolchain nightly)"
    fi
  else
    echo "=== deep checks skipped: no nightly toolchain installed ==="
    echo "    (install with: rustup toolchain install nightly)"
  fi
fi

echo "all checks passed"
