#!/bin/bash
# The local gate: everything CI would hold a change to.
#   scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== cargo fmt --check ==="
cargo fmt --all --check

echo "=== cargo clippy (warnings denied) ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "=== cargo test ==="
cargo test --workspace -q

echo "all checks passed"
