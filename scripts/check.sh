#!/bin/bash
# The local gate: everything CI would hold a change to.
#   scripts/check.sh           full run
#   scripts/check.sh --quick   reduced property-test cases (PROPTEST_CASES=8)
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--quick" ]]; then
  # The vendored proptest shim caps every suite's case count at this
  # value (it never raises a configured count), so the property tests —
  # including the parallel differential suite — still run end to end,
  # just on fewer corpora.
  export PROPTEST_CASES=8
  echo "=== quick mode: PROPTEST_CASES=$PROPTEST_CASES ==="
fi

echo "=== cargo fmt --check ==="
cargo fmt --all --check

echo "=== cargo clippy (warnings denied) ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "=== cargo test ==="
cargo test --workspace -q

echo "=== differential suite (sequential vs parallel) ==="
cargo test -q --test parallel_equivalence

echo "all checks passed"
