#!/bin/bash
# Regenerates the paper's tables/figures. For the code-quality gate
# (fmt + clippy + tests) run scripts/check.sh first.
cd /root/repo
for bin in table1 table2 table3 fig3 fig2 critical_events preprocess_ablation mining_tasks; do
  echo "=== $bin start $(date +%T) ==="
  ./target/release/$bin > results/$bin.txt 2> results/$bin.log
  echo "=== $bin done $(date +%T) exit=$? ==="
done
